//! A single latent VoIP call, dissected end to end.
//!
//! Finds a session whose direct IP route violates the 300 ms quality
//! threshold, then shows everything ASAP does about it: the caller's and
//! callee's close cluster sets, the one-/two-hop intersection, the chosen
//! relay, and the resulting speech quality under the ITU E-model —
//! compared against what DEDI/RAND probing and the offline optimum find.
//!
//! ```sh
//! cargo run --release --example voip_call
//! ```

use asap::prelude::*;
use asap_workload::sessions::{latent_sessions, with_direct_routes};
use asap_workload::PopulationConfig;

fn main() {
    let mut cfg = ScenarioConfig::eval_scale();
    cfg.population = PopulationConfig {
        target_hosts: 4_000,
        ..Default::default()
    };
    let scenario = Scenario::build(cfg, 2026);
    let system = AsapSystem::bootstrap(&scenario, AsapConfig::default());
    let req = QualityRequirement::default();
    let mos = EModel::new(Codec::G729aVad);

    // Find a latent session that ASAP can fix.
    let all = sessions::generate(&scenario.population, 20_000, 5);
    let latent = latent_sessions(&with_direct_routes(&scenario, &all), 300.0);
    println!(
        "{} of {} sessions are latent (direct RTT > 300 ms)",
        latent.len(),
        all.len()
    );

    let Some((s, outcome)) = latent.iter().find_map(|s| {
        let o = system.call(s.session.caller, s.session.callee);
        o.chosen
            .as_ref()
            .filter(|c| !c.relays.is_empty() && c.rtt_ms < 300.0)?;
        Some((s, o))
    }) else {
        println!("no fixable latent session in this run — try another seed");
        return;
    };

    let (caller, callee) = (s.session.caller, s.session.callee);
    let (ha, hb) = (
        scenario.population.host(caller),
        scenario.population.host(callee),
    );
    println!(
        "\ncall {caller} ({}, {}) → {callee} ({}, {})",
        ha.ip, ha.asn, hb.ip, hb.asn
    );
    println!(
        "direct route: {:.0} ms RTT (MOS {:.2}) — unacceptable",
        s.direct_rtt_ms,
        mos.mos_from_rtt(s.direct_rtt_ms, s.direct_loss)
    );
    if let Some(path) = scenario.net.as_path(ha.asn, hb.asn) {
        println!("direct AS path: {path:?}");
    }

    let caller_set = system.close_set_of(scenario.population.cluster_of(caller));
    let callee_set = system.close_set_of(scenario.population.cluster_of(callee));
    println!(
        "\nclose cluster sets: caller knows {} clusters, callee knows {}",
        caller_set.len(),
        callee_set.len()
    );

    let sel = outcome
        .selection
        .as_ref()
        .expect("latent call ran selection");
    println!(
        "select-close-relay(): {} one-hop clusters, {} two-hop pairs, {} quality paths, {} messages",
        sel.one_hop.len(),
        sel.two_hop.len(),
        sel.quality_paths(),
        outcome.messages
    );

    let chosen = outcome.chosen.as_ref().unwrap();
    println!(
        "\nASAP relays via {:?}: {:.0} ms RTT, {:.2}% loss → MOS {:.2}",
        chosen.relays,
        chosen.rtt_ms,
        100.0 * chosen.loss,
        mos.mos_from_rtt(chosen.rtt_ms, chosen.loss)
    );

    // How do the baselines fare on the same call? Message spend comes
    // from each selector's ledger scope via `select_metered`.
    let dedi = Dedi::new(&scenario, 80);
    let rand = RandSel::new(200, 1);
    let opt = Opt::new();
    let selectors: [(&str, &dyn RelaySelector); 3] =
        [("DEDI(80)", &dedi), ("RAND(200)", &rand), ("OPT", &opt)];
    for (name, selector) in selectors {
        let (out, spent) = asap_baselines::select_metered(selector, &scenario, s.session, &req);
        match out.best {
            Some(b) => println!(
                "{name:>9}: best {:.0} ms (MOS {:.2}), {} quality paths, {} messages",
                b.rtt_ms,
                mos.mos_from_rtt(b.rtt_ms, 0.005),
                out.quality_paths,
                spent
            ),
            None => println!("{name:>9}: found nothing"),
        }
    }
}
