//! Scalability sweep (§7.3 in miniature): grow the population and watch
//! each method's quality-path yield.
//!
//! A relay-selection method scales if the number of quality paths it
//! finds grows with the online population — every new peer is a potential
//! relay. ASAP's candidate pool is every member of every close cluster,
//! so it scales; fixed probing budgets do not.
//!
//! ```sh
//! cargo run --release --example scalability
//! ```

use asap::prelude::*;
use asap_workload::sessions::{latent_sessions, with_direct_routes};
use asap_workload::PopulationConfig;

fn median(mut v: Vec<f64>) -> f64 {
    if v.is_empty() {
        return f64::NAN;
    }
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

fn main() {
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10}",
        "hosts", "DEDI", "RAND", "MIX", "ASAP"
    );
    for &hosts in &[1_000usize, 2_000, 4_000, 8_000] {
        let mut cfg = ScenarioConfig::eval_scale();
        cfg.population = PopulationConfig {
            target_hosts: hosts,
            ..Default::default()
        };
        let scenario = Scenario::build(cfg, 77);

        let all = sessions::generate(&scenario.population, 20_000, 3);
        let latent = latent_sessions(&with_direct_routes(&scenario, &all), 300.0);
        let req = QualityRequirement::default();

        let dedi = Dedi::new(&scenario, 80);
        let rand = RandSel::new(200, 9);
        let mix = Mix::new(&scenario, 40, 120, 9);
        let system = AsapSystem::bootstrap(&scenario, AsapConfig::default());
        let asap = AsapSelector::new(system);
        let methods: Vec<(&str, &dyn RelaySelector)> = vec![
            ("DEDI", &dedi),
            ("RAND", &rand),
            ("MIX", &mix),
            ("ASAP", &asap),
        ];

        let mut medians = Vec::new();
        for (_, m) in &methods {
            let q: Vec<f64> = latent
                .iter()
                .take(60)
                .map(|s| m.select(&scenario, s.session, &req).quality_paths as f64)
                .collect();
            medians.push(median(q));
        }
        println!(
            "{hosts:>8} {:>10.0} {:>10.0} {:>10.0} {:>10.0}   ({} latent sessions)",
            medians[0],
            medians[1],
            medians[2],
            medians[3],
            latent.len()
        );
    }
    println!("\nmedian quality paths per latent session — ASAP's column should grow\nroughly linearly with the population while the others stay flat.");
}
