//! Path switching and path diversity on top of ASAP (§6.2's closing
//! pointer): a whole call simulated packet by packet under four
//! transmission policies, with mid-call congestion episodes.
//!
//! ```sh
//! cargo run --release --example path_switching
//! ```

use asap::prelude::*;
use asap::transport::dynamics::DynamicsConfig;

fn main() {
    let scenario = Scenario::build(ScenarioConfig::tiny(), 5);
    let dynamics = DynamicsConfig {
        episodes_per_minute: 1.5,
        seed: 17,
        ..Default::default()
    };
    let config = CallConfig {
        duration_ms: 120_000,
        ..Default::default()
    };

    println!(
        "{:>10} | {:>9} {:>8} {:>9} | windows below MOS 3.6",
        "policy", "mean MOS", "min MOS", "switches"
    );
    let mut reports = Vec::new();
    for session in sessions::generate(&scenario.population, 6, 21) {
        for policy in [
            Policy::DirectOnly,
            Policy::Static,
            Policy::Switching,
            Policy::Diversity,
        ] {
            let report = simulate_transport(&scenario, session, policy, &config, &dynamics);
            reports.push(report);
        }
    }

    for policy in [
        Policy::DirectOnly,
        Policy::Static,
        Policy::Switching,
        Policy::Diversity,
    ] {
        let of_policy: Vec<_> = reports.iter().filter(|r| r.policy == policy).collect();
        let mean: f64 = of_policy.iter().map(|r| r.mean_mos).sum::<f64>() / of_policy.len() as f64;
        let min = of_policy
            .iter()
            .map(|r| r.min_mos)
            .fold(f64::INFINITY, f64::min);
        let switches: usize = of_policy.iter().map(|r| r.switches.len()).sum();
        let bad_windows: usize = of_policy
            .iter()
            .flat_map(|r| &r.windows)
            .filter(|w| w.mos < 3.6)
            .count();
        let total_windows: usize = of_policy.iter().map(|r| r.windows.len()).sum();
        println!(
            "{policy:>10} | {mean:>9.2} {min:>8.2} {switches:>9} | {bad_windows}/{total_windows}"
        );
    }
    println!(
        "\nASAP finds the candidate paths; switching repairs mid-call congestion,\n\
         diversity masks uncorrelated loss at the cost of double bandwidth."
    );
}
