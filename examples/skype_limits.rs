//! Reproducing the four Skype limits of §5 with the AS-unaware prober,
//! then showing how ASAP avoids each one.
//!
//! ```sh
//! cargo run --release --example skype_limits
//! ```

use asap::baselines::skype::{simulate_call, SkypeConfig};
use asap::prelude::*;
use asap_workload::sessions::Session;

fn main() {
    let scenario = Scenario::build(ScenarioConfig::tiny(), 11);
    let hosts = scenario.population.hosts();
    let calls: Vec<Session> = (0..10)
        .map(|i| Session {
            caller: hosts[i * 13].id,
            callee: hosts[hosts.len() - 1 - i * 17].id,
        })
        .collect();

    println!("Skype-like AS-unaware prober over {} calls:\n", calls.len());
    let mut worst_stab = 0.0f64;
    let mut total_probed = 0usize;
    let mut total_same_as = 0usize;
    let mut suboptimal = 0usize;
    for (i, &session) in calls.iter().enumerate() {
        let r = simulate_call(&scenario, session, &SkypeConfig::default());
        let direct = scenario
            .host_rtt_ms(session.caller, session.callee)
            .unwrap_or(f64::NAN);
        println!(
            "call {:>2}: direct {direct:>6.0} ms, major {:>6.0} ms, stabilized after {:>5.1} s, \
             probed {:>2} relays ({} same-AS pairs)",
            i + 1,
            r.major_rtt_ms,
            r.stabilization_s,
            r.probed_total,
            r.same_as_pairs
        );
        worst_stab = worst_stab.max(r.stabilization_s);
        total_probed += r.probed_total;
        total_same_as += r.same_as_pairs;
        if r.major_rtt_ms > 350.0 {
            suboptimal += 1;
        }
    }

    println!("\nLimit 1 (suboptimal majors): {suboptimal} calls settled above 350 ms");
    println!("Limit 2 (same-AS probing):   {total_same_as} probed relay pairs shared an AS");
    println!("Limit 3 (slow stabilization): worst case {worst_stab:.1} s");
    println!("Limit 4 (probing overhead):  {total_probed} relays probed in total");

    // ASAP on the same calls: deterministic selection, AS-level dedup,
    // 2-message one-hop selection.
    println!("\nASAP on the same calls:");
    let system = AsapSystem::bootstrap(&scenario, AsapConfig::default());
    for (i, &session) in calls.iter().enumerate() {
        let out = system.call(session.caller, session.callee);
        match &out.chosen {
            Some(p) if p.relays.is_empty() => {
                println!(
                    "call {:>2}: direct path is fine ({:.0} ms), {} messages",
                    i + 1,
                    p.rtt_ms,
                    out.messages
                )
            }
            Some(p) => println!(
                "call {:>2}: relay {:?} at {:.0} ms, {} messages, no probing phase at all",
                i + 1,
                p.relays,
                p.rtt_ms,
                out.messages
            ),
            None => println!("call {:>2}: no quality relay exists", i + 1),
        }
    }
    println!(
        "\n(ASAP total session messages: {}; selection is immediate — zero stabilization time)",
        system.ledger_scope().total()
    );
}
