//! Quickstart: build a small synthetic Internet, boot ASAP, and place a
//! few calls.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use asap::prelude::*;

fn main() {
    // 1. A deterministic world: annotated AS topology + latency model +
    //    peer population, all derived from one seed.
    let scenario = Scenario::build(ScenarioConfig::tiny(), 42);
    println!(
        "world: {} ASes, {} links, {} peers in {} clusters",
        scenario.internet.graph.node_count(),
        scenario.internet.graph.edge_count(),
        scenario.population.hosts().len(),
        scenario.cluster_count(),
    );

    // 2. Boot the ASAP system: bootstrap tables + surrogate election.
    let system = AsapSystem::bootstrap(&scenario, AsapConfig::default());

    // 3. Place calls. Fast direct routes are kept; slow ones trigger
    //    select-close-relay().
    let mos_model = EModel::new(Codec::G729aVad);
    for session in sessions::generate(&scenario.population, 8, 7) {
        let outcome = system.call(session.caller, session.callee);
        let direct = outcome.direct_rtt_ms.unwrap_or(f64::NAN);
        match &outcome.chosen {
            Some(path) if path.relays.is_empty() => {
                println!(
                    "{} → {}: direct {direct:.0} ms (MOS {:.2}), {} messages",
                    session.caller,
                    session.callee,
                    mos_model.mos_from_rtt(path.rtt_ms, path.loss),
                    outcome.messages
                );
            }
            Some(path) => {
                println!(
                    "{} → {}: direct {direct:.0} ms → relayed via {:?} at {:.0} ms (MOS {:.2}), {} messages",
                    session.caller,
                    session.callee,
                    path.relays,
                    path.rtt_ms,
                    mos_model.mos_from_rtt(path.rtt_ms, path.loss),
                    outcome.messages
                );
            }
            None => {
                println!(
                    "{} → {}: direct {direct:.0} ms and no quality relay exists",
                    session.caller, session.callee
                );
            }
        }
    }

    let stats = system.stats();
    println!(
        "\nsystem: {} calls ({} direct, {} relayed), {} close sets built, {} session messages",
        stats.calls,
        stats.direct_calls,
        stats.relayed_calls,
        stats.close_sets_built,
        system.ledger_scope().total()
    );
}
