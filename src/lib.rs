//! # ASAP — an AS-Aware Peer-Relay Protocol for High Quality VoIP
//!
//! A from-scratch reproduction of Ren, Guo & Zhang's ICDCS 2006 paper:
//! the ASAP protocol itself plus every substrate its trace-driven
//! evaluation needs (annotated AS graphs, BGP policy routing, Gao
//! relationship inference, an Internet latency/loss model, the ITU
//! E-model, peer populations, and the DEDI/RAND/MIX/OPT baselines and a
//! Skype-like prober it is compared against).
//!
//! This crate is a facade: it re-exports the workspace crates under short
//! module names and hosts the runnable examples and cross-crate
//! integration tests.
//!
//! ```
//! use asap::prelude::*;
//!
//! // Build a small world, boot ASAP, and place a call.
//! let scenario = Scenario::build(ScenarioConfig::tiny(), 1);
//! let system = AsapSystem::bootstrap(&scenario, AsapConfig::default());
//! let session = sessions::generate(&scenario.population, 1, 2)[0];
//! let outcome = system.call(session.caller, session.callee);
//! assert!(outcome.messages >= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use asap_baselines as baselines;
pub use asap_cluster as cluster;
pub use asap_core as core;
pub use asap_netsim as netsim;
pub use asap_topology as topology;
pub use asap_transport as transport;
pub use asap_voip as voip;
pub use asap_workload as workload;

/// The most common imports, in one line.
pub mod prelude {
    pub use asap_baselines::{Dedi, Mix, Opt, RandSel, RelaySelector, SelectionOutcome};
    pub use asap_cluster::{Asn, ClusterId, Ip, Prefix};
    pub use asap_core::{AsapConfig, AsapSelector, AsapSystem};
    pub use asap_netsim::{NetConfig, NetModel};
    pub use asap_topology::{AsGraph, EdgeKind, InternetConfig, InternetGenerator};
    pub use asap_transport::call::{simulate as simulate_transport, CallConfig, Policy};
    pub use asap_voip::{emodel::EModel, Codec, QualityRequirement};
    pub use asap_workload::{sessions, HostId, Population, Scenario, ScenarioConfig};
}
