//! Fault-recovery across the whole stack: mid-call relay death with
//! failover from the cached candidate set, and the fault-driven
//! event simulation's determinism and survival guarantees.

use asap::core::events::{run, SimConfig};
use asap::netsim::faults::FaultPlanConfig;
use asap::prelude::*;

fn scenario() -> Scenario {
    Scenario::build(ScenarioConfig::tiny(), 404)
}

#[test]
fn midcall_relay_crash_fails_over_without_panic() {
    let s = scenario();
    let system = AsapSystem::bootstrap(&s, AsapConfig::default());
    // Find a relayed call.
    let relayed = sessions::generate(&s.population, 3_000, 8)
        .into_iter()
        .filter_map(|sess| {
            let out = system.call(sess.caller, sess.callee);
            let chosen = out.chosen.clone()?;
            let relay = *chosen.relays.first()?;
            Some((sess, out, relay))
        })
        .next();
    let Some((sess, out, relay)) = relayed else {
        eprintln!("no relayed call in this tiny world — vacuous pass");
        return;
    };
    let selection = out.selection.expect("relayed calls carry a selection");
    let messages_before = system.stats().recovery.recovery_messages;

    // The relay dies mid-call.
    system.crash_host(relay);
    let path = system.failover_path(sess.caller, sess.callee, &selection, &[relay]);

    let path = path.expect("failover finds some path (direct at worst)");
    assert!(
        !path.relays.contains(&relay),
        "failover re-picked the crashed relay"
    );
    let recovery = system.stats().recovery;
    assert_eq!(recovery.failovers, 1);
    assert!(
        recovery.recovery_messages >= messages_before + 2,
        "failover re-ping was not accounted: {recovery:?}"
    );
}

#[test]
fn fault_driven_simulation_is_deterministic() {
    let s = scenario();
    let sim = SimConfig {
        calls: 60,
        surrogate_failures: 0,
        faults: Some(FaultPlanConfig {
            seed: 9,
            surrogate_crash_per_tick: 0.01,
            host_crash_per_tick: 0.01,
            congestion_per_tick: 0.005,
            drop_window_per_tick: 0.005,
            stale_close_set_per_tick: 0.005,
            ..Default::default()
        }),
        seed: 9,
        ..Default::default()
    };
    let a = run(&s, AsapConfig::default(), &sim);
    let b = run(&s, AsapConfig::default(), &sim);
    assert_eq!(a, b, "same seed must reproduce the whole report");
}

#[test]
fn calls_survive_one_percent_crash_rate() {
    let s = scenario();
    let mut completed = 0u64;
    let mut dropped = 0u64;
    for seed in 0..5u64 {
        let sim = SimConfig {
            calls: 100,
            surrogate_failures: 0,
            faults: Some(FaultPlanConfig {
                seed,
                surrogate_crash_per_tick: 0.01,
                host_crash_per_tick: 0.01,
                ..Default::default()
            }),
            seed,
            ..Default::default()
        };
        let report = run(&s, AsapConfig::default(), &sim);
        completed += report.calls_completed;
        dropped += report.calls_dropped;
    }
    assert!(completed > 0, "no call completed at all");
    let survival = (completed - dropped) as f64 / completed as f64;
    assert!(
        survival >= 0.99,
        "only {survival:.4} of calls survived 1%/tick crashes ({dropped}/{completed} dropped)"
    );
}
