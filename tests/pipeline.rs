//! End-to-end fidelity of the bootstrap pipeline: synthetic Internet →
//! BGP RIB → Gao inference → (inferred annotated graph) → valley-free
//! close-set search. The paper's bootstraps never see ground truth; they
//! infer the annotated graph from BGP dumps. This test checks that the
//! inferred graph supports the protocol as well as the true one.

use asap::cluster::Asn;
use asap::prelude::*;
use asap::topology::gao::{accuracy, infer, GaoConfig};
use asap::topology::rib::{collect_rib, extract_prefix_table, RibConfig};
use asap::topology::updates::{RibMirror, UpdateConfig, UpdateGenerator};
use asap::topology::valley::{bounded_search, Expand};

#[test]
fn inferred_graph_supports_the_same_close_set_search() {
    let scenario = Scenario::build(ScenarioConfig::tiny(), 55);
    let truth = &scenario.internet.graph;

    // Bootstrap's view: a full-table RIB — every AS originates at least
    // one prefix (as on the real Internet), seen from 60 vantage points.
    // The population's host prefixes alone would cover too few links for
    // inference, just as a single-collector BGP view would.
    let mut announcements = scenario.population.announcements().to_vec();
    for (i, &asn) in truth.asns().iter().enumerate() {
        let base = asap::cluster::Ip((192u32 << 24) | ((i as u32) << 8));
        announcements.push((asap::cluster::Prefix::new(base, 24), asn));
    }
    let rib = collect_rib(
        truth,
        &announcements,
        &RibConfig {
            vantage_points: 60,
            seed: 2,
        },
    );
    let paths: Vec<Vec<Asn>> = rib.iter().map(|e| e.as_path.clone()).collect();
    let inferred = infer(&paths, &GaoConfig::default()).graph;

    // Inference quality on the overlapping edges. The flat topology is
    // adversarial for Gao's phase 3 (many links sit adjacent to path
    // tops, inviting peering over-inference — her paper reports the same
    // weakness), so the bar here is lower than the per-crate unit test's.
    let acc = accuracy(&inferred, truth);
    assert!(acc.ratio() > 0.7, "inference accuracy {:.2}", acc.ratio());

    // Valley-free k-hop reach from host ASes: inferred vs truth. The
    // inferred graph only contains observed adjacencies, so its ball is a
    // subset; it must still recover the bulk of the true reach.
    let host_asns: Vec<Asn> = scenario
        .population
        .clustering()
        .clusters()
        .iter()
        .map(|c| c.asn())
        .take(8)
        .collect();
    let mut recovered = 0usize;
    let mut total = 0usize;
    for &origin in &host_asns {
        let reach = |g: &asap::topology::AsGraph| -> std::collections::HashSet<Asn> {
            bounded_search(g, origin, 4, |_| Expand::Continue)
                .into_iter()
                .map(|r| r.asn)
                .collect()
        };
        let true_ball = reach(truth);
        if !inferred.contains(origin) {
            continue;
        }
        let inferred_ball = reach(&inferred);
        total += true_ball.len();
        recovered += true_ball.intersection(&inferred_ball).count();
    }
    assert!(total > 0);
    let frac = recovered as f64 / total as f64;
    assert!(
        frac > 0.6,
        "inferred graph recovers only {frac:.2} of the k=4 reach"
    );
}

#[test]
fn prefix_table_from_rib_matches_population_truth() {
    let scenario = Scenario::build(ScenarioConfig::tiny(), 56);
    let rib = collect_rib(
        &scenario.internet.graph,
        scenario.population.announcements(),
        &RibConfig {
            vantage_points: 40,
            seed: 3,
        },
    );
    let table = extract_prefix_table(&rib);
    // Every host whose prefix was observed maps to its true AS.
    let mut observed = 0usize;
    for host in scenario.population.hosts().iter().take(300) {
        if let Some(asn) = table.origin_as(host.ip) {
            observed += 1;
            assert_eq!(asn, host.asn, "wrong origin for {}", host.ip);
        }
    }
    assert!(
        observed > 200,
        "RIB observed too few host prefixes: {observed}"
    );
}

#[test]
fn bootstrap_mirror_survives_a_day_of_updates() {
    let scenario = Scenario::build(ScenarioConfig::tiny(), 57);
    let graph = &scenario.internet.graph;
    let rib = collect_rib(
        graph,
        scenario.population.announcements(),
        &RibConfig {
            vantage_points: 10,
            seed: 4,
        },
    );
    let mut mirror = RibMirror::from_rib(&rib);
    let initial_len = mirror.table().len();
    let updates = UpdateGenerator::new(
        graph,
        UpdateConfig {
            flaps_per_prefix: 0.5,
            seed: 5,
            ..Default::default()
        },
    )
    .generate(&rib);
    for u in &updates {
        mirror.apply(u);
    }
    // Flaps recover, so the table ends where it started, and every entry
    // still resolves hosts to real ASes.
    assert_eq!(mirror.table().len(), initial_len);
    for host in scenario.population.hosts().iter().take(100) {
        if let Some(asn) = mirror.table().origin_as(host.ip) {
            assert!(graph.contains(asn));
        }
    }
}
