//! End-to-end transport test: ASAP-selected candidate paths carried
//! through packet-level calls under every policy.

use asap::prelude::*;
use asap::transport::call::{candidate_paths, simulate_with_paths};
use asap::transport::dynamics::DynamicsConfig;

#[test]
fn policies_rank_sanely_over_asap_candidates() {
    let scenario = Scenario::build(ScenarioConfig::tiny(), 31);
    let system = AsapSystem::bootstrap(&scenario, AsapConfig::default());
    let call_cfg = CallConfig {
        duration_ms: 90_000,
        ..Default::default()
    };
    let dynamics = DynamicsConfig {
        episodes_per_minute: 2.0,
        seed: 77,
        ..Default::default()
    };

    let mut means = std::collections::HashMap::new();
    let mut compared = 0usize;
    for session in sessions::generate(&scenario.population, 10, 9) {
        let paths = candidate_paths(&scenario, &system, session, &call_cfg, &dynamics);
        if paths.len() < 2 {
            continue; // no standby: every policy degenerates to static
        }
        compared += 1;
        for policy in [Policy::Static, Policy::Switching, Policy::Diversity] {
            let report = simulate_with_paths(paths.clone(), policy, &call_cfg);
            assert!(!report.windows.is_empty());
            assert!(report.min_mos <= report.mean_mos + 1e-9);
            *means.entry(policy_name(policy)).or_insert(0.0) += report.mean_mos;
        }
    }
    assert!(
        compared >= 3,
        "too few sessions with standby paths: {compared}"
    );

    let avg = |k: &str| means[k] / compared as f64;
    // Adaptive policies must not do materially worse than static: they
    // only deviate from the static choice on evidence.
    assert!(
        avg("switching") >= avg("static") - 0.05,
        "switching {:.2} vs static {:.2}",
        avg("switching"),
        avg("static")
    );
    assert!(
        avg("diversity") >= avg("static") - 0.05,
        "diversity {:.2} vs static {:.2}",
        avg("diversity"),
        avg("static")
    );
}

fn policy_name(p: Policy) -> &'static str {
    match p {
        Policy::DirectOnly => "direct",
        Policy::Static => "static",
        Policy::Switching => "switching",
        Policy::Diversity => "diversity",
    }
}

#[test]
fn candidate_paths_always_start_with_direct_when_routable() {
    let scenario = Scenario::build(ScenarioConfig::tiny(), 32);
    let system = AsapSystem::bootstrap(&scenario, AsapConfig::default());
    let call_cfg = CallConfig::default();
    let dynamics = DynamicsConfig::default();
    for session in sessions::generate(&scenario.population, 8, 10) {
        let paths = candidate_paths(&scenario, &system, session, &call_cfg, &dynamics);
        if scenario
            .host_rtt_ms(session.caller, session.callee)
            .is_some()
        {
            assert_eq!(paths[0].label, "direct");
        }
        // Relay candidates never name the endpoints.
        for p in &paths[1..] {
            assert!(p.label.starts_with("via "));
        }
        assert!(paths.len() <= 1 + call_cfg.max_candidates);
    }
}
