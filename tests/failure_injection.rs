//! Failure injection across the whole stack: AS failures, AS congestion,
//! and surrogate crashes, observed through ASAP's behavior.

use asap::netsim::AsCondition;
use asap::prelude::*;

fn scenario() -> Scenario {
    Scenario::build(ScenarioConfig::tiny(), 404)
}

#[test]
fn failing_a_transit_as_degrades_direct_routes_crossing_it() {
    let mut s = scenario();
    let hosts = s.population.hosts();
    let (a, b) = (hosts[0].id, hosts[170].id);
    let (asn_a, asn_b) = (s.population.host(a).asn, s.population.host(b).asn);
    let path = s.net.as_path(asn_a, asn_b).expect("routable pair");
    assert!(path.len() >= 3, "need a transit AS on the path");
    let before = s.host_rtt_ms(a, b).unwrap();

    s.net.set_condition(path[1], AsCondition::Failed);
    let after = s.host_rtt_ms(a, b).unwrap();
    assert!(after > before, "failure must not speed the path up");
    assert!(
        after >= s.net.config().failure_rtt_ms,
        "failed AS must plateau the RTT"
    );
    assert_eq!(s.host_loss(a, b), Some(1.0));
}

#[test]
fn asap_relays_around_injected_congestion_when_endpoints_are_multihomed() {
    let mut s = scenario();
    // Find a session whose endpoints are multi-homed (bypassable) and
    // inject heavy congestion into a middle AS of its direct route.
    let sessions = sessions::generate(&s.population, 400, 7);
    let mut injected = None;
    for sess in &sessions {
        let (ha, hb) = (
            s.population.host(sess.caller).asn,
            s.population.host(sess.callee).asn,
        );
        if !s.internet.graph.is_multi_homed(ha) || !s.internet.graph.is_multi_homed(hb) {
            continue;
        }
        let Some(path) = s.net.as_path(ha, hb) else {
            continue;
        };
        if path.len() < 4 {
            continue;
        }
        let victim = path[path.len() / 2];
        s.net.set_condition(
            victim,
            AsCondition::Congested {
                added_rtt_ms: 400.0,
                added_loss: 0.02,
            },
        );
        if s.host_rtt_ms(sess.caller, sess.callee)
            .is_some_and(|r| r > 300.0)
        {
            injected = Some((*sess, victim));
            break;
        }
        s.net.set_condition(victim, AsCondition::Healthy);
    }
    let Some((sess, victim)) = injected else {
        eprintln!("no injectable session in this tiny world — vacuous pass");
        return;
    };

    let system = AsapSystem::bootstrap(&s, AsapConfig::default());
    let outcome = system.call(sess.caller, sess.callee);
    assert!(
        !outcome.used_direct,
        "direct route crosses the congested {victim}"
    );
    if let Some(chosen) = &outcome.chosen {
        if !chosen.relays.is_empty() {
            assert!(
                chosen.rtt_ms < outcome.direct_rtt_ms.unwrap(),
                "relay path must beat the congested direct route"
            );
        }
    }
}

#[test]
fn cascading_surrogate_failures_never_wedge_the_system() {
    let s = scenario();
    let system = AsapSystem::bootstrap(&s, AsapConfig::default());
    // Kill the surrogate of the biggest cluster several times in a row;
    // every failover must elect a member and calls must keep completing.
    let big = s
        .population
        .clustering()
        .clusters()
        .iter()
        .max_by_key(|c| c.len())
        .unwrap()
        .id();
    let members = s.population.cluster_members(big);
    let kills = (members.len() - 1).min(4);
    let mut seen = vec![system.surrogate_of(big)];
    for _ in 0..kills {
        let next = system.fail_surrogate(big);
        assert!(members.contains(&next));
        assert!(
            !seen.contains(&next),
            "failover re-elected a dead surrogate"
        );
        seen.push(next);
    }
    let sess = sessions::generate(&s.population, 5, 8);
    for x in sess {
        let out = system.call(x.caller, x.callee);
        assert!(out.messages >= 2);
    }
}

#[test]
fn close_sets_reflect_injected_congestion() {
    let mut s = scenario();
    let system = AsapSystem::bootstrap(&s, AsapConfig::default());
    let cluster = s.population.clustering().clusters()[0].id();
    let before = system.close_set_of(cluster).len();
    drop(system);

    // Congest the origin cluster's AS itself: every leg from this cluster
    // now pays 400 ms, so its close set must collapse.
    let asn = s.population.clustering().cluster(cluster).asn();
    s.net.set_condition(
        asn,
        AsCondition::Congested {
            added_rtt_ms: 400.0,
            added_loss: 0.0,
        },
    );
    let system = AsapSystem::bootstrap(&s, AsapConfig::default());
    let after = system.close_set_of(cluster).len();
    // Only intra-AS clusters (0 AS hops, no congested traversal applies
    // to same-AS legs in the model) can remain.
    assert!(
        after < before || before == 0,
        "close set did not shrink: {before} -> {after}"
    );
}
