//! Cross-crate integration test: the paper's headline comparison (§7.2).
//!
//! On latent sessions (direct RTT > 300 ms):
//!
//! * ASAP finds orders of magnitude more quality paths than DEDI/RAND/MIX
//!   (Figs. 11/12);
//! * ASAP's shortest relay RTT approaches OPT's and beats the probing
//!   baselines (Figs. 13/14);
//! * ASAP's MOS stays satisfactory while baselines leave a bad tail
//!   (Figs. 15/16).
//!
//! Run at a reduced scale so the suite stays fast; the bench binaries
//! reproduce the full-scale figures.

use asap::prelude::*;
use asap_workload::sessions::{latent_sessions, with_direct_routes};
use asap_workload::PopulationConfig;

fn build() -> Scenario {
    let mut cfg = ScenarioConfig::eval_scale();
    cfg.population = PopulationConfig {
        target_hosts: 3_000,
        ..Default::default()
    };
    // Slightly heavier congestion than the default so the reduced test
    // scale still yields a solid pool of latent sessions.
    cfg.net.congestion_prob_core_link = 0.08;
    Scenario::build(cfg, 2026)
}

#[test]
fn asap_dominates_baselines_and_approaches_opt() {
    let scenario = build();
    let all = sessions::generate(&scenario.population, 8_000, 3);
    let with = with_direct_routes(&scenario, &all);
    let latent = latent_sessions(&with, 300.0);
    assert!(
        latent.len() >= 10,
        "need latent sessions to compare on, got {}",
        latent.len()
    );

    let req = QualityRequirement::default();
    let dedi = Dedi::new(&scenario, 80);
    let rand = RandSel::new(200, 7);
    let mix = Mix::new(&scenario, 40, 120, 7);
    let opt = Opt::new();
    let system = AsapSystem::bootstrap(&scenario, AsapConfig::default());
    let asap = AsapSelector::new(system);

    // Unlike the paper's trace (where every latent session had a sub-300 ms
    // one-hop path), our synthetic world also contains *hopeless* latent
    // sessions — endpoint-adjacent congestion no relay can bypass. OPT
    // classifies them: the comparison runs on the fixable ones.
    let mut fixable = 0usize;
    let mut asap_wins_quality = 0usize;
    let mut asap_best_sum = 0.0;
    let mut opt_best_sum = 0.0;
    let mut asap_found = 0usize;
    let mut asap_msgs = Vec::new();

    for s in latent.iter().take(60) {
        let sess = s.session;
        let o_opt = opt.select(&scenario, sess, &req);
        let (_, asap_spent) = asap_baselines::select_metered(&asap, &scenario, sess, &req);
        asap_msgs.push(asap_spent);
        let opt_best = match &o_opt.best {
            Some(b) if req.rtt_ok(b.rtt_ms) => b.rtt_ms,
            _ => continue,
        };
        fixable += 1;
        let o_dedi = dedi.select(&scenario, sess, &req);
        let o_rand = rand.select(&scenario, sess, &req);
        let o_mix = mix.select(&scenario, sess, &req);
        let o_asap = asap.select(&scenario, sess, &req);

        let base_max = o_dedi
            .quality_paths
            .max(o_rand.quality_paths)
            .max(o_mix.quality_paths);
        if o_asap.quality_paths > 10 * base_max.max(1) {
            asap_wins_quality += 1;
        }
        if let Some(a) = &o_asap.best {
            asap_found += 1;
            asap_best_sum += a.rtt_ms;
            opt_best_sum += opt_best;
        }
    }
    assert!(fixable >= 5, "need fixable latent sessions, got {fixable}");

    // Figs. 11/12: ASAP finds vastly more quality paths for most fixable
    // sessions.
    assert!(
        asap_wins_quality * 10 >= fixable * 7,
        "ASAP out-found baselines 10× on only {asap_wins_quality}/{fixable} fixable sessions"
    );

    // Figs. 13/14: ASAP's average best RTT approaches OPT's and meets the
    // latency requirement.
    assert!(
        asap_found * 10 >= fixable * 8,
        "ASAP found a relay on only {asap_found}/{fixable}"
    );
    let asap_avg = asap_best_sum / asap_found as f64;
    let opt_avg = opt_best_sum / asap_found as f64;
    assert!(opt_avg <= asap_avg + 1e-9, "OPT must lower-bound ASAP");
    assert!(
        asap_avg <= 2.0 * opt_avg + 20.0,
        "ASAP best avg {asap_avg:.1} ms vs OPT {opt_avg:.1} ms — too far from optimal"
    );
    assert!(
        asap_avg < 300.0,
        "ASAP best avg {asap_avg:.1} ms fails the latency requirement"
    );

    // Fig. 18: most sessions stay within a few hundred messages.
    asap_msgs.sort_unstable();
    let p80 = asap_msgs[(asap_msgs.len() * 8 / 10).min(asap_msgs.len() - 1)];
    assert!(
        p80 <= 1_000,
        "80th-percentile ASAP overhead {p80} messages is out of shape"
    );
}

#[test]
fn asap_mos_stays_satisfactory_where_baselines_fail() {
    let scenario = build();
    let all = sessions::generate(&scenario.population, 8_000, 4);
    let with = with_direct_routes(&scenario, &all);
    let latent = latent_sessions(&with, 300.0);
    if latent.len() < 5 {
        return;
    }
    let req = QualityRequirement::default();
    let system = AsapSystem::bootstrap(&scenario, AsapConfig::default());
    let asap = AsapSelector::new(system);
    let rand = RandSel::new(200, 9);
    let model = EModel::new(Codec::G729aVad);

    let mut asap_mos = Vec::new();
    let mut rand_mos = Vec::new();
    for s in latent.iter().take(20) {
        let o_asap = asap.select(&scenario, s.session, &req);
        let o_rand = rand.select(&scenario, s.session, &req);
        if let Some(b) = o_asap.best {
            asap_mos.push(model.mos_from_rtt(b.rtt_ms, 0.005));
        }
        if let Some(b) = o_rand.best {
            rand_mos.push(model.mos_from_rtt(b.rtt_ms, 0.005));
        }
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(!asap_mos.is_empty());
    assert!(
        avg(&asap_mos) >= 3.6,
        "ASAP mean MOS {:.2} below satisfaction",
        avg(&asap_mos)
    );
    if !rand_mos.is_empty() {
        assert!(
            avg(&asap_mos) >= avg(&rand_mos) - 0.05,
            "ASAP MOS {:.2} should not trail RAND {:.2}",
            avg(&asap_mos),
            avg(&rand_mos)
        );
    }
}
