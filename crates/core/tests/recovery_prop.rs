//! Property-based tests of the fault-recovery invariants.
//!
//! Whatever sequence of crashes, forced-stale epochs, and close-set
//! fetches hits the system:
//!
//! 1. a cluster with at least one online member never has an offline
//!    surrogate (re-election is immediate and complete);
//! 2. every cluster always has a non-empty surrogate list (the protocol
//!    never loses a cluster's representative entirely);
//! 3. no cached close set outlives the surrogate epoch of any cluster it
//!    references (eager purging means the cache can never serve stale
//!    relay representatives).

use std::sync::OnceLock;

use asap_cluster::ClusterId;
use asap_core::{AsapConfig, AsapSystem};
use asap_workload::{HostId, Scenario, ScenarioConfig};
use proptest::prelude::*;

fn scenario() -> &'static Scenario {
    static SCENARIO: OnceLock<Scenario> = OnceLock::new();
    SCENARIO.get_or_init(|| Scenario::build(ScenarioConfig::tiny(), 23))
}

/// One randomized action against the running system.
fn apply(system: &AsapSystem<'_>, x: u32, action: u8) {
    let s = system.scenario();
    let hosts = s.population.hosts().len() as u32;
    let clusters = s.population.clustering().cluster_count() as u32;
    match action % 4 {
        0 => {
            system.crash_host(HostId(x % hosts));
        }
        1 => {
            system.expire_close_set(ClusterId(x % clusters));
        }
        2 => {
            let _ = system.close_set_of(ClusterId(x % clusters));
        }
        _ => {
            system.fail_surrogate(ClusterId(x % clusters));
        }
    }
}

fn check_invariants(system: &AsapSystem<'_>) -> Result<(), TestCaseError> {
    let s = system.scenario();
    for c in s.population.clustering().clusters() {
        let surrogates = system.surrogates_of(c.id());
        prop_assert!(
            !surrogates.is_empty(),
            "cluster {:?} lost every surrogate",
            c.id()
        );
        let members = s.population.cluster_members(c.id());
        if members.iter().any(|&h| system.is_online(h)) {
            for sur in &surrogates {
                prop_assert!(
                    system.is_online(*sur),
                    "cluster {:?} has an online member but offline surrogate {sur}",
                    c.id()
                );
            }
        }
    }
    prop_assert!(
        system.cache_epoch_consistent(),
        "a cached close set outlived a referenced surrogate epoch"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn recovery_invariants_hold_under_arbitrary_churn(
        ops in proptest::collection::vec((any::<u32>(), any::<u8>()), 0..40)
    ) {
        let s = scenario();
        let system = AsapSystem::bootstrap(s, AsapConfig::default());
        check_invariants(&system)?;
        for (x, action) in ops {
            apply(&system, x, action);
            check_invariants(&system)?;
        }
    }

    #[test]
    fn crashed_surrogates_never_serve_again(
        crashes in proptest::collection::vec(any::<u32>(), 1..30)
    ) {
        let s = scenario();
        let system = AsapSystem::bootstrap(s, AsapConfig::default());
        let hosts = s.population.hosts().len() as u32;
        for x in crashes {
            let victim = HostId(x % hosts);
            system.crash_host(victim);
            let cluster = s.population.cluster_of(victim);
            let members = s.population.cluster_members(cluster);
            if members.iter().any(|&h| system.is_online(h)) {
                prop_assert!(
                    !system.surrogates_of(cluster).contains(&victim),
                    "crashed {victim} still listed as surrogate"
                );
            }
        }
        check_invariants(&system)?;
    }
}
