//! Property-based tests of the overload/admission invariants.
//!
//! Whatever capacity configuration and fetch schedule hits the system:
//!
//! 1. admission control never loses a request — every offered fetch is
//!    admitted, queued, or shed (`offered == admitted + queued + shed`),
//!    and the observed queue depth never exceeds the configured bound;
//! 2. hedging never double-counts — a hedge leg can win at most once
//!    per issued hedge, and every fetch produces exactly one outcome
//!    regardless of how many legs raced for it;
//! 3. degradation caused purely by shedding always recovers — once the
//!    burst subsides, the same cluster serves `FullAsap` again (load is
//!    an episode, never a terminal state).

use std::sync::OnceLock;

use asap_core::{AsapConfig, AsapSystem, DegradationLevel};
use asap_workload::{Scenario, ScenarioConfig};
use proptest::prelude::*;

fn scenario() -> &'static Scenario {
    static SCENARIO: OnceLock<Scenario> = OnceLock::new();
    SCENARIO.get_or_init(|| Scenario::build(ScenarioConfig::tiny(), 31))
}

/// A capacity squeeze drawn from the whole sensible knob space.
fn arb_config() -> impl Strategy<Value = AsapConfig> {
    (
        1u32..6,       // surrogate_budget
        200u64..3_000, // budget_window_ms
        1u32..8,       // queue_limit
        100u64..2_500, // queue_deadline_ms
        50u64..20_000, // hedge_delay_ms
    )
        .prop_map(|(budget, window, queue, deadline, hedge)| {
            let mut config = AsapConfig::default();
            config.capacity.surrogate_budget = budget;
            config.capacity.budget_window_ms = window;
            config.capacity.queue_limit = queue;
            config.capacity.queue_deadline_ms = deadline;
            config.capacity.hedge_delay_ms = hedge;
            config
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn admission_never_loses_a_request(
        config in arb_config(),
        fetches in proptest::collection::vec((0u32..8, 0u32..64), 1..60),
        advances in proptest::collection::vec(0u64..500, 0..8),
    ) {
        let s = scenario();
        let queue_limit = u64::from(config.capacity.queue_limit);
        let system = AsapSystem::bootstrap(s, config);
        let clusters = s.population.clustering().clusters();
        let mut advances = advances.into_iter();
        for (ci, mi) in fetches {
            let cluster = clusters[ci as usize % clusters.len()].id();
            let members = s.population.cluster_members(cluster);
            let member = members[mi as usize % members.len()];
            let fetch = system.fetch_close_set_degraded(cluster, member);
            // A shed fetch still lands somewhere on the ladder — the
            // call is degraded, not lost.
            if fetch.shed {
                prop_assert_ne!(fetch.level, DegradationLevel::FullAsap);
            }
            if let Some(step) = advances.next() {
                system.advance_to(system.now_ms() + step);
            }
        }
        let overload = system.stats().overload;
        prop_assert!(
            overload.accounted(),
            "admission lost a request: {:?}",
            overload
        );
        prop_assert!(
            overload.max_queue_depth <= queue_limit,
            "queue depth {} exceeded bound {}",
            overload.max_queue_depth,
            queue_limit
        );
        // Only fetches that actually reached a surrogate count as served.
        prop_assert!(
            overload.surrogate_requests <= overload.admitted_fetches + overload.queued_fetches
        );
    }

    #[test]
    fn hedging_never_double_counts(
        config in arb_config(),
        fetches in proptest::collection::vec((0u32..8, 0u32..64), 1..60),
    ) {
        let s = scenario();
        let system = AsapSystem::bootstrap(s, config);
        let clusters = s.population.clustering().clusters();
        let mut outcomes = 0u64;
        for (ci, mi) in fetches.iter() {
            let cluster = clusters[*ci as usize % clusters.len()].id();
            let members = s.population.cluster_members(cluster);
            let member = members[*mi as usize % members.len()];
            let fetch = system.fetch_close_set_degraded(cluster, member);
            // Exactly one outcome per fetch, no matter how many legs
            // raced: either a set was served or the ladder bottomed out
            // at the probe rung with nothing cached.
            outcomes += 1;
            prop_assert!(
                fetch.set.is_some() || fetch.level != DegradationLevel::FullAsap,
                "a full-service fetch must carry a set"
            );
        }
        let overload = system.stats().overload;
        prop_assert_eq!(outcomes, fetches.len() as u64);
        prop_assert!(
            overload.hedge_wins <= overload.hedged_fetches,
            "more hedge wins ({}) than hedges issued ({})",
            overload.hedge_wins,
            overload.hedged_fetches
        );
        // A hedge win serves the fetch — it can never add a second
        // completion on top of an admitted one.
        prop_assert!(
            overload.hedge_wins + overload.admitted_fetches + overload.queued_fetches
                <= overload.offered_fetches + overload.hedged_fetches
        );
    }

    #[test]
    fn shedding_degradation_always_recovers(
        burst in 8u32..40,
        quiet_ms in 10_000u64..120_000,
    ) {
        let s = scenario();
        // A squeeze tight enough that any burst sheds.
        let mut config = AsapConfig::default();
        config.capacity.surrogate_budget = 1;
        config.capacity.budget_window_ms = 1_000;
        config.capacity.queue_limit = 2;
        config.capacity.queue_deadline_ms = 800;
        config.capacity.hedge_delay_ms = 30_000; // isolate shedding
        let system = AsapSystem::bootstrap(s, config);
        let cluster = s.population.clustering().clusters()[0].id();
        let member = s.population.cluster_members(cluster)[0];
        // Warm the cache so shed fetches serve the stale rung.
        let _ = system.close_set_of(cluster);
        let mut shed = 0u32;
        for _ in 0..burst {
            if system.fetch_close_set_degraded(cluster, member).shed {
                shed += 1;
            }
        }
        prop_assert!(shed > 0, "an instant burst of {} must shed on a 1/s budget", burst);
        // Load subsides: a membership sweep keeps heartbeats flowing
        // across the jump, then the same fetch is full service again.
        system.membership_tick(system.now_ms() + quiet_ms);
        let fetch = system.fetch_close_set_degraded(cluster, member);
        prop_assert!(!fetch.shed, "quiet period must clear the admission queue");
        prop_assert_eq!(fetch.level, DegradationLevel::FullAsap);
    }
}
