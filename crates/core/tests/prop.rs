//! Property-based tests for `select-close-relay()` over arbitrary close
//! cluster sets, and close-set invariants on a shared scenario.

use std::sync::OnceLock;

use asap_cluster::ClusterId;
use asap_core::close_set::{
    construct_close_cluster_set, CloseClusterEntry, CloseClusterSet, ClusterIndex,
};
use asap_core::select::select_close_relay;
use asap_core::AsapConfig;
use asap_netsim::RELAY_DELAY_RTT_MS;
use asap_workload::{HostId, Scenario, ScenarioConfig};
use proptest::prelude::*;

fn shared_scenario() -> &'static Scenario {
    static SCENARIO: OnceLock<Scenario> = OnceLock::new();
    SCENARIO.get_or_init(|| Scenario::build(ScenarioConfig::tiny(), 99))
}

fn arb_entry() -> impl Strategy<Value = CloseClusterEntry> {
    (0u32..40, 1.0f64..280.0, 0.0f64..0.04, 0usize..5).prop_map(|(c, rtt, loss, hops)| {
        CloseClusterEntry {
            cluster: ClusterId(c),
            surrogate: HostId(c),
            rtt_ms: rtt,
            loss,
            as_hops: hops,
        }
    })
}

fn arb_set() -> impl Strategy<Value = CloseClusterSet> {
    proptest::collection::vec(arb_entry(), 0..24).prop_map(CloseClusterSet::from_entries)
}

proptest! {
    #[test]
    fn one_hop_results_respect_latency_threshold(caller in arb_set(), callee in arb_set()) {
        let config = AsapConfig { size_t: 0, ..Default::default() };
        let sel = select_close_relay(&caller, &callee, &config, &|_| 3, &mut |_| {
            CloseClusterSet::default()
        });
        for r in &sel.one_hop {
            prop_assert!(r.est_rtt_ms < config.lat_t_ms);
            // The estimate is the sum of both legs plus the relay delay.
            let (e1, e2) = (caller.get(r.cluster).unwrap(), callee.get(r.cluster).unwrap());
            prop_assert!((r.est_rtt_ms - (e1.rtt_ms + e2.rtt_ms + RELAY_DELAY_RTT_MS)).abs() < 1e-9);
        }
        // Sorted ascending.
        for w in sel.one_hop.windows(2) {
            prop_assert!(w[0].est_rtt_ms <= w[1].est_rtt_ms);
        }
        // One-hop clusters are exactly the thresholded intersection.
        for e1 in caller.entries() {
            let qualifies = callee
                .get(e1.cluster)
                .is_some_and(|e2| e1.rtt_ms + e2.rtt_ms + RELAY_DELAY_RTT_MS < config.lat_t_ms);
            prop_assert_eq!(sel.one_hop.iter().any(|r| r.cluster == e1.cluster), qualifies);
        }
    }

    #[test]
    fn quality_paths_equal_member_weights(caller in arb_set(), callee in arb_set(), size in 1u64..50) {
        let config = AsapConfig { size_t: 0, ..Default::default() };
        let sel = select_close_relay(&caller, &callee, &config, &|_| size, &mut |_| {
            CloseClusterSet::default()
        });
        prop_assert_eq!(sel.quality_paths(), sel.one_hop.len() as u64 * size);
    }

    #[test]
    fn message_accounting_matches_expansion(caller in arb_set(), callee in arb_set()) {
        let config = AsapConfig::default(); // size_t = 300: tiny sets expand
        let mut fetches = 0u64;
        let sel = select_close_relay(&caller, &callee, &config, &|_| 1, &mut |_| {
            fetches += 1;
            CloseClusterSet::default()
        });
        if sel.expanded_two_hop {
            prop_assert_eq!(fetches, caller.len() as u64);
            prop_assert_eq!(sel.messages, 2 + 2 * fetches);
        } else {
            prop_assert_eq!(sel.messages, 2);
            prop_assert_eq!(fetches, 0);
        }
    }

    #[test]
    fn two_hop_paths_respect_threshold(caller in arb_set(), callee in arb_set(), mid in arb_set()) {
        let config = AsapConfig::default();
        let sel = select_close_relay(&caller, &callee, &config, &|_| 1, &mut |_| mid.clone());
        for t in &sel.two_hop {
            prop_assert!(t.est_rtt_ms < config.lat_t_ms);
            prop_assert!(caller.contains(t.first));
            prop_assert!(callee.contains(t.second));
            prop_assert!(mid.contains(t.second));
            prop_assert_ne!(t.first, t.second);
        }
    }

    #[test]
    fn best_estimate_is_global_minimum(caller in arb_set(), callee in arb_set()) {
        let config = AsapConfig { size_t: 0, ..Default::default() };
        let sel = select_close_relay(&caller, &callee, &config, &|_| 1, &mut |_| {
            CloseClusterSet::default()
        });
        if let Some(best) = sel.best_est_rtt_ms() {
            for r in &sel.one_hop {
                prop_assert!(best <= r.est_rtt_ms + 1e-12);
            }
        } else {
            prop_assert!(sel.one_hop.is_empty() && sel.two_hop.is_empty());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Close-set construction invariants over the shared scenario, for a
    /// handful of configurations (each case costs a full BFS).
    #[test]
    fn close_sets_respect_any_configuration(
        k in 1usize..5,
        lat_t in 60.0f64..400.0,
        cluster_ix in 0usize..10,
    ) {
        let scenario = shared_scenario();
        let index = ClusterIndex::build(scenario);
        let clusters = scenario.population.clustering().clusters();
        let origin = clusters[cluster_ix % clusters.len()].id();
        let config = AsapConfig { k, lat_t_ms: lat_t, ..Default::default() };
        let set = construct_close_cluster_set(
            scenario,
            &index,
            &|c| scenario.delegate_of(c),
            origin,
            &config,
        );
        for e in set.entries() {
            prop_assert!(e.rtt_ms < lat_t);
            prop_assert!(e.as_hops <= k);
            prop_assert_ne!(e.cluster, origin);
        }
        // Each completed remote measurement costs one request/reply
        // pair; co-located (0-hop) clusters are close by construction
        // and free.
        let remote = set.entries().iter().filter(|e| e.as_hops > 0).count() as u64;
        prop_assert!(set.construction_messages >= 2 * remote);
        prop_assert_eq!(set.construction_messages % 2, 0);
    }
}
