//! Deterministic parallel session engine.
//!
//! The simulation is sharded at the *run* level, not the event level:
//! each shard is a fully independent simulation with its own
//! [`AsapSystem`](crate::AsapSystem), its own seeded RNG stream, and its
//! own private [`Telemetry`] context. Shards run concurrently on the
//! rayon pool, their results are collected order-preserving, and the
//! merge happens in shard-index order on a single thread. Because the
//! shard decomposition depends only on `(seed, shards)` — never on the
//! thread count — and every merge operation
//! ([`SimReport::merge_from`], [`Telemetry::merge_from`]) is
//! associative and commutative, the merged output is byte-identical for
//! any number of worker threads.
//!
//! Shard RNG streams are domain-separated: shard `i` of a run with seed
//! `s` draws its seed from a ChaCha8 stream keyed by
//! `("ASAPSHRD", s, i)`, so neighbouring run seeds and neighbouring
//! shard indices produce uncorrelated workloads.

use asap_telemetry::Telemetry;
use asap_workload::Scenario;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

use crate::config::AsapConfig;
use crate::events::{run_with, SimConfig, SimReport};

/// Derives the independent RNG seed for shard `shard` of a run seeded
/// with `seed`.
///
/// The derivation is a fixed-key ChaCha8 stream (tag `ASAPSHRD`), so it
/// is stable across platforms and releases; changing either input
/// changes the whole stream.
#[must_use]
pub fn shard_seed(seed: u64, shard: u64) -> u64 {
    let mut key = [0u8; 32];
    key[..8].copy_from_slice(b"ASAPSHRD");
    key[8..16].copy_from_slice(&seed.to_le_bytes());
    key[16..24].copy_from_slice(&shard.to_le_bytes());
    ChaCha8Rng::from_seed(key).next_u64()
}

/// Splits one [`SimConfig`] into `shards` independent shard configs.
///
/// Workload volume (`calls`, `surrogate_failures`) is split as evenly
/// as possible, with the remainder going to the lowest shard indices,
/// so the totals are preserved exactly. Each shard gets its own
/// [`shard_seed`]-derived seed (and fault-plan seed when a fault plan
/// is present); everything else is inherited verbatim.
///
/// The decomposition depends only on the config and `shards` — never
/// on thread count — which is what makes the parallel run
/// deterministic.
#[must_use]
pub fn shard_configs(sim: &SimConfig, shards: usize) -> Vec<SimConfig> {
    assert!(shards > 0, "cannot shard a run into zero shards");
    (0..shards)
        .map(|i| {
            let seed = shard_seed(sim.seed, i as u64);
            let mut cfg = sim.clone();
            cfg.seed = seed;
            cfg.calls = sim.calls / shards + usize::from(i < sim.calls % shards);
            cfg.surrogate_failures =
                sim.surrogate_failures / shards + usize::from(i < sim.surrogate_failures % shards);
            if let Some(faults) = &mut cfg.faults {
                // Give every shard its own fault stream, derived from the
                // shard seed so it is independent of the workload stream.
                faults.seed = shard_seed(seed, u64::MAX);
            }
            cfg
        })
        .collect()
}

/// Runs the simulation split across `shards` independent shards on the
/// current rayon pool, merging the per-shard reports and telemetry into
/// `telemetry` in shard order.
///
/// With `shards <= 1` this is exactly [`run_with`] — same RNG stream,
/// same telemetry, byte-identical output — so existing single-shard
/// callers can route through here unconditionally. With more shards the
/// per-seed output is still deterministic, but it is a *different*
/// (sharded) workload than the single-shard run of the same seed:
/// determinism holds across thread counts, not across shard counts.
///
/// # Panics
///
/// Panics if the scenario population is empty (propagated from
/// [`run_with`]).
pub fn run_sharded(
    scenario: &Scenario,
    config: AsapConfig,
    sim: &SimConfig,
    shards: usize,
    telemetry: &Telemetry,
    scope_name: &str,
) -> SimReport {
    if shards <= 1 {
        return run_with(scenario, config, sim, telemetry, scope_name);
    }
    let shard_sims = shard_configs(sim, shards);
    // Each shard gets a private, sink-disabled Telemetry so concurrent
    // shards never interleave writes into the shared context. Results
    // come back in shard order (par_iter preserves indices), and the
    // merge below runs on this thread alone.
    let results: Vec<(SimReport, Telemetry)> = shard_sims
        .into_par_iter()
        .map(|shard_sim| {
            let local = Telemetry::new();
            let report = run_with(scenario, config, &shard_sim, &local, scope_name);
            (report, local)
        })
        .collect();
    let mut merged = SimReport::default();
    for (report, local) in &results {
        merged.merge_from(report);
        telemetry.merge_from(local);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_workload::ScenarioConfig;

    fn scenario() -> Scenario {
        Scenario::build(ScenarioConfig::tiny(), 7)
    }

    fn sim() -> SimConfig {
        SimConfig {
            join_window_ms: 20_000,
            duration_ms: 120_000,
            calls: 30,
            surrogate_failures: 5,
            call_duration_ms: 30_000,
            seed: 42,
            ..SimConfig::default()
        }
    }

    #[test]
    fn shard_seeds_are_distinct_and_stable() {
        let a = shard_seed(42, 0);
        let b = shard_seed(42, 1);
        let c = shard_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Stable across calls (pure function of its inputs).
        assert_eq!(a, shard_seed(42, 0));
    }

    #[test]
    fn shard_configs_preserve_workload_totals() {
        let base = sim();
        for shards in 1..=7 {
            let cfgs = shard_configs(&base, shards);
            assert_eq!(cfgs.len(), shards);
            let calls: usize = cfgs.iter().map(|c| c.calls).sum();
            let fails: usize = cfgs.iter().map(|c| c.surrogate_failures).sum();
            assert_eq!(calls, base.calls);
            assert_eq!(fails, base.surrogate_failures);
            // Even split: no shard differs by more than one call.
            let min = cfgs.iter().map(|c| c.calls).min().unwrap();
            let max = cfgs.iter().map(|c| c.calls).max().unwrap();
            assert!(max - min <= 1);
            // Distinct seeds per shard.
            for (i, c) in cfgs.iter().enumerate() {
                assert_eq!(c.seed, shard_seed(base.seed, i as u64));
            }
        }
    }

    #[test]
    fn single_shard_matches_plain_run() {
        let scenario = scenario();
        let config = AsapConfig::default();
        let base = sim();

        let t1 = Telemetry::new();
        let plain = run_with(&scenario, config, &base, &t1, "ASAP");
        let t2 = Telemetry::new();
        let sharded = run_sharded(&scenario, config, &base, 1, &t2, "ASAP");

        assert_eq!(plain, sharded);
        assert_eq!(t1.snapshot_json(), t2.snapshot_json());
    }

    #[test]
    fn sharded_run_is_thread_count_invariant() {
        let scenario = scenario();
        let config = AsapConfig::default();
        let base = sim();

        let run_at = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            let telemetry = Telemetry::new();
            let report =
                pool.install(|| run_sharded(&scenario, config, &base, 4, &telemetry, "ASAP"));
            (report, telemetry.snapshot_json())
        };

        let (r1, snap1) = run_at(1);
        let (r4, snap4) = run_at(4);
        assert_eq!(r1, r4);
        assert_eq!(snap1, snap4, "metrics snapshots must be byte-identical");
        assert!(r1.calls_completed > 0, "shards must carry real workload");
    }

    #[test]
    fn merge_order_is_shard_order_not_completion_order() {
        // Run the same sharded workload twice on the same (1-thread)
        // pool; byte-identical output means the merge cannot depend on
        // anything nondeterministic.
        let scenario = scenario();
        let config = AsapConfig::default();
        let base = sim();
        let go = || {
            let telemetry = Telemetry::new();
            let report = run_sharded(&scenario, config, &base, 3, &telemetry, "ASAP");
            (report, telemetry.snapshot_json())
        };
        assert_eq!(go(), go());
    }
}
