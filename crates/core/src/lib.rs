//! ASAP: the AS-aware peer-relay protocol (Ren, Guo, Zhang — ICDCS 2006).
//!
//! ASAP selects voice-packet relays for VoIP sessions whose direct IP
//! route is too slow, using two ideas the paper distills from its
//! measurement study:
//!
//! 1. **AS-awareness** — relays are chosen per *IP-prefix cluster* guided
//!    by an annotated AS graph, so candidates in the same AS (which share
//!    bottlenecks) are never probed redundantly, and candidate clusters
//!    are provably close (few valley-free AS hops).
//! 2. **Division of labor** — per-cluster *surrogates* precompute *close
//!    cluster sets* in the background; a caller then intersects two close
//!    cluster sets instead of probing the network, so one-hop relay
//!    selection costs 2 messages (§7.3).
//!
//! The crate provides:
//!
//! * [`AsapConfig`] — the protocol constants (`k`, `latT`, `lossT`,
//!   `sizeT`).
//! * [`close_set`] — `construct-close-cluster-set()` (paper Fig. 9): a
//!   valley-free bounded BFS with latency/loss pruning.
//! * [`select`] — `select-close-relay()` (paper Fig. 10): one-hop close
//!   cluster intersection with two-hop expansion.
//! * [`AsapSystem`] — the node runtime: bootstrap tables, surrogate
//!   election and failover, join and call flows, message accounting.
//! * [`AsapSelector`] — adapter implementing
//!   [`asap_baselines::RelaySelector`] so ASAP plugs into the same
//!   evaluation harness as DEDI/RAND/MIX/OPT.
//! * [`events`] — a discrete-event simulation of the full protocol
//!   machine (joins, publishes, failures) for end-to-end validation.
//! * [`ladder`] — the graceful-degradation ladder: full ASAP →
//!   bounded-stale close sets → MIX-style probing → direct path, with
//!   phi-accrual liveness and replica-set warm handoff behind it
//!   (beyond the paper, which assumes a cooperative network).
//!
//! # Example
//!
//! ```
//! use asap_core::{AsapConfig, AsapSystem};
//! use asap_workload::{sessions, Scenario, ScenarioConfig};
//!
//! let scenario = Scenario::build(ScenarioConfig::tiny(), 7);
//! let system = AsapSystem::bootstrap(&scenario, AsapConfig::default());
//! let s = sessions::generate(&scenario.population, 1, 3)[0];
//! let outcome = system.call(s.caller, s.callee);
//! // Every returned relay path is composed of valley-free close-set legs.
//! assert!(outcome.messages >= 2 || outcome.used_direct);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod close_set;
mod config;
pub mod events;
pub mod ladder;
pub mod parallel;
pub mod select;
mod selector;
mod system;

pub use config::{AsapConfig, MembershipConfig};
pub use ladder::{DegradationLadder, DegradationLevel};
pub use parallel::{run_sharded, shard_configs, shard_seed};
pub use selector::AsapSelector;
pub use system::{
    AsapSystem, CallOutcome, ChosenPath, FetchResult, MembershipTickReport, OverloadStats,
    RecoveryStats, ReplicaSet, SystemStats,
};
