//! Protocol configuration.

use asap_netsim::capacity::CapacityConfig;
use asap_netsim::faults::RetryPolicy;
use asap_netsim::membership::SuspicionConfig;

/// Membership, replication, and graceful-degradation tunables — the
/// control-plane survival parameters (beyond the paper, which assumes a
/// cooperative network).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MembershipConfig {
    /// Phi-accrual suspicion detector parameters for surrogate and
    /// bootstrap-replica liveness.
    pub suspicion: SuspicionConfig,
    /// Standby surrogates each cluster keeps warm behind its active set
    /// (the bootstrap replica set); primaries hand off to the best
    /// online standby on an epoch-numbered quorum handoff instead of
    /// forcing a cold re-election.
    pub standbys: usize,
    /// Maximum age of a cached close set the degradation ladder will
    /// still serve once fresh fetches fail, virtual ms (the
    /// stale-close-set rung).
    pub stale_set_max_age_ms: u64,
    /// Number of MIX-style deterministic random relay probes on the
    /// last rung before giving up and going direct.
    pub mix_probes: usize,
}

impl Default for MembershipConfig {
    fn default() -> Self {
        MembershipConfig {
            suspicion: SuspicionConfig::default(),
            standbys: 2,
            stale_set_max_age_ms: 120_000,
            mix_probes: 16,
        }
    }
}

impl MembershipConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        self.suspicion.validate()?;
        if self.standbys == 0 {
            return Err("replica set needs at least one standby".into());
        }
        if self.stale_set_max_age_ms == 0 {
            return Err("stale close-set age bound must be positive".into());
        }
        if self.mix_probes == 0 {
            return Err("the probing rung needs at least one probe".into());
        }
        Ok(())
    }
}

/// The ASAP protocol constants, with the values §6.2/§7.1 of the paper
/// recommends.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsapConfig {
    /// `k` — AS-hop bound of the close-cluster-set BFS. The paper sets 4:
    /// ">90% of the sessions with direct IP routing RTTs below 300 ms
    /// have no more than 4 AS hops".
    pub k: usize,
    /// `latT` — the RTT threshold (ms) that prunes BFS expansion and
    /// defines a quality relay path ("close to 300 ms").
    pub lat_t_ms: f64,
    /// `lossT` — the loss-rate threshold that prunes BFS expansion.
    pub loss_t: f64,
    /// `sizeT` — if fewer one-hop relay IPs than this are found, two-hop
    /// selection starts (§7.1 sets 300).
    pub size_t: usize,
    /// How often end hosts publish nodal information to their surrogate,
    /// in simulated milliseconds (used by the event-driven runtime).
    pub publish_interval_ms: u64,
    /// Members served per surrogate: clusters elect
    /// `ceil(members / members_per_surrogate)` surrogates, so the few
    /// ~1,000-host clusters share their request load (§6.3).
    pub members_per_surrogate: usize,
    /// Timeout/retry/backoff schedule for control requests (close-set
    /// fetches) when messages are being dropped by injected faults.
    pub retry: RetryPolicy,
    /// Membership, replication, and graceful-degradation parameters.
    pub membership: MembershipConfig,
    /// Per-host capacity bounds: relay-call slots, the surrogate
    /// request-rate budget with its bounded deadline-aware admission
    /// queue, and the hedged-fetch delay.
    pub capacity: CapacityConfig,
}

impl Default for AsapConfig {
    fn default() -> Self {
        AsapConfig {
            k: 4,
            lat_t_ms: 300.0,
            loss_t: 0.05,
            size_t: 300,
            publish_interval_ms: 60_000,
            members_per_surrogate: 300,
            retry: RetryPolicy::default(),
            membership: MembershipConfig::default(),
            capacity: CapacityConfig::default(),
        }
    }
}

impl AsapConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field: `k` must be ≥ 1,
    /// thresholds positive, `lossT` within (0, 1].
    pub fn validate(&self) -> Result<(), String> {
        if self.k == 0 {
            return Err("k must be at least 1 AS hop".into());
        }
        if !(self.lat_t_ms > 0.0 && self.lat_t_ms.is_finite()) {
            return Err("latT must be positive and finite".into());
        }
        if !(self.loss_t > 0.0 && self.loss_t <= 1.0) {
            return Err("lossT must be in (0, 1]".into());
        }
        if self.members_per_surrogate == 0 {
            return Err("members_per_surrogate must be at least 1".into());
        }
        self.retry.validate()?;
        self.membership.validate()?;
        self.capacity.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = AsapConfig::default();
        assert_eq!(c.k, 4);
        assert_eq!(c.lat_t_ms, 300.0);
        assert_eq!(c.size_t, 300);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_nonsense() {
        assert!(AsapConfig {
            k: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(AsapConfig {
            lat_t_ms: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(AsapConfig {
            loss_t: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(AsapConfig {
            loss_t: 1.5,
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn membership_validation_rejects_nonsense() {
        assert!(MembershipConfig::default().validate().is_ok());
        assert!(MembershipConfig {
            standbys: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(MembershipConfig {
            stale_set_max_age_ms: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(MembershipConfig {
            mix_probes: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        // Nested suspicion config is validated through AsapConfig too.
        let mut config = AsapConfig::default();
        config.membership.suspicion.heartbeat_interval_ms = 0;
        assert!(config.validate().is_err());
    }

    #[test]
    fn capacity_validation_flows_through() {
        // Zero capacity (no request budget) must be rejected at
        // construction, not misbehave at runtime.
        let mut config = AsapConfig::default();
        config.capacity.surrogate_budget = 0;
        assert!(config.validate().is_err());
        // Zero hedge delay likewise.
        let mut config = AsapConfig::default();
        config.capacity.hedge_delay_ms = 0;
        assert!(config.validate().is_err());
        // Zero retry timeout is caught by the nested retry policy.
        let mut config = AsapConfig::default();
        config.retry.timeout_ms = 0;
        assert!(config.validate().is_err());
        // A disabled capacity model is still validated.
        let mut config = AsapConfig::default();
        config.capacity.enabled = false;
        config.capacity.queue_limit = 0;
        assert!(config.validate().is_err());
    }
}
