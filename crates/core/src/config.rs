//! Protocol configuration.

use asap_netsim::faults::RetryPolicy;

/// The ASAP protocol constants, with the values §6.2/§7.1 of the paper
/// recommends.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsapConfig {
    /// `k` — AS-hop bound of the close-cluster-set BFS. The paper sets 4:
    /// ">90% of the sessions with direct IP routing RTTs below 300 ms
    /// have no more than 4 AS hops".
    pub k: usize,
    /// `latT` — the RTT threshold (ms) that prunes BFS expansion and
    /// defines a quality relay path ("close to 300 ms").
    pub lat_t_ms: f64,
    /// `lossT` — the loss-rate threshold that prunes BFS expansion.
    pub loss_t: f64,
    /// `sizeT` — if fewer one-hop relay IPs than this are found, two-hop
    /// selection starts (§7.1 sets 300).
    pub size_t: usize,
    /// How often end hosts publish nodal information to their surrogate,
    /// in simulated milliseconds (used by the event-driven runtime).
    pub publish_interval_ms: u64,
    /// Members served per surrogate: clusters elect
    /// `ceil(members / members_per_surrogate)` surrogates, so the few
    /// ~1,000-host clusters share their request load (§6.3).
    pub members_per_surrogate: usize,
    /// Timeout/retry/backoff schedule for control requests (close-set
    /// fetches) when messages are being dropped by injected faults.
    pub retry: RetryPolicy,
}

impl Default for AsapConfig {
    fn default() -> Self {
        AsapConfig {
            k: 4,
            lat_t_ms: 300.0,
            loss_t: 0.05,
            size_t: 300,
            publish_interval_ms: 60_000,
            members_per_surrogate: 300,
            retry: RetryPolicy::default(),
        }
    }
}

impl AsapConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field: `k` must be ≥ 1,
    /// thresholds positive, `lossT` within (0, 1].
    pub fn validate(&self) -> Result<(), String> {
        if self.k == 0 {
            return Err("k must be at least 1 AS hop".into());
        }
        if !(self.lat_t_ms > 0.0 && self.lat_t_ms.is_finite()) {
            return Err("latT must be positive and finite".into());
        }
        if !(self.loss_t > 0.0 && self.loss_t <= 1.0) {
            return Err("lossT must be in (0, 1]".into());
        }
        if self.members_per_surrogate == 0 {
            return Err("members_per_surrogate must be at least 1".into());
        }
        self.retry.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = AsapConfig::default();
        assert_eq!(c.k, 4);
        assert_eq!(c.lat_t_ms, 300.0);
        assert_eq!(c.size_t, 300);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_nonsense() {
        assert!(AsapConfig {
            k: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(AsapConfig {
            lat_t_ms: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(AsapConfig {
            loss_t: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(AsapConfig {
            loss_t: 1.5,
            ..Default::default()
        }
        .validate()
        .is_err());
    }
}
