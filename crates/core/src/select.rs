//! `select-close-relay()` — paper Fig. 10.
//!
//! When the direct route between caller `h1` and callee `h2` violates the
//! latency threshold, the caller obtains `h2`'s close cluster set (2
//! messages) and intersects it with its own:
//!
//! * **one-hop**: every cluster `r` in the intersection with
//!   `relaylat(h1–r–h2) < latT` contributes *all of its member IPs* as
//!   usable relays (set `OS`);
//! * **two-hop**: if `|OS| < sizeT`, the caller queries each one-hop
//!   cluster surrogate `r1` for *its* close cluster set (2 messages each)
//!   and adds pairs `r1–r2` with `r2` in the callee's set and
//!   `relaylat(h1–r1–r2–h2) < latT` (set `TS`).
//!
//! `relaylat()` sums the measured leg RTTs plus 40 ms round-trip
//! forwarding delay per intermediary.

use asap_cluster::ClusterId;
use asap_netsim::RELAY_DELAY_RTT_MS;

use crate::close_set::CloseClusterSet;
use crate::config::AsapConfig;

/// A one-hop relay cluster selected for a session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OneHopRelay {
    /// The relay cluster.
    pub cluster: ClusterId,
    /// Estimated relay-path RTT `relaylat(h1–r–h2)` in ms.
    pub est_rtt_ms: f64,
    /// Estimated relay-path loss (independent legs).
    pub est_loss: f64,
    /// Number of member IPs the cluster contributes as relay candidates.
    pub member_ips: u64,
}

/// A two-hop relay cluster pair selected for a session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoHopRelay {
    /// First relay cluster (close to the caller).
    pub first: ClusterId,
    /// Second relay cluster (close to the callee).
    pub second: ClusterId,
    /// Estimated relay-path RTT in ms.
    pub est_rtt_ms: f64,
    /// Number of member IP *pairs* contributed (|first| × |second|).
    pub member_pairs: u64,
}

/// The outcome of `select-close-relay()`.
#[derive(Debug, Clone, Default)]
pub struct CloseRelaySelection {
    /// One-hop relay clusters (`OS`), sorted by estimated RTT.
    pub one_hop: Vec<OneHopRelay>,
    /// Two-hop relay cluster pairs (`TS`), sorted by estimated RTT; empty
    /// unless the one-hop set fell short of `sizeT`.
    pub two_hop: Vec<TwoHopRelay>,
    /// Whether two-hop expansion was triggered.
    pub expanded_two_hop: bool,
    /// Protocol messages spent: 2 for the callee's close set, plus 2 per
    /// surrogate queried during two-hop expansion (§7.3).
    pub messages: u64,
}

impl CloseRelaySelection {
    /// Total quality relay paths at member-IP granularity: one-hop member
    /// IPs plus two-hop member pairs. This is the quantity Figs. 11/12
    /// plot ("90% of the sessions can find more than 10^4 quality
    /// paths").
    pub fn quality_paths(&self) -> u64 {
        let one: u64 = self.one_hop.iter().map(|r| r.member_ips).sum();
        let two: u64 = self.two_hop.iter().map(|r| r.member_pairs).sum();
        one + two
    }

    /// The best estimated relay RTT across both sets, if any.
    pub fn best_est_rtt_ms(&self) -> Option<f64> {
        let one = self.one_hop.first().map(|r| r.est_rtt_ms);
        let two = self.two_hop.first().map(|r| r.est_rtt_ms);
        match (one, two) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// The selection restricted to candidates whose clusters all satisfy
    /// `keep` — the shared filter behind dead-cluster exclusion and
    /// load-aware spillover (a relay cluster whose hosts answered
    /// [`asap_netsim::capacity::SlotVerdict::Busy`] is dropped and the
    /// caller moves to the next candidate without re-running
    /// `select-close-relay()`). Filtering costs no messages: the
    /// candidates are already cached.
    pub fn retaining(&self, keep: &dyn Fn(ClusterId) -> bool) -> CloseRelaySelection {
        CloseRelaySelection {
            one_hop: self
                .one_hop
                .iter()
                .filter(|r| keep(r.cluster))
                .cloned()
                .collect(),
            two_hop: self
                .two_hop
                .iter()
                .filter(|t| keep(t.first) && keep(t.second))
                .cloned()
                .collect(),
            expanded_two_hop: self.expanded_two_hop,
            messages: 0, // re-use of cached candidates costs no messages
        }
    }

    /// The selection with every candidate touching one of `dead_clusters`
    /// removed — the cached candidate set a caller falls back on when its
    /// relay dies mid-call, without re-running `select-close-relay()`.
    pub fn excluding(&self, dead_clusters: &[ClusterId]) -> CloseRelaySelection {
        self.retaining(&|c| !dead_clusters.contains(&c))
    }
}

/// Runs `select-close-relay()` from the caller's and callee's close
/// cluster sets.
///
/// `cluster_size` reports the member count of a cluster (the bootstrap's
/// prefix tables know it); `fetch_close_set` obtains the close cluster
/// set of a one-hop surrogate during two-hop expansion — the runtime
/// supplies a cached lookup and the message accounting assumes one
/// request/response round trip per call.
pub fn select_close_relay(
    caller_set: &CloseClusterSet,
    callee_set: &CloseClusterSet,
    config: &AsapConfig,
    cluster_size: &dyn Fn(ClusterId) -> u64,
    fetch_close_set: &mut dyn FnMut(ClusterId) -> CloseClusterSet,
) -> CloseRelaySelection {
    let mut sel = CloseRelaySelection {
        messages: 2,
        ..Default::default()
    };

    // One-hop: CS = S1 ∩ S2.
    for e1 in caller_set.entries() {
        let Some(e2) = callee_set.get(e1.cluster) else {
            continue;
        };
        let est_rtt_ms = e1.rtt_ms + e2.rtt_ms + RELAY_DELAY_RTT_MS;
        if est_rtt_ms < config.lat_t_ms {
            let est_loss = 1.0 - (1.0 - e1.loss) * (1.0 - e2.loss);
            sel.one_hop.push(OneHopRelay {
                cluster: e1.cluster,
                est_rtt_ms,
                est_loss,
                member_ips: cluster_size(e1.cluster),
            });
        }
    }
    sel.one_hop
        .sort_by(|a, b| a.est_rtt_ms.total_cmp(&b.est_rtt_ms));

    // Two-hop expansion when the one-hop candidate pool is thin.
    let one_hop_ips: u64 = sel.one_hop.iter().map(|r| r.member_ips).sum();
    if (one_hop_ips as usize) < config.size_t {
        sel.expanded_two_hop = true;
        for e1 in caller_set.entries() {
            // Query r1's surrogate for its close cluster set.
            sel.messages += 2;
            let r1_set = fetch_close_set(e1.cluster);
            for e12 in r1_set.entries() {
                if e12.cluster == e1.cluster {
                    continue;
                }
                let Some(e2) = callee_set.get(e12.cluster) else {
                    continue;
                };
                let est_rtt_ms = e1.rtt_ms + e12.rtt_ms + e2.rtt_ms + 2.0 * RELAY_DELAY_RTT_MS;
                if est_rtt_ms < config.lat_t_ms {
                    sel.two_hop.push(TwoHopRelay {
                        first: e1.cluster,
                        second: e12.cluster,
                        est_rtt_ms,
                        member_pairs: cluster_size(e1.cluster) * cluster_size(e12.cluster),
                    });
                }
            }
        }
        sel.two_hop
            .sort_by(|a, b| a.est_rtt_ms.total_cmp(&b.est_rtt_ms));
    }

    sel
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::close_set::CloseClusterEntry;
    use asap_workload::HostId;

    fn entry(cluster: u32, rtt: f64) -> CloseClusterEntry {
        CloseClusterEntry {
            cluster: ClusterId(cluster),
            surrogate: HostId(cluster),
            rtt_ms: rtt,
            loss: 0.005,
            as_hops: 1,
        }
    }

    fn set(entries: &[CloseClusterEntry]) -> CloseClusterSet {
        let mut s = CloseClusterSet::default();
        for &e in entries {
            s.push_for_tests(e);
        }
        s
    }

    fn no_two_hop() -> impl FnMut(ClusterId) -> CloseClusterSet {
        |_| CloseClusterSet::default()
    }

    #[test]
    fn one_hop_intersects_and_thresholds() {
        let caller = set(&[entry(1, 100.0), entry(2, 100.0), entry(3, 250.0)]);
        let callee = set(&[entry(2, 100.0), entry(3, 100.0), entry(4, 50.0)]);
        let cfg = AsapConfig {
            size_t: 0,
            ..Default::default()
        };
        let sel = select_close_relay(&caller, &callee, &cfg, &|_| 10, &mut no_two_hop());
        // Cluster 2: 100+100+40 = 240 < 300 ✓. Cluster 3: 250+100+40 = 390 ✗.
        assert_eq!(sel.one_hop.len(), 1);
        assert_eq!(sel.one_hop[0].cluster, ClusterId(2));
        assert_eq!(sel.quality_paths(), 10);
        assert_eq!(sel.messages, 2);
        assert!(!sel.expanded_two_hop);
    }

    #[test]
    fn two_hop_triggers_below_size_t() {
        let caller = set(&[entry(1, 50.0)]);
        let callee = set(&[entry(9, 60.0)]);
        // One-hop intersection is empty; r1 = cluster 1 knows cluster 9.
        let cfg = AsapConfig::default();
        let mut fetch = |c: ClusterId| {
            assert_eq!(c, ClusterId(1));
            set(&[entry(9, 70.0)])
        };
        let sel = select_close_relay(&caller, &callee, &cfg, &|_| 5, &mut fetch);
        assert!(sel.expanded_two_hop);
        assert_eq!(sel.two_hop.len(), 1);
        let t = &sel.two_hop[0];
        assert_eq!((t.first, t.second), (ClusterId(1), ClusterId(9)));
        // 50 + 70 + 60 + 80 = 260 < 300.
        assert!((t.est_rtt_ms - 260.0).abs() < 1e-9);
        assert_eq!(t.member_pairs, 25);
        // 2 base + 2 for the one surrogate queried.
        assert_eq!(sel.messages, 4);
    }

    #[test]
    fn two_hop_skipped_when_one_hop_is_rich() {
        let caller = set(&[entry(1, 50.0)]);
        let callee = set(&[entry(1, 50.0)]);
        let cfg = AsapConfig {
            size_t: 10,
            ..Default::default()
        };
        let sel = select_close_relay(&caller, &callee, &cfg, &|_| 1000, &mut no_two_hop());
        assert!(!sel.expanded_two_hop);
        assert_eq!(sel.messages, 2);
    }

    #[test]
    fn results_sorted_by_estimated_rtt() {
        let caller = set(&[entry(1, 120.0), entry(2, 40.0), entry(3, 80.0)]);
        let callee = set(&[entry(1, 40.0), entry(2, 40.0), entry(3, 40.0)]);
        let cfg = AsapConfig {
            size_t: 0,
            ..Default::default()
        };
        let sel = select_close_relay(&caller, &callee, &cfg, &|_| 1, &mut no_two_hop());
        let rtts: Vec<f64> = sel.one_hop.iter().map(|r| r.est_rtt_ms).collect();
        let mut sorted = rtts.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(rtts, sorted);
        assert_eq!(sel.best_est_rtt_ms(), Some(40.0 + 40.0 + 40.0));
    }

    #[test]
    fn empty_sets_yield_empty_selection() {
        let cfg = AsapConfig::default();
        let sel = select_close_relay(
            &CloseClusterSet::default(),
            &CloseClusterSet::default(),
            &cfg,
            &|_| 1,
            &mut no_two_hop(),
        );
        assert_eq!(sel.quality_paths(), 0);
        assert_eq!(sel.best_est_rtt_ms(), None);
        assert!(
            sel.expanded_two_hop,
            "empty one-hop always triggers expansion"
        );
    }
}
