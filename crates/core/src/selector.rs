//! Adapter plugging ASAP into the shared evaluation harness.

use asap_baselines::{RelayPath, RelaySelector, SelectionOutcome};
use asap_telemetry::LedgerScope;
use asap_voip::QualityRequirement;
use asap_workload::sessions::Session;
use asap_workload::Scenario;

use crate::system::AsapSystem;

/// Wraps a running [`AsapSystem`] as a [`RelaySelector`] so the §7
/// comparison harness treats ASAP exactly like DEDI/RAND/MIX/OPT.
///
/// The system is bound to its own scenario at bootstrap; the `scenario`
/// argument of [`RelaySelector::select`] must be that same world (checked
/// by population size in debug builds).
#[derive(Debug)]
pub struct AsapSelector<'a> {
    system: AsapSystem<'a>,
}

impl<'a> AsapSelector<'a> {
    /// Wraps a bootstrapped system.
    pub fn new(system: AsapSystem<'a>) -> Self {
        AsapSelector { system }
    }

    /// The wrapped system (for stats inspection).
    pub fn system(&self) -> &AsapSystem<'a> {
        &self.system
    }
}

impl RelaySelector for AsapSelector<'_> {
    fn name(&self) -> &'static str {
        "ASAP"
    }

    fn select(
        &self,
        scenario: &Scenario,
        session: Session,
        requirement: &QualityRequirement,
    ) -> SelectionOutcome {
        debug_assert_eq!(
            scenario.population.hosts().len(),
            self.system.scenario().population.hosts().len(),
            "AsapSelector invoked with a different scenario than it was bootstrapped on"
        );
        let _ = requirement; // ASAP's own latT plays the requirement role.
        let outcome = self.system.call(session.caller, session.callee);
        let mut result = SelectionOutcome::default();
        if let Some(sel) = &outcome.selection {
            result.quality_paths = sel.quality_paths();
            result.probed_nodes = (sel.one_hop.len() + sel.two_hop.len()) as u64;
        }
        if let Some(chosen) = outcome.chosen {
            if !chosen.relays.is_empty() {
                result.best = Some(RelayPath {
                    relays: chosen.relays,
                    rtt_ms: chosen.rtt_ms,
                    loss: chosen.loss,
                });
            }
        }
        result
    }

    fn scope(&self) -> &LedgerScope {
        self.system.ledger_scope()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AsapConfig;
    use asap_workload::{sessions, ScenarioConfig};

    #[test]
    fn selector_reports_call_outcomes() {
        let scenario = Scenario::build(ScenarioConfig::tiny(), 31);
        let system = AsapSystem::bootstrap(&scenario, AsapConfig::default());
        let selector = AsapSelector::new(system);
        assert_eq!(selector.name(), "ASAP");
        let req = QualityRequirement::default();
        for s in sessions::generate(&scenario.population, 20, 4) {
            let (_, spent) = asap_baselines::select_metered(&selector, &scenario, s, &req);
            assert!(spent >= 2, "every call spends at least its setup pings");
        }
        assert_eq!(selector.system().stats().calls, 20);
    }
}
