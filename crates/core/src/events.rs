//! Discrete-event simulation of the full ASAP protocol machine.
//!
//! The algorithmic heart of ASAP lives in [`crate::close_set`] and
//! [`crate::select`]; this module exercises the *system* around it over
//! virtual time — hosts joining, periodically publishing nodal
//! information, surrogates failing and being replaced, calls arriving —
//! and accounts every message by type. It is the end-to-end validation
//! that the protocol machine stays consistent under churn, and the source
//! of the §6.3 traffic-load numbers.

use std::collections::BTreeMap;

use asap_cluster::ClusterId;
use asap_netsim::events::{EventQueue, SimTime};
use asap_netsim::faults::{FaultKind, FaultPlan, FaultPlanConfig, MessageDrops};
use asap_workload::sessions::Session;
use asap_workload::{HostId, Scenario};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::AsapConfig;
use crate::select::CloseRelaySelection;
use crate::system::{AsapSystem, RecoveryStats};

/// Message taxonomy for the load accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MessageCounts {
    /// Join requests/replies with bootstraps.
    pub join: u64,
    /// Close-cluster-set requests/replies with surrogates.
    pub close_set: u64,
    /// Periodic nodal-information publishes to surrogates.
    pub publish: u64,
    /// Surrogate-change notifications (bootstrap + cluster members).
    pub election: u64,
    /// Per-call messages (pings + selection).
    pub call: u64,
}

impl MessageCounts {
    /// Total messages of all types.
    pub fn total(&self) -> u64 {
        self.join + self.close_set + self.publish + self.election + self.call
    }
}

/// Configuration of the protocol simulation.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Hosts join uniformly at random within this window (ms).
    pub join_window_ms: u64,
    /// Total simulated duration (ms).
    pub duration_ms: u64,
    /// Number of calls placed at random times after the join window.
    pub calls: usize,
    /// Number of random surrogate failures injected.
    pub surrogate_failures: usize,
    /// How long a placed call stays active, ms — while active, relay
    /// crashes hit it mid-call and congestion bursts degrade it.
    pub call_duration_ms: u64,
    /// Optional deterministic fault schedule driven alongside the
    /// workload (crashes, congestion, message drops, stale epochs).
    pub faults: Option<FaultPlanConfig>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            join_window_ms: 60_000,
            duration_ms: 600_000,
            calls: 50,
            surrogate_failures: 3,
            call_duration_ms: 180_000,
            faults: None,
            seed: 0,
        }
    }
}

/// What the protocol simulation observed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimReport {
    /// Hosts that joined.
    pub joined: u64,
    /// Calls completed (direct or relayed).
    pub calls_completed: u64,
    /// Calls that found no path at all (unroutable destination).
    pub calls_without_path: u64,
    /// Surrogate failovers performed.
    pub failovers: u64,
    /// Mid-call relay failovers that found a replacement path.
    pub midcall_failovers: u64,
    /// Active calls torn down because no replacement path existed after
    /// their relay died.
    pub calls_dropped: u64,
    /// Active calls degraded by an AS congestion burst crossing one of
    /// their endpoints or relays.
    pub congestion_degraded_calls: u64,
    /// Protocol-side recovery counters (retries, re-elections, cache
    /// invalidations), snapshotted from the system at the end.
    pub recovery: RecoveryStats,
    /// Message counters by type.
    pub messages: MessageCounts,
    /// Virtual time at which the simulation ended.
    pub ended_at: SimTime,
}

/// Events driving the protocol simulation.
#[derive(Debug, Clone, Copy)]
enum Event {
    Join(HostId),
    Publish(HostId),
    Call(Session),
    FailSurrogate(u32),
    /// A scheduled fault fires (index into the [`FaultPlan`]).
    Fault(usize),
    /// A windowed fault (message drops) expires.
    FaultEnd,
    /// An active call hangs up normally.
    EndCall(u64),
    End,
}

/// A call in progress: enough state to fail it over when its relay dies
/// and to mark it degraded when congestion crosses its path.
#[derive(Debug)]
struct ActiveCall {
    session: Session,
    /// The cached candidate set failover re-picks from (None for calls
    /// that went direct).
    selection: Option<CloseRelaySelection>,
    relays: Vec<HostId>,
    /// Relays that already died under this call (never re-picked).
    dead: Vec<HostId>,
    degraded: bool,
}

/// Runs the protocol machine over virtual time.
///
/// # Panics
///
/// Panics if the scenario population is empty.
pub fn run(scenario: &Scenario, config: AsapConfig, sim: &SimConfig) -> SimReport {
    let system = AsapSystem::bootstrap(scenario, config);
    let mut rng = StdRng::seed_from_u64(sim.seed);
    let mut queue: EventQueue<Event> = EventQueue::new();
    let hosts = scenario.population.hosts();
    assert!(!hosts.is_empty(), "cannot simulate an empty population");

    for h in hosts {
        queue.schedule(
            SimTime(rng.gen_range(0..sim.join_window_ms.max(1))),
            Event::Join(h.id),
        );
    }
    for _ in 0..sim.calls {
        let caller = HostId(rng.gen_range(0..hosts.len()) as u32);
        let callee = loop {
            let c = HostId(rng.gen_range(0..hosts.len()) as u32);
            if c != caller {
                break c;
            }
        };
        let at = rng.gen_range(sim.join_window_ms..sim.duration_ms.max(sim.join_window_ms + 1));
        queue.schedule(SimTime(at), Event::Call(Session { caller, callee }));
    }
    let clusters = scenario.population.clustering().cluster_count() as u32;
    for _ in 0..sim.surrogate_failures {
        let at = rng.gen_range(sim.join_window_ms..sim.duration_ms.max(sim.join_window_ms + 1));
        queue.schedule(
            SimTime(at),
            Event::FailSurrogate(rng.gen_range(0..clusters)),
        );
    }
    let plan = sim.faults.as_ref().map(|fc| {
        let mut asns: Vec<u32> = hosts.iter().map(|h| h.asn.0).collect();
        asns.sort_unstable();
        asns.dedup();
        let plan = FaultPlan::generate(fc, clusters, hosts.len() as u32, &asns);
        for (i, e) in plan.events().iter().enumerate() {
            queue.schedule(SimTime(e.at_ms), Event::Fault(i));
        }
        plan
    });
    let plan = plan.unwrap_or_default();
    queue.schedule(SimTime(sim.duration_ms), Event::End);

    let mut report = SimReport::default();
    // BTreeMap so iteration (failover scans, congestion marking) is
    // deterministic.
    let mut active: BTreeMap<u64, ActiveCall> = BTreeMap::new();
    let mut next_call_id: u64 = 0;
    // ASN → congestion-burst end time (virtual ms).
    let mut congested_until: BTreeMap<u32, u64> = BTreeMap::new();
    let mut drop_windows_active: u32 = 0;
    while let Some((now, event)) = queue.pop() {
        match event {
            Event::End => {
                report.ended_at = now;
                break;
            }
            Event::Join(h) => {
                let _ = system.join(h);
                report.joined += 1;
                report.messages.join += 2;
                report.messages.close_set += 2;
                // First publish happens one interval after joining.
                queue.schedule(
                    now.after_ms(system.config().publish_interval_ms),
                    Event::Publish(h),
                );
            }
            Event::Publish(h) => {
                report.messages.publish += 1;
                if now.as_ms() + system.config().publish_interval_ms <= sim.duration_ms {
                    queue.schedule(
                        now.after_ms(system.config().publish_interval_ms),
                        Event::Publish(h),
                    );
                }
            }
            Event::Call(session) => {
                let outcome = system.call(session.caller, session.callee);
                report.messages.call += outcome.messages;
                if let Some(chosen) = outcome.chosen {
                    report.calls_completed += 1;
                    let mut call = ActiveCall {
                        session,
                        selection: outcome.selection,
                        relays: chosen.relays,
                        dead: Vec::new(),
                        degraded: false,
                    };
                    if call_touches_congestion(scenario, &call, &congested_until, now.as_ms()) {
                        call.degraded = true;
                        report.congestion_degraded_calls += 1;
                    }
                    let id = next_call_id;
                    next_call_id += 1;
                    active.insert(id, call);
                    queue.schedule(now.after_ms(sim.call_duration_ms), Event::EndCall(id));
                } else {
                    report.calls_without_path += 1;
                }
            }
            Event::EndCall(id) => {
                active.remove(&id);
            }
            Event::FailSurrogate(cluster) => {
                let id = ClusterId(cluster);
                let members = scenario.population.cluster_members(id).len() as u64;
                let old = system.surrogate_of(id);
                let _ = system.fail_surrogate(id);
                report.failovers += 1;
                // Notify bootstrap (2) and cluster members (1 each).
                report.messages.election += 2 + members;
                fail_over_calls(&system, &mut active, &mut report, old);
            }
            Event::Fault(i) => {
                apply_fault(
                    scenario,
                    &system,
                    plan.events()[i].kind,
                    i,
                    now,
                    sim,
                    &mut queue,
                    &mut active,
                    &mut congested_until,
                    &mut drop_windows_active,
                    &mut report,
                );
            }
            Event::FaultEnd => {
                // Only message-drop windows schedule an end event.
                drop_windows_active = drop_windows_active.saturating_sub(1);
                if drop_windows_active == 0 {
                    system.set_message_faults(None);
                }
            }
        }
    }
    report.recovery = system.stats().recovery;
    report
}

/// Applies one scheduled fault to the running system.
#[allow(clippy::too_many_arguments)]
fn apply_fault(
    scenario: &Scenario,
    system: &AsapSystem<'_>,
    kind: FaultKind,
    index: usize,
    now: SimTime,
    sim: &SimConfig,
    queue: &mut EventQueue<Event>,
    active: &mut BTreeMap<u64, ActiveCall>,
    congested_until: &mut BTreeMap<u32, u64>,
    drop_windows_active: &mut u32,
    report: &mut SimReport,
) {
    match kind {
        FaultKind::SurrogateCrash { cluster } => {
            let id = ClusterId(cluster);
            let victim = system.surrogate_of(id);
            if system.crash_host(victim) {
                report.failovers += 1;
                let members = scenario.population.cluster_members(id).len() as u64;
                report.messages.election += 2 + members;
            }
            fail_over_calls(system, active, report, victim);
        }
        FaultKind::HostCrash { host } => {
            let victim = HostId(host);
            if system.crash_host(victim) {
                // The host happened to be a surrogate: its cluster
                // re-elected.
                report.failovers += 1;
                let cluster = scenario.population.cluster_of(victim);
                let members = scenario.population.cluster_members(cluster).len() as u64;
                report.messages.election += 2 + members;
            }
            fail_over_calls(system, active, report, victim);
        }
        FaultKind::AsCongestion {
            asn, duration_ms, ..
        } => {
            let until = congested_until.entry(asn).or_insert(0);
            *until = (*until).max(now.as_ms() + duration_ms);
            for call in active.values_mut() {
                if !call.degraded && call_touches_asn(scenario, call, asn) {
                    call.degraded = true;
                    report.congestion_degraded_calls += 1;
                }
            }
        }
        FaultKind::MessageDropWindow {
            drop_prob,
            duration_ms,
        } => {
            *drop_windows_active += 1;
            system.set_message_faults(Some(MessageDrops::new(
                drop_prob,
                sim.seed ^ ((index as u64) << 20) ^ 0xD20F,
            )));
            queue.schedule(now.after_ms(duration_ms), Event::FaultEnd);
        }
        FaultKind::StaleCloseSet { cluster } => {
            system.expire_close_set(ClusterId(cluster));
        }
    }
}

/// Fails over every active call relayed through `dead_host`: re-pick
/// from the cached candidate set, or tear the call down when even the
/// direct fallback is unroutable.
fn fail_over_calls(
    system: &AsapSystem<'_>,
    active: &mut BTreeMap<u64, ActiveCall>,
    report: &mut SimReport,
    dead_host: HostId,
) {
    let affected: Vec<u64> = active
        .iter()
        .filter(|(_, c)| c.relays.contains(&dead_host))
        .map(|(&id, _)| id)
        .collect();
    for id in affected {
        let call = active.get_mut(&id).expect("collected from the map");
        call.dead.push(dead_host);
        let replacement = call.selection.as_ref().and_then(|sel| {
            system.failover_path(call.session.caller, call.session.callee, sel, &call.dead)
        });
        match replacement {
            Some(path) => {
                call.relays = path.relays;
                report.midcall_failovers += 1;
                report.messages.call += 2; // failover re-ping
            }
            None => {
                report.calls_dropped += 1;
                active.remove(&id);
            }
        }
    }
}

/// Whether any endpoint or relay of `call` sits in `asn`.
fn call_touches_asn(scenario: &Scenario, call: &ActiveCall, asn: u32) -> bool {
    let of = |h: HostId| scenario.population.host(h).asn.0;
    of(call.session.caller) == asn
        || of(call.session.callee) == asn
        || call.relays.iter().any(|&r| of(r) == asn)
}

/// Whether `call` crosses any AS whose congestion burst is still live at
/// `now_ms`.
fn call_touches_congestion(
    scenario: &Scenario,
    call: &ActiveCall,
    congested_until: &BTreeMap<u32, u64>,
    now_ms: u64,
) -> bool {
    congested_until
        .iter()
        .any(|(&asn, &until)| until > now_ms && call_touches_asn(scenario, call, asn))
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_workload::ScenarioConfig;

    fn scenario() -> Scenario {
        Scenario::build(ScenarioConfig::tiny(), 17)
    }

    #[test]
    fn every_host_joins_and_publishes() {
        let s = scenario();
        let report = run(&s, AsapConfig::default(), &SimConfig::default());
        assert_eq!(report.joined, s.population.hosts().len() as u64);
        // Each host publishes roughly duration/interval times.
        let expected = report.joined
            * (SimConfig::default().duration_ms / AsapConfig::default().publish_interval_ms - 1);
        assert!(report.messages.publish >= expected / 2, "too few publishes");
    }

    #[test]
    fn calls_complete_under_churn() {
        let s = scenario();
        let sim = SimConfig {
            calls: 30,
            surrogate_failures: 5,
            ..Default::default()
        };
        let report = run(&s, AsapConfig::default(), &sim);
        assert_eq!(report.calls_completed + report.calls_without_path, 30);
        assert!(report.calls_completed > 0, "no call completed at all");
        assert_eq!(report.failovers, 5);
    }

    #[test]
    fn simulation_is_deterministic() {
        let s = scenario();
        let sim = SimConfig::default();
        let a = run(&s, AsapConfig::default(), &sim);
        let b = run(&s, AsapConfig::default(), &sim);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.calls_completed, b.calls_completed);
    }

    #[test]
    fn message_totals_add_up() {
        let s = scenario();
        let report = run(&s, AsapConfig::default(), &SimConfig::default());
        let m = report.messages;
        assert_eq!(
            m.total(),
            m.join + m.close_set + m.publish + m.election + m.call
        );
        assert!(m.total() > 0);
    }

    fn faulty_sim() -> SimConfig {
        SimConfig {
            calls: 40,
            surrogate_failures: 0,
            faults: Some(FaultPlanConfig {
                seed: 3,
                surrogate_crash_per_tick: 0.02,
                host_crash_per_tick: 0.02,
                congestion_per_tick: 0.01,
                drop_window_per_tick: 0.01,
                stale_close_set_per_tick: 0.01,
                ..Default::default()
            }),
            ..Default::default()
        }
    }

    #[test]
    fn faulty_run_is_deterministic() {
        let s = scenario();
        let sim = faulty_sim();
        let a = run(&s, AsapConfig::default(), &sim);
        let b = run(&s, AsapConfig::default(), &sim);
        assert_eq!(a, b, "same seed must reproduce the whole report");
    }

    #[test]
    fn faults_exercise_recovery_without_losing_the_workload() {
        let s = scenario();
        let report = run(&s, AsapConfig::default(), &faulty_sim());
        // The workload is fully accounted: every call either completed
        // at setup or had no path; drops only come from the active set.
        assert_eq!(report.calls_completed + report.calls_without_path, 40);
        assert!(report.calls_completed > 0, "faults wiped out every call");
        assert!(report.calls_dropped <= report.calls_completed);
        // ~10 expected surrogate crashes over 540 ticks at 2%/tick: the
        // recovery machinery must have actually run.
        assert!(
            report.recovery.re_elections > 0,
            "no surrogate crash re-elected: {:?}",
            report.recovery
        );
        assert!(report.failovers > 0);
        // Every mid-call failover spent its re-ping.
        assert!(report.recovery.recovery_messages >= 2 * report.midcall_failovers);
    }

    #[test]
    fn healthy_run_reports_no_recovery() {
        let s = scenario();
        let sim = SimConfig {
            surrogate_failures: 0,
            faults: None,
            ..Default::default()
        };
        let report = run(&s, AsapConfig::default(), &sim);
        assert_eq!(report.recovery, RecoveryStats::default());
        assert_eq!(report.midcall_failovers, 0);
        assert_eq!(report.calls_dropped, 0);
        assert_eq!(report.congestion_degraded_calls, 0);
    }

    #[test]
    fn ends_at_configured_duration() {
        let s = scenario();
        let sim = SimConfig {
            duration_ms: 120_000,
            ..Default::default()
        };
        let report = run(&s, AsapConfig::default(), &sim);
        assert_eq!(report.ended_at, SimTime(120_000));
    }
}
