//! Discrete-event simulation of the full ASAP protocol machine.
//!
//! The algorithmic heart of ASAP lives in [`crate::close_set`] and
//! [`crate::select`]; this module exercises the *system* around it over
//! virtual time — hosts joining, periodically publishing nodal
//! information, surrogates failing and being replaced, calls arriving —
//! and accounts every message by type. It is the end-to-end validation
//! that the protocol machine stays consistent under churn, and the source
//! of the §6.3 traffic-load numbers.

use std::collections::{BTreeMap, BTreeSet};

use asap_cluster::ClusterId;
use asap_netsim::events::{EventQueue, SimTime};
use asap_netsim::faults::{FaultKind, FaultPlan, FaultPlanConfig, MessageDrops};
use asap_netsim::membership::Verdict;
use asap_telemetry::{MessageKind, Span, Telemetry};
use asap_workload::sessions::Session;
use asap_workload::{HostId, Scenario};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::AsapConfig;
use crate::ladder::DegradationLevel;
use crate::select::CloseRelaySelection;
use crate::system::{AsapSystem, OverloadStats, RecoveryStats};

/// Message taxonomy for the load accounting. Derived at the end of a
/// run from the system's telemetry ledger scope — the simulation no
/// longer keeps parallel counters — by folding the typed
/// [`MessageKind`]s into the paper's §6.3 categories.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MessageCounts {
    /// Join requests/replies with bootstraps.
    pub join: u64,
    /// Close-cluster-set requests/replies with surrogates.
    pub close_set: u64,
    /// Periodic nodal-information publishes to surrogates.
    pub publish: u64,
    /// Surrogate-change notifications (bootstrap + cluster members).
    pub election: u64,
    /// Per-call messages (pings + selection).
    pub call: u64,
    /// Liveness heartbeats from monitored replica members.
    pub heartbeat: u64,
    /// Hedged close-set fetch legs to standby replicas (both the
    /// request and the reply of every hedge, win or lose).
    pub hedge: u64,
}

impl MessageCounts {
    /// Total messages of all types.
    pub fn total(&self) -> u64 {
        self.join
            + self.close_set
            + self.publish
            + self.election
            + self.call
            + self.heartbeat
            + self.hedge
    }

    /// Adds another shard's message counts into this one (plain event
    /// counts: field-wise addition is the exact combine).
    pub fn merge_from(&mut self, other: &MessageCounts) {
        self.join += other.join;
        self.close_set += other.close_set;
        self.publish += other.publish;
        self.election += other.election;
        self.call += other.call;
        self.heartbeat += other.heartbeat;
        self.hedge += other.hedge;
    }
}

/// Configuration of the protocol simulation.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Hosts join uniformly at random within this window (ms).
    pub join_window_ms: u64,
    /// Total simulated duration (ms).
    pub duration_ms: u64,
    /// Number of calls placed at random times after the join window.
    pub calls: usize,
    /// Number of random surrogate failures injected.
    pub surrogate_failures: usize,
    /// How long a placed call stays active, ms — while active, relay
    /// crashes hit it mid-call and congestion bursts degrade it.
    pub call_duration_ms: u64,
    /// Optional deterministic fault schedule driven alongside the
    /// workload (crashes, congestion, message drops, stale epochs,
    /// AS partitions).
    pub faults: Option<FaultPlanConfig>,
    /// Latest time a call may be placed (None = anytime before the end).
    /// Soak runs set `duration_ms - call_duration_ms` so every session
    /// can terminate inside the simulated window.
    pub last_call_ms: Option<u64>,
    /// When set, the end of the run heals every partition, clears
    /// message faults, runs one membership sweep, and counts clusters
    /// whose control plane is still unusable despite having online
    /// members ([`SimReport::stuck_clusters`] — the "no permanently
    /// stuck degraded mode" invariant).
    pub final_recovery_check: bool,
    /// Caller-population skew: 1.0 draws callers uniformly; above 1.0
    /// callers concentrate on a shrinking prefix of the host space
    /// (`⌊n·u^skew⌋` for uniform `u`), hammering a few clusters'
    /// surrogates — the overload-soak workload shape.
    pub caller_skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            join_window_ms: 60_000,
            duration_ms: 600_000,
            calls: 50,
            surrogate_failures: 3,
            call_duration_ms: 180_000,
            faults: None,
            last_call_ms: None,
            final_recovery_check: false,
            caller_skew: 1.0,
            seed: 0,
        }
    }
}

/// What the protocol simulation observed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimReport {
    /// Hosts that joined.
    pub joined: u64,
    /// Calls completed (direct or relayed).
    pub calls_completed: u64,
    /// Calls that found no path at all (unroutable destination).
    pub calls_without_path: u64,
    /// Surrogate failovers performed.
    pub failovers: u64,
    /// Mid-call relay failovers that found a replacement path.
    pub midcall_failovers: u64,
    /// Active calls torn down because no replacement path existed after
    /// their relay died.
    pub calls_dropped: u64,
    /// Active calls degraded by an AS congestion burst crossing one of
    /// their endpoints or relays.
    pub congestion_degraded_calls: u64,
    /// AS partitions applied.
    pub partitions: u64,
    /// Active calls torn down because an endpoint's AS was partitioned.
    pub partition_dropped_calls: u64,
    /// Calls served below the full protocol (any degraded rung).
    pub degraded_calls: u64,
    /// INVARIANT COUNTER — calls that were routed through a relay the
    /// suspicion detector had already declared dead. Must stay 0.
    pub dead_relay_calls: u64,
    /// INVARIANT COUNTER — degraded calls with no excuse: no message-drop
    /// window active and both endpoint clusters' control planes usable.
    /// Must stay 0.
    pub unexcused_degraded_calls: u64,
    /// Calls still active when the simulation ended (soak schedules keep
    /// this at 0 by bounding [`SimConfig::last_call_ms`]).
    pub unterminated_calls: u64,
    /// INVARIANT COUNTER — clusters left with an unusable control plane
    /// despite online members after the final recovery check healed all
    /// faults. Must stay 0. Only counted when
    /// [`SimConfig::final_recovery_check`] is set.
    pub stuck_clusters: u64,
    /// Protocol-side recovery counters (retries, handoffs, re-elections,
    /// ladder transitions), snapshotted from the system at the end.
    pub recovery: RecoveryStats,
    /// Capacity-model counters (admission verdicts, hedges, spillovers,
    /// surrogate-load high-water marks), snapshotted from the system at
    /// the end.
    pub overload: OverloadStats,
    /// Calls whose close-set fetch was shed by admission control and
    /// that were served from the degraded rungs instead of failing.
    pub overload_shed_calls: u64,
    /// Mid-call failovers triggered because a relay-slot acquire pushed
    /// a host over its limit (saturation treated like a crash).
    pub saturation_failovers: u64,
    /// Relay-slot occupancy high-water mark across all hosts.
    pub max_relay_slots_in_use: u32,
    /// Message counters by type.
    pub messages: MessageCounts,
    /// Virtual time at which the simulation ended.
    pub ended_at: SimTime,
}

impl SimReport {
    /// Folds another shard's report into this one. Event counts add;
    /// the nested recovery/overload stats use their own merge rules;
    /// `max_relay_slots_in_use` (a high-water mark) and `ended_at` (all
    /// shards simulate the same virtual window) take the maximum. Every
    /// combine is associative and commutative, so the parallel engine's
    /// shard-order fold equals any other grouping.
    pub fn merge_from(&mut self, other: &SimReport) {
        self.joined += other.joined;
        self.calls_completed += other.calls_completed;
        self.calls_without_path += other.calls_without_path;
        self.failovers += other.failovers;
        self.midcall_failovers += other.midcall_failovers;
        self.calls_dropped += other.calls_dropped;
        self.congestion_degraded_calls += other.congestion_degraded_calls;
        self.partitions += other.partitions;
        self.partition_dropped_calls += other.partition_dropped_calls;
        self.degraded_calls += other.degraded_calls;
        self.dead_relay_calls += other.dead_relay_calls;
        self.unexcused_degraded_calls += other.unexcused_degraded_calls;
        self.unterminated_calls += other.unterminated_calls;
        self.stuck_clusters += other.stuck_clusters;
        self.recovery.merge_from(&other.recovery);
        self.overload.merge_from(&other.overload);
        self.overload_shed_calls += other.overload_shed_calls;
        self.saturation_failovers += other.saturation_failovers;
        self.max_relay_slots_in_use = self
            .max_relay_slots_in_use
            .max(other.max_relay_slots_in_use);
        self.messages.merge_from(&other.messages);
        self.ended_at = self.ended_at.max(other.ended_at);
    }
}

/// Events driving the protocol simulation.
#[derive(Debug, Clone, Copy)]
enum Event {
    Join(HostId),
    Publish(HostId),
    Call(Session),
    FailSurrogate(u32),
    /// A scheduled fault fires (index into the [`FaultPlan`]).
    Fault(usize),
    /// A windowed fault (message drops) expires.
    FaultEnd,
    /// An AS partition may heal (the ASN's latest end time is checked).
    PartitionEnd(u32),
    /// Periodic membership sweep: heartbeats + suspicion-based demotion.
    MembershipTick,
    /// An active call hangs up normally.
    EndCall(u64),
    End,
}

/// A call in progress: enough state to fail it over when its relay dies
/// and to mark it degraded when congestion crosses its path.
#[derive(Debug)]
struct ActiveCall {
    session: Session,
    /// The cached candidate set failover re-picks from (None for calls
    /// that went direct).
    selection: Option<CloseRelaySelection>,
    relays: Vec<HostId>,
    /// Relays that already died under this call (never re-picked).
    dead: Vec<HostId>,
    degraded: bool,
    /// The call's open telemetry span, closed at hangup or teardown.
    span: Span,
}

/// Runs the protocol machine over virtual time with a private telemetry
/// context under the `"ASAP"` scope.
///
/// # Panics
///
/// Panics if the scenario population is empty.
pub fn run(scenario: &Scenario, config: AsapConfig, sim: &SimConfig) -> SimReport {
    run_with(scenario, config, sim, &Telemetry::new(), "ASAP")
}

/// Runs the protocol machine over virtual time, recording every message,
/// histogram, and span into `telemetry` under the ledger scope
/// `scope_name`. The report's [`MessageCounts`] are derived from that
/// scope (deltas over the run), so several runs can share one context.
///
/// # Panics
///
/// Panics if the scenario population is empty.
pub fn run_with(
    scenario: &Scenario,
    config: AsapConfig,
    sim: &SimConfig,
    telemetry: &Telemetry,
    scope_name: &str,
) -> SimReport {
    let system = AsapSystem::bootstrap_scoped(scenario, config, telemetry, scope_name);
    let scope = system.ledger_scope().clone();
    let spans = telemetry.spans().clone();
    let base: Vec<u64> = asap_telemetry::MESSAGE_KINDS
        .iter()
        .map(|&k| scope.count(k))
        .collect();
    let mut rng = StdRng::seed_from_u64(sim.seed);
    let mut queue: EventQueue<Event> = EventQueue::new();
    let hosts = scenario.population.hosts();
    assert!(!hosts.is_empty(), "cannot simulate an empty population");

    for h in hosts {
        queue.schedule(
            SimTime(rng.gen_range(0..sim.join_window_ms.max(1))),
            Event::Join(h.id),
        );
    }
    let last_call = sim
        .last_call_ms
        .unwrap_or(sim.duration_ms)
        .max(sim.join_window_ms + 1);
    for _ in 0..sim.calls {
        // The uniform draw stays byte-for-byte on the historical RNG
        // stream; the skewed draw (⌊n·u^skew⌋) concentrates callers on a
        // prefix of the host space to hammer a few surrogates.
        let caller = if sim.caller_skew == 1.0 {
            HostId(rng.gen_range(0..hosts.len()) as u32)
        } else {
            let u: f64 = rng.gen();
            let idx = (hosts.len() as f64 * u.powf(sim.caller_skew)) as usize;
            HostId(idx.min(hosts.len() - 1) as u32)
        };
        let callee = loop {
            let c = HostId(rng.gen_range(0..hosts.len()) as u32);
            if c != caller {
                break c;
            }
        };
        let at = rng.gen_range(sim.join_window_ms..last_call);
        queue.schedule(SimTime(at), Event::Call(Session { caller, callee }));
    }
    let clusters = scenario.population.clustering().cluster_count() as u32;
    for _ in 0..sim.surrogate_failures {
        let at = rng.gen_range(sim.join_window_ms..sim.duration_ms.max(sim.join_window_ms + 1));
        queue.schedule(
            SimTime(at),
            Event::FailSurrogate(rng.gen_range(0..clusters)),
        );
    }
    let plan = sim.faults.as_ref().map(|fc| {
        let mut asns: Vec<u32> = hosts.iter().map(|h| h.asn.0).collect();
        asns.sort_unstable();
        asns.dedup();
        let plan = FaultPlan::generate(fc, clusters, hosts.len() as u32, &asns);
        for (i, e) in plan.events().iter().enumerate() {
            queue.schedule(SimTime(e.at_ms), Event::Fault(i));
        }
        plan
    });
    let plan = plan.unwrap_or_default();
    // Membership sweeps at the heartbeat cadence for the whole run.
    let hb_interval = system
        .config()
        .membership
        .suspicion
        .heartbeat_interval_ms
        .max(1);
    let mut tick_at = hb_interval;
    while tick_at < sim.duration_ms {
        queue.schedule(SimTime(tick_at), Event::MembershipTick);
        tick_at += hb_interval;
    }
    queue.schedule(SimTime(sim.duration_ms), Event::End);

    let mut report = SimReport::default();
    // BTreeMap so iteration (failover scans, congestion marking) is
    // deterministic.
    let mut active: BTreeMap<u64, ActiveCall> = BTreeMap::new();
    let mut next_call_id: u64 = 0;
    // ASN → congestion-burst end time (virtual ms).
    let mut congested_until: BTreeMap<u32, u64> = BTreeMap::new();
    // ASN → partition end time (virtual ms).
    let mut partitioned_until: BTreeMap<u32, u64> = BTreeMap::new();
    let mut drop_windows_active: u32 = 0;
    // Open telemetry spans: one per live partition, a LIFO stack for
    // (possibly overlapping) message-drop windows.
    let mut partition_spans: BTreeMap<u32, Span> = BTreeMap::new();
    let mut drop_window_spans: Vec<Span> = Vec::new();
    while let Some((now, event)) = queue.pop() {
        system.advance_to(now.as_ms());
        match event {
            Event::End => {
                report.ended_at = now;
                report.unterminated_calls = active.len() as u64;
                if sim.final_recovery_check {
                    // Heal everything, give the detector one sweep, and
                    // verify no cluster is stuck degraded: every cluster
                    // with an online member must be able to serve again.
                    for &asn in partitioned_until.keys() {
                        system.heal_as(asn);
                    }
                    system.set_message_faults(None);
                    let _ = system.membership_tick(now.as_ms());
                    for c in scenario.population.clustering().clusters() {
                        let members = scenario.population.cluster_members(c.id());
                        let any_online = members.iter().any(|&h| system.is_online(h));
                        if any_online && !system.cluster_control_usable(c.id()) {
                            report.stuck_clusters += 1;
                        }
                    }
                }
                break;
            }
            Event::Join(h) => {
                let _ = system.join(h);
                report.joined += 1;
                // First publish happens one interval after joining.
                queue.schedule(
                    now.after_ms(system.config().publish_interval_ms),
                    Event::Publish(h),
                );
            }
            Event::Publish(h) => {
                scope.record_for_node(h.0, MessageKind::Publish, 1);
                if now.as_ms() + system.config().publish_interval_ms <= sim.duration_ms {
                    queue.schedule(
                        now.after_ms(system.config().publish_interval_ms),
                        Event::Publish(h),
                    );
                }
            }
            Event::Call(session) => {
                let outcome = system.call(session.caller, session.callee);
                if outcome.shed_by_overload {
                    report.overload_shed_calls += 1;
                }
                if outcome.degradation > DegradationLevel::FullAsap {
                    report.degraded_calls += 1;
                    // A downgrade is legitimate only while the control
                    // plane is actually impaired: a drop window is live,
                    // an endpoint cluster cannot answer, or admission
                    // control shed the fetch to protect a surrogate.
                    let caller_cluster = scenario.population.cluster_of(session.caller);
                    let callee_cluster = scenario.population.cluster_of(session.callee);
                    let excused = outcome.shed_by_overload
                        || drop_windows_active > 0
                        || !system.cluster_control_usable(caller_cluster)
                        || !system.cluster_control_usable(callee_cluster)
                        || system.is_partitioned(scenario.population.host(session.caller).asn.0)
                        || system.is_partitioned(scenario.population.host(session.callee).asn.0);
                    if !excused {
                        report.unexcused_degraded_calls += 1;
                    }
                }
                if let Some(chosen) = outcome.chosen {
                    for &r in &chosen.relays {
                        if system.relay_verdict(r) == Verdict::Dead {
                            report.dead_relay_calls += 1;
                        }
                    }
                    report.calls_completed += 1;
                    let mut call = ActiveCall {
                        session,
                        selection: outcome.selection,
                        relays: chosen.relays,
                        dead: Vec::new(),
                        degraded: false,
                        span: spans.start("call", now.as_ms()),
                    };
                    if call_touches_congestion(scenario, &call, &congested_until, now.as_ms()) {
                        call.degraded = true;
                        report.congestion_degraded_calls += 1;
                    }
                    // The path starts carrying media: occupy one relay
                    // slot per relay. Saturated relays are treated like
                    // crashed ones — every call through them fails over.
                    let saturated = system.acquire_relays(&call.relays);
                    let id = next_call_id;
                    next_call_id += 1;
                    active.insert(id, call);
                    queue.schedule(now.after_ms(sim.call_duration_ms), Event::EndCall(id));
                    for r in saturated {
                        report.saturation_failovers += 1;
                        fail_over_calls(&system, &mut active, &mut report, r, now);
                    }
                } else {
                    report.calls_without_path += 1;
                }
            }
            Event::EndCall(id) => {
                if let Some(call) = active.remove(&id) {
                    system.release_relays(&call.relays);
                    spans.end(call.span, now.as_ms());
                }
            }
            Event::FailSurrogate(cluster) => {
                let id = ClusterId(cluster);
                let old = system.surrogate_of(id);
                let _ = system.fail_surrogate(id);
                report.failovers += 1;
                fail_over_calls(&system, &mut active, &mut report, old, now);
            }
            Event::Fault(i) => {
                apply_fault(
                    scenario,
                    &system,
                    plan.events()[i].kind,
                    i,
                    now,
                    sim,
                    &mut queue,
                    &mut active,
                    &mut congested_until,
                    &mut partitioned_until,
                    &mut drop_windows_active,
                    &mut partition_spans,
                    &mut drop_window_spans,
                    &mut report,
                );
            }
            Event::FaultEnd => {
                // Only message-drop windows schedule an end event.
                drop_windows_active = drop_windows_active.saturating_sub(1);
                if let Some(span) = drop_window_spans.pop() {
                    spans.end(span, now.as_ms());
                }
                if drop_windows_active == 0 {
                    system.set_message_faults(None);
                }
            }
            Event::PartitionEnd(asn) => {
                // Heal only once the *latest* overlapping partition of
                // this ASN has run out.
                if partitioned_until
                    .get(&asn)
                    .is_some_and(|&until| until <= now.as_ms())
                {
                    partitioned_until.remove(&asn);
                    system.heal_as(asn);
                    if let Some(span) = partition_spans.remove(&asn) {
                        spans.end(span, now.as_ms());
                    }
                }
            }
            Event::MembershipTick => {
                let tick = system.membership_tick(now.as_ms());
                for h in tick.demoted {
                    // The surrogate role moved on; calls still relayed
                    // through the suspect must fail over too.
                    report.failovers += 1;
                    fail_over_calls(&system, &mut active, &mut report, h, now);
                }
            }
        }
    }
    let stats = system.stats();
    report.recovery = stats.recovery;
    report.overload = stats.overload;
    report.max_relay_slots_in_use = system.max_relay_slots_in_use();
    let delta = |k: MessageKind| scope.count(k) - base[k as usize];
    report.messages = MessageCounts {
        join: delta(MessageKind::JoinRequest) + delta(MessageKind::JoinReply),
        close_set: delta(MessageKind::CloseSetRequest) + delta(MessageKind::CloseSetReply),
        publish: delta(MessageKind::Publish),
        election: delta(MessageKind::Election) + delta(MessageKind::Handoff),
        call: delta(MessageKind::CallSetup)
            + delta(MessageKind::ProbeRequest)
            + delta(MessageKind::ProbeReply),
        heartbeat: delta(MessageKind::Heartbeat),
        hedge: delta(MessageKind::HedgeRequest) + delta(MessageKind::HedgeReply),
    };
    report
}

/// Applies one scheduled fault to the running system.
///
/// Plan-driven crashes are *silent*: the victim disappears without any
/// notification, and its replica roles are only recovered once the
/// suspicion detector declares it dead at a membership tick. Calls
/// relayed through it notice immediately (the media stream stops) and
/// fail over right away.
#[allow(clippy::too_many_arguments)]
fn apply_fault(
    scenario: &Scenario,
    system: &AsapSystem<'_>,
    kind: FaultKind,
    index: usize,
    now: SimTime,
    sim: &SimConfig,
    queue: &mut EventQueue<Event>,
    active: &mut BTreeMap<u64, ActiveCall>,
    congested_until: &mut BTreeMap<u32, u64>,
    partitioned_until: &mut BTreeMap<u32, u64>,
    drop_windows_active: &mut u32,
    partition_spans: &mut BTreeMap<u32, Span>,
    drop_window_spans: &mut Vec<Span>,
    report: &mut SimReport,
) {
    let spans = system.telemetry().spans().clone();
    match kind {
        FaultKind::SurrogateCrash { cluster } => {
            let victim = system.surrogate_of(ClusterId(cluster));
            let _ = system.silent_crash(victim);
            fail_over_calls(system, active, report, victim, now);
        }
        FaultKind::HostCrash { host } => {
            let victim = HostId(host);
            let _ = system.silent_crash(victim);
            fail_over_calls(system, active, report, victim, now);
        }
        FaultKind::AsPartition { asn, duration_ms } => {
            system.partition_as(asn);
            report.partitions += 1;
            let until = partitioned_until.entry(asn).or_insert(0);
            *until = (*until).max(now.as_ms() + duration_ms);
            partition_spans
                .entry(asn)
                .or_insert_with(|| spans.start("partition", now.as_ms()));
            queue.schedule(now.after_ms(duration_ms), Event::PartitionEnd(asn));
            // Calls with an endpoint inside the cut AS lose their media
            // path outright.
            let of = |h: HostId| scenario.population.host(h).asn.0;
            let severed: Vec<u64> = active
                .iter()
                .filter(|(_, c)| (of(c.session.caller) == asn) != (of(c.session.callee) == asn))
                .map(|(&id, _)| id)
                .collect();
            for id in severed {
                if let Some(call) = active.remove(&id) {
                    system.release_relays(&call.relays);
                    spans.end(call.span, now.as_ms());
                }
                report.partition_dropped_calls += 1;
            }
            // Calls merely *relayed* through the cut AS fail over.
            let dead_relays: BTreeSet<HostId> = active
                .values()
                .flat_map(|c| c.relays.iter().copied())
                .filter(|&r| of(r) == asn)
                .collect();
            for r in dead_relays {
                fail_over_calls(system, active, report, r, now);
            }
        }
        FaultKind::AsCongestion {
            asn, duration_ms, ..
        } => {
            let until = congested_until.entry(asn).or_insert(0);
            *until = (*until).max(now.as_ms() + duration_ms);
            for call in active.values_mut() {
                if !call.degraded && call_touches_asn(scenario, call, asn) {
                    call.degraded = true;
                    report.congestion_degraded_calls += 1;
                }
            }
        }
        FaultKind::MessageDropWindow {
            drop_prob,
            duration_ms,
        } => {
            *drop_windows_active += 1;
            drop_window_spans.push(spans.start("drop_window", now.as_ms()));
            system.set_message_faults(Some(MessageDrops::new(
                drop_prob,
                sim.seed ^ ((index as u64) << 20) ^ 0xD20F,
            )));
            queue.schedule(now.after_ms(duration_ms), Event::FaultEnd);
        }
        FaultKind::StaleCloseSet { cluster } => {
            system.expire_close_set(ClusterId(cluster));
        }
    }
}

/// Fails over every active call relayed through `dead_host`: re-pick
/// from the cached candidate set, or tear the call down when even the
/// direct fallback is unroutable.
fn fail_over_calls(
    system: &AsapSystem<'_>,
    active: &mut BTreeMap<u64, ActiveCall>,
    report: &mut SimReport,
    dead_host: HostId,
    now: SimTime,
) {
    let affected: Vec<u64> = active
        .iter()
        .filter(|(_, c)| c.relays.contains(&dead_host))
        .map(|(&id, _)| id)
        .collect();
    for id in affected {
        let call = active.get_mut(&id).expect("collected from the map");
        call.dead.push(dead_host);
        // The failover re-ping is recorded in the system's ledger scope.
        let replacement = call.selection.as_ref().and_then(|sel| {
            system.failover_path(call.session.caller, call.session.callee, sel, &call.dead)
        });
        match replacement {
            Some(path) => {
                // Swap the slot occupancy to the replacement path. A
                // cascade (the replacement saturating too) is not chased
                // here: the load-aware re-pick already routed around
                // busy relays, and the next placement will again.
                system.release_relays(&call.relays);
                let _ = system.acquire_relays(&path.relays);
                call.relays = path.relays;
                report.midcall_failovers += 1;
            }
            None => {
                report.calls_dropped += 1;
                let call = active.remove(&id).expect("still in the map");
                system.release_relays(&call.relays);
                system.telemetry().spans().end(call.span, now.as_ms());
            }
        }
    }
}

/// Whether any endpoint or relay of `call` sits in `asn`.
fn call_touches_asn(scenario: &Scenario, call: &ActiveCall, asn: u32) -> bool {
    let of = |h: HostId| scenario.population.host(h).asn.0;
    of(call.session.caller) == asn
        || of(call.session.callee) == asn
        || call.relays.iter().any(|&r| of(r) == asn)
}

/// Whether `call` crosses any AS whose congestion burst is still live at
/// `now_ms`.
fn call_touches_congestion(
    scenario: &Scenario,
    call: &ActiveCall,
    congested_until: &BTreeMap<u32, u64>,
    now_ms: u64,
) -> bool {
    congested_until
        .iter()
        .any(|(&asn, &until)| until > now_ms && call_touches_asn(scenario, call, asn))
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_workload::ScenarioConfig;

    fn scenario() -> Scenario {
        Scenario::build(ScenarioConfig::tiny(), 17)
    }

    #[test]
    fn every_host_joins_and_publishes() {
        let s = scenario();
        let report = run(&s, AsapConfig::default(), &SimConfig::default());
        assert_eq!(report.joined, s.population.hosts().len() as u64);
        // Each host publishes roughly duration/interval times.
        let expected = report.joined
            * (SimConfig::default().duration_ms / AsapConfig::default().publish_interval_ms - 1);
        assert!(report.messages.publish >= expected / 2, "too few publishes");
    }

    #[test]
    fn calls_complete_under_churn() {
        let s = scenario();
        let sim = SimConfig {
            calls: 30,
            surrogate_failures: 5,
            ..Default::default()
        };
        let report = run(&s, AsapConfig::default(), &sim);
        assert_eq!(report.calls_completed + report.calls_without_path, 30);
        assert!(report.calls_completed > 0, "no call completed at all");
        assert_eq!(report.failovers, 5);
    }

    #[test]
    fn simulation_is_deterministic() {
        let s = scenario();
        let sim = SimConfig::default();
        let a = run(&s, AsapConfig::default(), &sim);
        let b = run(&s, AsapConfig::default(), &sim);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.calls_completed, b.calls_completed);
    }

    #[test]
    fn message_totals_add_up() {
        let s = scenario();
        let report = run(&s, AsapConfig::default(), &SimConfig::default());
        let m = report.messages;
        assert_eq!(
            m.total(),
            m.join + m.close_set + m.publish + m.election + m.call + m.heartbeat
        );
        assert!(m.total() > 0);
    }

    fn faulty_sim() -> SimConfig {
        SimConfig {
            calls: 40,
            surrogate_failures: 0,
            faults: Some(FaultPlanConfig {
                seed: 3,
                surrogate_crash_per_tick: 0.02,
                host_crash_per_tick: 0.02,
                congestion_per_tick: 0.01,
                drop_window_per_tick: 0.01,
                stale_close_set_per_tick: 0.01,
                partition_per_tick: 0.005,
                ..Default::default()
            }),
            ..Default::default()
        }
    }

    #[test]
    fn faulty_run_is_deterministic() {
        let s = scenario();
        let sim = faulty_sim();
        let a = run(&s, AsapConfig::default(), &sim);
        let b = run(&s, AsapConfig::default(), &sim);
        assert_eq!(a, b, "same seed must reproduce the whole report");
    }

    #[test]
    fn faults_exercise_recovery_without_losing_the_workload() {
        let s = scenario();
        let report = run(&s, AsapConfig::default(), &faulty_sim());
        // The workload is fully accounted: every call either completed
        // at setup or had no path; drops only come from the active set.
        assert_eq!(report.calls_completed + report.calls_without_path, 40);
        assert!(report.calls_completed > 0, "faults wiped out every call");
        assert!(report.calls_dropped <= report.calls_completed);
        // ~10 expected surrogate crashes over 540 ticks at 2%/tick: the
        // suspicion detector must have demoted victims, and every
        // demotion resolved as a warm handoff or a cold re-election.
        assert!(
            report.recovery.suspected_dead > 0,
            "no silent crash was ever suspected: {:?}",
            report.recovery
        );
        assert!(
            report.recovery.warm_handoffs + report.recovery.re_elections > 0,
            "no surrogate loss was ever recovered: {:?}",
            report.recovery
        );
        assert!(report.failovers > 0);
        // The invariants hold even under this unexcused-hostile mix.
        assert_eq!(report.dead_relay_calls, 0);
        assert_eq!(report.unexcused_degraded_calls, 0);
        // Every mid-call failover spent its re-ping.
        assert!(report.recovery.recovery_messages >= 2 * report.midcall_failovers);
    }

    #[test]
    fn partition_churn_honors_soak_invariants() {
        let s = scenario();
        let sim = SimConfig {
            calls: 60,
            surrogate_failures: 0,
            duration_ms: 600_000,
            call_duration_ms: 120_000,
            last_call_ms: Some(600_000 - 120_000),
            final_recovery_check: true,
            faults: Some(FaultPlanConfig {
                seed: 11,
                surrogate_crash_per_tick: 0.01,
                host_crash_per_tick: 0.01,
                partition_per_tick: 0.02,
                drop_window_per_tick: 0.01,
                ..Default::default()
            }),
            ..Default::default()
        };
        let report = run(&s, AsapConfig::default(), &sim);
        assert!(report.partitions > 0, "no partition was ever injected");
        assert_eq!(report.dead_relay_calls, 0);
        assert_eq!(report.unexcused_degraded_calls, 0);
        assert_eq!(report.unterminated_calls, 0);
        assert_eq!(report.stuck_clusters, 0);
        // Degraded service actually happened and was recorded.
        assert!(report.degraded_calls > 0 || report.partition_dropped_calls > 0);
    }

    #[test]
    fn skewed_overload_sheds_without_losing_the_workload() {
        let s = scenario();
        // Tight capacity + heavily skewed callers: a few surrogates get
        // hammered and must queue, shed, and hedge — without losing a
        // single call or tripping an invariant.
        let config = AsapConfig {
            lat_t_ms: 150.0, // force relay selection at tiny scale
            capacity: asap_netsim::capacity::CapacityConfig {
                surrogate_budget: 2,
                budget_window_ms: 1000,
                queue_limit: 8,
                queue_deadline_ms: 1500,
                hedge_delay_ms: 200,
                relay_slots_base: 1,
                relay_slots_per_capability: 2.0,
                ..Default::default()
            },
            ..Default::default()
        };
        let sim = SimConfig {
            calls: 120,
            surrogate_failures: 0,
            caller_skew: 4.0,
            duration_ms: 120_000,
            call_duration_ms: 60_000,
            last_call_ms: Some(60_000),
            ..Default::default()
        };
        let report = run(&s, config, &sim);
        // Every offered call and every offered fetch is accounted for.
        assert_eq!(report.calls_completed + report.calls_without_path, 120);
        assert!(report.overload.accounted(), "{:?}", report.overload);
        assert!(report.overload.offered_fetches > 0);
        // Shedding excuses the degradation it causes.
        assert_eq!(report.dead_relay_calls, 0);
        assert_eq!(report.unexcused_degraded_calls, 0);
        // The queue bound held.
        assert!(
            report.overload.max_queue_depth <= u64::from(config.capacity.queue_limit),
            "queue depth escaped its bound: {:?}",
            report.overload
        );
        // Determinism: the whole report reproduces bit-for-bit.
        let again = run(&s, config, &sim);
        assert_eq!(report, again);
    }

    #[test]
    fn healthy_run_reports_no_recovery() {
        let s = scenario();
        let sim = SimConfig {
            surrogate_failures: 0,
            faults: None,
            ..Default::default()
        };
        let report = run(&s, AsapConfig::default(), &sim);
        assert_eq!(report.recovery, RecoveryStats::default());
        assert_eq!(report.midcall_failovers, 0);
        assert_eq!(report.calls_dropped, 0);
        assert_eq!(report.congestion_degraded_calls, 0);
    }

    #[test]
    fn ends_at_configured_duration() {
        let s = scenario();
        let sim = SimConfig {
            duration_ms: 120_000,
            ..Default::default()
        };
        let report = run(&s, AsapConfig::default(), &sim);
        assert_eq!(report.ended_at, SimTime(120_000));
    }
}
