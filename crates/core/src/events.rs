//! Discrete-event simulation of the full ASAP protocol machine.
//!
//! The algorithmic heart of ASAP lives in [`crate::close_set`] and
//! [`crate::select`]; this module exercises the *system* around it over
//! virtual time — hosts joining, periodically publishing nodal
//! information, surrogates failing and being replaced, calls arriving —
//! and accounts every message by type. It is the end-to-end validation
//! that the protocol machine stays consistent under churn, and the source
//! of the §6.3 traffic-load numbers.

use asap_netsim::events::{EventQueue, SimTime};
use asap_workload::sessions::Session;
use asap_workload::{HostId, Scenario};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::AsapConfig;
use crate::system::AsapSystem;

/// Message taxonomy for the load accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MessageCounts {
    /// Join requests/replies with bootstraps.
    pub join: u64,
    /// Close-cluster-set requests/replies with surrogates.
    pub close_set: u64,
    /// Periodic nodal-information publishes to surrogates.
    pub publish: u64,
    /// Surrogate-change notifications (bootstrap + cluster members).
    pub election: u64,
    /// Per-call messages (pings + selection).
    pub call: u64,
}

impl MessageCounts {
    /// Total messages of all types.
    pub fn total(&self) -> u64 {
        self.join + self.close_set + self.publish + self.election + self.call
    }
}

/// Configuration of the protocol simulation.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Hosts join uniformly at random within this window (ms).
    pub join_window_ms: u64,
    /// Total simulated duration (ms).
    pub duration_ms: u64,
    /// Number of calls placed at random times after the join window.
    pub calls: usize,
    /// Number of random surrogate failures injected.
    pub surrogate_failures: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            join_window_ms: 60_000,
            duration_ms: 600_000,
            calls: 50,
            surrogate_failures: 3,
            seed: 0,
        }
    }
}

/// What the protocol simulation observed.
#[derive(Debug, Clone, Default)]
pub struct SimReport {
    /// Hosts that joined.
    pub joined: u64,
    /// Calls completed (direct or relayed).
    pub calls_completed: u64,
    /// Calls that found no path at all (unroutable destination).
    pub calls_without_path: u64,
    /// Surrogate failovers performed.
    pub failovers: u64,
    /// Message counters by type.
    pub messages: MessageCounts,
    /// Virtual time at which the simulation ended.
    pub ended_at: SimTime,
}

/// Events driving the protocol simulation.
#[derive(Debug, Clone, Copy)]
enum Event {
    Join(HostId),
    Publish(HostId),
    Call(Session),
    FailSurrogate(u32),
    End,
}

/// Runs the protocol machine over virtual time.
///
/// # Panics
///
/// Panics if the scenario population is empty.
pub fn run(scenario: &Scenario, config: AsapConfig, sim: &SimConfig) -> SimReport {
    let system = AsapSystem::bootstrap(scenario, config);
    let mut rng = StdRng::seed_from_u64(sim.seed);
    let mut queue: EventQueue<Event> = EventQueue::new();
    let hosts = scenario.population.hosts();
    assert!(!hosts.is_empty(), "cannot simulate an empty population");

    for h in hosts {
        queue.schedule(
            SimTime(rng.gen_range(0..sim.join_window_ms.max(1))),
            Event::Join(h.id),
        );
    }
    for _ in 0..sim.calls {
        let caller = HostId(rng.gen_range(0..hosts.len()) as u32);
        let callee = loop {
            let c = HostId(rng.gen_range(0..hosts.len()) as u32);
            if c != caller {
                break c;
            }
        };
        let at = rng.gen_range(sim.join_window_ms..sim.duration_ms.max(sim.join_window_ms + 1));
        queue.schedule(SimTime(at), Event::Call(Session { caller, callee }));
    }
    let clusters = scenario.population.clustering().cluster_count() as u32;
    for _ in 0..sim.surrogate_failures {
        let at = rng.gen_range(sim.join_window_ms..sim.duration_ms.max(sim.join_window_ms + 1));
        queue.schedule(
            SimTime(at),
            Event::FailSurrogate(rng.gen_range(0..clusters)),
        );
    }
    queue.schedule(SimTime(sim.duration_ms), Event::End);

    let mut report = SimReport::default();
    while let Some((now, event)) = queue.pop() {
        match event {
            Event::End => {
                report.ended_at = now;
                break;
            }
            Event::Join(h) => {
                let _ = system.join(h);
                report.joined += 1;
                report.messages.join += 2;
                report.messages.close_set += 2;
                // First publish happens one interval after joining.
                queue.schedule(
                    now.after_ms(system.config().publish_interval_ms),
                    Event::Publish(h),
                );
            }
            Event::Publish(h) => {
                report.messages.publish += 1;
                if now.as_ms() + system.config().publish_interval_ms <= sim.duration_ms {
                    queue.schedule(
                        now.after_ms(system.config().publish_interval_ms),
                        Event::Publish(h),
                    );
                }
            }
            Event::Call(session) => {
                let outcome = system.call(session.caller, session.callee);
                report.messages.call += outcome.messages;
                if outcome.chosen.is_some() {
                    report.calls_completed += 1;
                } else {
                    report.calls_without_path += 1;
                }
            }
            Event::FailSurrogate(cluster) => {
                let id = asap_cluster::ClusterId(cluster);
                let members = scenario.population.cluster_members(id).len() as u64;
                let _ = system.fail_surrogate(id);
                report.failovers += 1;
                // Notify bootstrap (2) and cluster members (1 each).
                report.messages.election += 2 + members;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_workload::ScenarioConfig;

    fn scenario() -> Scenario {
        Scenario::build(ScenarioConfig::tiny(), 17)
    }

    #[test]
    fn every_host_joins_and_publishes() {
        let s = scenario();
        let report = run(&s, AsapConfig::default(), &SimConfig::default());
        assert_eq!(report.joined, s.population.hosts().len() as u64);
        // Each host publishes roughly duration/interval times.
        let expected = report.joined
            * (SimConfig::default().duration_ms / AsapConfig::default().publish_interval_ms - 1);
        assert!(report.messages.publish >= expected / 2, "too few publishes");
    }

    #[test]
    fn calls_complete_under_churn() {
        let s = scenario();
        let sim = SimConfig {
            calls: 30,
            surrogate_failures: 5,
            ..Default::default()
        };
        let report = run(&s, AsapConfig::default(), &sim);
        assert_eq!(report.calls_completed + report.calls_without_path, 30);
        assert!(report.calls_completed > 0, "no call completed at all");
        assert_eq!(report.failovers, 5);
    }

    #[test]
    fn simulation_is_deterministic() {
        let s = scenario();
        let sim = SimConfig::default();
        let a = run(&s, AsapConfig::default(), &sim);
        let b = run(&s, AsapConfig::default(), &sim);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.calls_completed, b.calls_completed);
    }

    #[test]
    fn message_totals_add_up() {
        let s = scenario();
        let report = run(&s, AsapConfig::default(), &SimConfig::default());
        let m = report.messages;
        assert_eq!(
            m.total(),
            m.join + m.close_set + m.publish + m.election + m.call
        );
        assert!(m.total() > 0);
    }

    #[test]
    fn ends_at_configured_duration() {
        let s = scenario();
        let sim = SimConfig {
            duration_ms: 120_000,
            ..Default::default()
        };
        let report = run(&s, AsapConfig::default(), &sim);
        assert_eq!(report.ended_at, SimTime(120_000));
    }
}
