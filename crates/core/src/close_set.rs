//! `construct-close-cluster-set()` — paper Fig. 9.
//!
//! Each cluster surrogate `s` runs a breadth-first search outward from its
//! own AS on the annotated AS graph, under three constraints:
//!
//! * extensions must keep the AS path **valley-free** (a relay in a
//!   cluster only helps if the legs toward it are policy-routable);
//! * at most `k` AS hops (the paper shows ≤ 4 AS hops covers >90% of
//!   sub-300 ms routes);
//! * expansion is **pruned** through ASes whose measured RTT exceeds
//!   `latT` or whose loss exceeds `lossT` (if getting *to* an AS is
//!   already slow, everything behind it is too).
//!
//! Every cluster originated by a reached AS is measured (surrogate → peer
//! cluster delegate, by `ping`); clusters within both thresholds enter the
//! close cluster set.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use asap_cluster::{Asn, ClusterId};
use asap_topology::valley::{bounded_search, bounded_search_unconstrained, Expand};
use asap_workload::{HostId, Scenario};
use parking_lot::Mutex;

use crate::config::AsapConfig;

/// One member of a close cluster set: a cluster reachable within the
/// thresholds, with its measured leg properties.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CloseClusterEntry {
    /// The close cluster.
    pub cluster: ClusterId,
    /// The cluster's surrogate host (relay candidate representative).
    pub surrogate: HostId,
    /// Measured RTT from the owning surrogate to this cluster, ms.
    pub rtt_ms: f64,
    /// Measured loss rate of that leg.
    pub loss: f64,
    /// Valley-free AS hops at which the cluster's AS was reached.
    pub as_hops: usize,
}

/// The close cluster set of one cluster.
#[derive(Debug, Clone, Default)]
pub struct CloseClusterSet {
    entries: Vec<CloseClusterEntry>,
    by_cluster: HashMap<ClusterId, usize>,
    /// Ping messages the surrogate spent constructing the set: exactly
    /// one request + reply per *completed* measurement of a cluster
    /// reached by the BFS. Clusters co-located in the origin AS are
    /// close by construction (Fig. 9) and cost nothing, and a cluster
    /// whose measurement could not complete is never charged. This is
    /// *background* traffic amortized over all sessions of the cluster,
    /// reported separately from per-session overhead (§7.3).
    pub construction_messages: u64,
}

impl CloseClusterSet {
    /// Builds a set from explicit entries (simulation and test harnesses;
    /// the protocol itself always constructs sets via
    /// [`construct_close_cluster_set`]). Later duplicates of a cluster
    /// replace earlier ones in the index but keep their slot order.
    pub fn from_entries(entries: impl IntoIterator<Item = CloseClusterEntry>) -> Self {
        let mut set = CloseClusterSet::default();
        for e in entries {
            if set.contains(e.cluster) {
                continue;
            }
            set.push(e);
        }
        set
    }

    /// The entries, in BFS (increasing-hop) order.
    pub fn entries(&self) -> &[CloseClusterEntry] {
        &self.entries
    }

    /// Number of close clusters.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry for `cluster`, if it is in the set.
    pub fn get(&self, cluster: ClusterId) -> Option<&CloseClusterEntry> {
        self.by_cluster.get(&cluster).map(|&i| &self.entries[i])
    }

    /// Whether `cluster` is in the set.
    pub fn contains(&self, cluster: ClusterId) -> bool {
        self.by_cluster.contains_key(&cluster)
    }

    fn push(&mut self, entry: CloseClusterEntry) {
        self.by_cluster.insert(entry.cluster, self.entries.len());
        self.entries.push(entry);
    }

    /// Test-only constructor hook for hand-built sets.
    #[cfg(test)]
    pub(crate) fn push_for_tests(&mut self, entry: CloseClusterEntry) {
        self.push(entry);
    }
}

/// An index from AS number to the clusters it originates, shared by all
/// surrogates (the bootstrap's prefix → ASN table, inverted).
#[derive(Debug, Clone, Default)]
pub struct ClusterIndex {
    by_asn: HashMap<Asn, Vec<ClusterId>>,
}

impl ClusterIndex {
    /// Builds the index from a scenario's clustering.
    pub fn build(scenario: &Scenario) -> Self {
        let mut by_asn: HashMap<Asn, Vec<ClusterId>> = HashMap::new();
        for c in scenario.population.clustering().clusters() {
            by_asn.entry(c.asn()).or_default().push(c.id());
        }
        ClusterIndex { by_asn }
    }

    /// The clusters originated by `asn` (empty if none).
    pub fn clusters_of(&self, asn: Asn) -> &[ClusterId] {
        self.by_asn.get(&asn).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// A cached close cluster set plus the surrogate epochs of every cluster
/// it references, snapshotted at construction time.
#[derive(Debug)]
struct CachedCloseSet {
    deps: Vec<(ClusterId, u64)>,
    set: Arc<CloseClusterSet>,
    /// Virtual time the set was built — bounds the stale-close-set rung.
    built_at_ms: u64,
}

/// Outcome of a [`CloseSetCache::lookup`].
#[derive(Debug)]
pub enum CacheLookup {
    /// A current-epoch set was served from the cache.
    Hit(Arc<CloseClusterSet>),
    /// An entry existed but referenced a stale epoch; it has been
    /// removed (defensive — eager purging should prevent this).
    Stale,
    /// Nothing cached for the cluster.
    Miss,
}

/// The per-cluster memoized close-cluster-set cache.
///
/// Entries are keyed by origin cluster and carry the surrogate epoch of
/// every cluster the set references, snapshotted at build time. Two
/// invalidation channels keep the memo honest:
///
/// * **cold epoch bumps** ([`CloseSetCache::purge_referencing`]) drop
///   every entry referencing the re-elected cluster;
/// * **warm handoffs** ([`CloseSetCache::refresh_epoch`]) adopt the new
///   epoch in place, because the set's *content* is cluster-level and
///   relays resolve through `surrogate_of` at pick time.
///
/// Hit/miss counters are plain atomics so a shared `&self` can count
/// from the hot path; they are observability only and never feed back
/// into protocol decisions (determinism is unaffected by their
/// ordering).
#[derive(Debug, Default)]
pub struct CloseSetCache {
    entries: Mutex<HashMap<ClusterId, CachedCloseSet>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CloseSetCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up `cluster`, validating the entry's epoch snapshot through
    /// `epoch_of` (typically a closure over the caller's locked replica
    /// table, preserving the caller's lock order). A stale entry is
    /// removed on sight. Stale and absent both count as misses — each
    /// forces a rebuild.
    pub fn lookup(&self, cluster: ClusterId, epoch_of: impl Fn(ClusterId) -> u64) -> CacheLookup {
        let mut entries = self.entries.lock();
        match entries.get(&cluster) {
            Some(cached) => {
                if cached.deps.iter().all(|&(cl, e)| epoch_of(cl) == e) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    CacheLookup::Hit(Arc::clone(&cached.set))
                } else {
                    entries.remove(&cluster);
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    CacheLookup::Stale
                }
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                CacheLookup::Miss
            }
        }
    }

    /// Memoizes a freshly built set with its epoch dependency snapshot.
    /// Keeps an existing entry if one raced in first.
    pub fn insert(
        &self,
        cluster: ClusterId,
        deps: Vec<(ClusterId, u64)>,
        set: Arc<CloseClusterSet>,
        built_at_ms: u64,
    ) {
        self.entries
            .lock()
            .entry(cluster)
            .or_insert(CachedCloseSet {
                deps,
                set,
                built_at_ms,
            });
    }

    /// Warm-handoff invalidation rule: entries referencing `cluster`
    /// adopt `epoch` in place (content stays valid).
    pub fn refresh_epoch(&self, cluster: ClusterId, epoch: u64) {
        let mut entries = self.entries.lock();
        for entry in entries.values_mut() {
            for dep in entry.deps.iter_mut() {
                if dep.0 == cluster {
                    dep.1 = epoch;
                }
            }
        }
    }

    /// Cold-epoch invalidation rule: drops every entry referencing
    /// `cluster`, returning how many were dropped.
    pub fn purge_referencing(&self, cluster: ClusterId) -> u64 {
        let mut entries = self.entries.lock();
        let before = entries.len();
        entries.retain(|_, c| c.deps.iter().all(|&(cl, _)| cl != cluster));
        (before - entries.len()) as u64
    }

    /// The cached set for `cluster` if it was built within `max_age_ms`
    /// of `now_ms` — the bounded-staleness rung of the degradation
    /// ladder (epoch validity is *not* checked here; a stale-but-recent
    /// set is exactly what the rung serves).
    pub fn fresh_within(
        &self,
        cluster: ClusterId,
        now_ms: u64,
        max_age_ms: u64,
    ) -> Option<Arc<CloseClusterSet>> {
        self.entries.lock().get(&cluster).and_then(|c| {
            (now_ms.saturating_sub(c.built_at_ms) <= max_age_ms).then(|| Arc::clone(&c.set))
        })
    }

    /// Whether every entry references only current epochs per
    /// `epoch_of` (validation hook for the robustness tests).
    pub fn epoch_consistent(&self, epoch_of: impl Fn(ClusterId) -> u64) -> bool {
        self.entries
            .lock()
            .values()
            .all(|c| c.deps.iter().all(|&(cl, e)| epoch_of(cl) == e))
    }

    /// `(hits, misses)` recorded so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of memoized sets.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// How the close-cluster-set BFS explores the AS graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchMode {
    /// Valley-free constrained, as the paper's Fig. 9 specifies.
    #[default]
    ValleyFree,
    /// Plain BFS ignoring routing policy — an ablation that shows what
    /// AS-relationship awareness buys (more probes for candidates whose
    /// legs BGP cannot actually realize).
    Unconstrained,
}

/// Runs `construct-close-cluster-set()` for the surrogate of
/// `origin_cluster`.
///
/// `surrogate_of` maps clusters to their current surrogate host (the
/// caller owns surrogate election). Measurements go surrogate-delegate to
/// surrogate-delegate through the scenario's network model.
pub fn construct_close_cluster_set(
    scenario: &Scenario,
    index: &ClusterIndex,
    surrogate_of: &dyn Fn(ClusterId) -> HostId,
    origin_cluster: ClusterId,
    config: &AsapConfig,
) -> CloseClusterSet {
    construct_close_cluster_set_with_mode(
        scenario,
        index,
        surrogate_of,
        origin_cluster,
        config,
        SearchMode::ValleyFree,
    )
}

/// [`construct_close_cluster_set`] with an explicit [`SearchMode`]
/// (ablation hook).
pub fn construct_close_cluster_set_with_mode(
    scenario: &Scenario,
    index: &ClusterIndex,
    surrogate_of: &dyn Fn(ClusterId) -> HostId,
    origin_cluster: ClusterId,
    config: &AsapConfig,
    mode: SearchMode,
) -> CloseClusterSet {
    let clustering = scenario.population.clustering();
    let origin_asn = clustering.cluster(origin_cluster).asn();
    let origin_surrogate = surrogate_of(origin_cluster);

    let mut set = CloseClusterSet::default();

    // Clusters co-located in the origin AS are close by construction
    // (intra-AS latency), at 0 AS hops — no ping is sent, so no
    // construction messages are charged.
    for &c in index.clusters_of(origin_asn) {
        if c == origin_cluster {
            continue;
        }
        let peer = surrogate_of(c);
        if let (Some(rtt), Some(loss)) = (
            measure_rtt(scenario, origin_surrogate, peer),
            scenario.host_loss(origin_surrogate, peer),
        ) {
            if rtt < config.lat_t_ms && loss < config.loss_t {
                set.push(CloseClusterEntry {
                    cluster: c,
                    surrogate: peer,
                    rtt_ms: rtt,
                    loss,
                    as_hops: 0,
                });
            }
        }
    }

    let visit = |set: &mut CloseClusterSet, reached: asap_topology::valley::Reached| {
        let clusters = index.clusters_of(reached.asn);
        if clusters.is_empty() {
            // No peers there: nothing to measure, keep expanding (transit
            // ASes carry no clusters but lead to ones that do).
            return Expand::Continue;
        }
        // Measure each cluster in the reached AS; prune expansion when
        // even the best leg into this AS violates a threshold.
        let mut best_rtt = f64::INFINITY;
        for &c in clusters {
            let peer = surrogate_of(c);
            let (Some(rtt), Some(loss)) = (
                measure_rtt(scenario, origin_surrogate, peer),
                scenario.host_loss(origin_surrogate, peer),
            ) else {
                // No measurement completed: no ping pair to account.
                continue;
            };
            set.construction_messages += 2;
            best_rtt = best_rtt.min(rtt);
            if rtt < config.lat_t_ms && loss < config.loss_t {
                set.push(CloseClusterEntry {
                    cluster: c,
                    surrogate: peer,
                    rtt_ms: rtt,
                    loss,
                    as_hops: reached.hops,
                });
            }
        }
        if best_rtt >= config.lat_t_ms {
            Expand::Prune
        } else {
            Expand::Continue
        }
    };

    match mode {
        SearchMode::ValleyFree => {
            bounded_search(&scenario.internet.graph, origin_asn, config.k, |reached| {
                visit(&mut set, reached)
            });
        }
        SearchMode::Unconstrained => {
            bounded_search_unconstrained(
                &scenario.internet.graph,
                origin_asn,
                config.k,
                |reached| visit(&mut set, reached),
            );
        }
    }

    set
}

/// The surrogate's `lat()` primitive ("can be done by using simple system
/// utilities, such as ping"): a direct host-to-host RTT measurement.
fn measure_rtt(scenario: &Scenario, from: HostId, to: HostId) -> Option<f64> {
    if from == to {
        return Some(0.0);
    }
    scenario.host_rtt_ms(from, to)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_workload::ScenarioConfig;

    fn setup() -> (Scenario, ClusterIndex, AsapConfig) {
        let scenario = Scenario::build(ScenarioConfig::tiny(), 13);
        let index = ClusterIndex::build(&scenario);
        (scenario, index, AsapConfig::default())
    }

    fn delegate_surrogates(scenario: &Scenario) -> impl Fn(ClusterId) -> HostId + '_ {
        move |c| scenario.delegate_of(c)
    }

    #[test]
    fn close_set_respects_thresholds() {
        let (scenario, index, config) = setup();
        let surrogate = delegate_surrogates(&scenario);
        let origin = scenario.population.clustering().clusters()[0].id();
        let set = construct_close_cluster_set(&scenario, &index, &surrogate, origin, &config);
        for e in set.entries() {
            assert!(e.rtt_ms < config.lat_t_ms, "{} ≥ latT", e.rtt_ms);
            assert!(e.loss < config.loss_t);
            assert!(e.as_hops <= config.k);
            assert_ne!(e.cluster, origin, "origin never lists itself");
        }
    }

    #[test]
    fn close_set_is_indexable() {
        let (scenario, index, config) = setup();
        let surrogate = delegate_surrogates(&scenario);
        let origin = scenario.population.clustering().clusters()[1].id();
        let set = construct_close_cluster_set(&scenario, &index, &surrogate, origin, &config);
        for e in set.entries() {
            assert!(set.contains(e.cluster));
            assert_eq!(set.get(e.cluster).unwrap(), e);
        }
        assert!(!set.contains(origin));
    }

    #[test]
    fn smaller_k_never_enlarges_the_set() {
        let (scenario, index, config) = setup();
        let surrogate = delegate_surrogates(&scenario);
        let origin = scenario.population.clustering().clusters()[2].id();
        let small = construct_close_cluster_set(
            &scenario,
            &index,
            &surrogate,
            origin,
            &AsapConfig { k: 2, ..config },
        );
        let large = construct_close_cluster_set(
            &scenario,
            &index,
            &surrogate,
            origin,
            &AsapConfig { k: 5, ..config },
        );
        assert!(small.len() <= large.len());
        for e in small.entries() {
            assert!(
                large.contains(e.cluster),
                "k=2 found {:?} but k=5 did not",
                e.cluster
            );
        }
    }

    #[test]
    fn tight_latency_threshold_shrinks_the_set() {
        let (scenario, index, config) = setup();
        let surrogate = delegate_surrogates(&scenario);
        let origin = scenario.population.clustering().clusters()[0].id();
        let loose = construct_close_cluster_set(&scenario, &index, &surrogate, origin, &config);
        let tight = construct_close_cluster_set(
            &scenario,
            &index,
            &surrogate,
            origin,
            &AsapConfig {
                lat_t_ms: 40.0,
                ..config
            },
        );
        assert!(tight.len() <= loose.len());
        for e in tight.entries() {
            assert!(e.rtt_ms < 40.0);
        }
    }

    #[test]
    fn construction_messages_cover_measured_clusters() {
        let (scenario, index, config) = setup();
        let surrogate = delegate_surrogates(&scenario);
        let origin = scenario.population.clustering().clusters()[0].id();
        let set = construct_close_cluster_set(&scenario, &index, &surrogate, origin, &config);
        // Two messages per completed measurement; accepted entries
        // beyond 0 hops were all measured (co-located ones are free).
        let remote = set.entries().iter().filter(|e| e.as_hops > 0).count() as u64;
        assert!(set.construction_messages >= 2 * remote);
        assert_eq!(
            set.construction_messages % 2,
            0,
            "pings come in request/reply pairs"
        );
    }

    #[test]
    fn colocated_clusters_cost_no_construction_messages() {
        // k = 0 pins the BFS at home: only AS-co-located clusters can
        // enter the set, and Fig. 9 makes them close by construction —
        // no ping, no charge.
        let (scenario, index, config) = setup();
        let surrogate = delegate_surrogates(&scenario);
        let zero_hop = AsapConfig { k: 0, ..config };
        let mut saw_colocated = false;
        for c in scenario.population.clustering().clusters() {
            let set = construct_close_cluster_set(&scenario, &index, &surrogate, c.id(), &zero_hop);
            assert_eq!(
                set.construction_messages,
                0,
                "co-located measurement charged messages for {:?}",
                c.id()
            );
            saw_colocated |= !set.is_empty();
            for e in set.entries() {
                assert_eq!(e.as_hops, 0);
            }
        }
        // The tiny scenario packs several clusters per AS, so the zero
        // charge above is not vacuous.
        assert!(saw_colocated, "no AS with co-located clusters in fixture");
    }

    #[test]
    fn unconstrained_mode_probes_at_least_as_much() {
        let (scenario, index, config) = setup();
        let surrogate = delegate_surrogates(&scenario);
        let origin = scenario.population.clustering().clusters()[0].id();
        let vf = construct_close_cluster_set_with_mode(
            &scenario,
            &index,
            &surrogate,
            origin,
            &config,
            SearchMode::ValleyFree,
        );
        let un = construct_close_cluster_set_with_mode(
            &scenario,
            &index,
            &surrogate,
            origin,
            &config,
            SearchMode::Unconstrained,
        );
        assert!(un.construction_messages >= vf.construction_messages);
        // Every valley-free close cluster also qualifies when reached by
        // the plain ball (measurement is identical).
        for e in vf.entries() {
            assert!(
                un.contains(e.cluster),
                "{:?} missing from unconstrained set",
                e.cluster
            );
        }
    }

    #[test]
    fn cluster_index_covers_every_cluster() {
        let (scenario, index, _) = setup();
        let clustering = scenario.population.clustering();
        for c in clustering.clusters() {
            assert!(index.clusters_of(c.asn()).contains(&c.id()));
        }
    }

    fn sample_set() -> Arc<CloseClusterSet> {
        Arc::new(CloseClusterSet::from_entries([CloseClusterEntry {
            cluster: ClusterId(2),
            surrogate: HostId(20),
            rtt_ms: 30.0,
            loss: 0.001,
            as_hops: 1,
        }]))
    }

    #[test]
    fn cache_hits_after_insert_and_counts() {
        let cache = CloseSetCache::new();
        let origin = ClusterId(1);
        assert!(matches!(cache.lookup(origin, |_| 0), CacheLookup::Miss));
        cache.insert(
            origin,
            vec![(origin, 0), (ClusterId(2), 0)],
            sample_set(),
            5,
        );
        match cache.lookup(origin, |_| 0) {
            CacheLookup::Hit(set) => assert!(set.contains(ClusterId(2))),
            other => panic!("expected hit, got {other:?}"),
        }
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn stale_epoch_evicts_on_lookup() {
        let cache = CloseSetCache::new();
        let origin = ClusterId(1);
        cache.insert(
            origin,
            vec![(origin, 0), (ClusterId(2), 3)],
            sample_set(),
            0,
        );
        // Cluster 2 cold-advanced to epoch 4: the entry is stale.
        let epoch_of = |c: ClusterId| if c == ClusterId(2) { 4 } else { 0 };
        assert!(matches!(cache.lookup(origin, epoch_of), CacheLookup::Stale));
        assert!(cache.is_empty(), "stale entry must be evicted");
        assert!(matches!(cache.lookup(origin, epoch_of), CacheLookup::Miss));
    }

    #[test]
    fn warm_refresh_keeps_entry_cold_purge_drops_it() {
        let cache = CloseSetCache::new();
        let origin = ClusterId(1);
        cache.insert(
            origin,
            vec![(origin, 0), (ClusterId(2), 0)],
            sample_set(),
            0,
        );

        // Warm handoff on cluster 2: epoch adopted in place, still a hit.
        cache.refresh_epoch(ClusterId(2), 1);
        let epoch_of = |c: ClusterId| if c == ClusterId(2) { 1 } else { 0 };
        assert!(cache.epoch_consistent(epoch_of));
        assert!(matches!(
            cache.lookup(origin, epoch_of),
            CacheLookup::Hit(_)
        ));

        // Cold re-election on cluster 2: the entry referencing it dies.
        assert_eq!(cache.purge_referencing(ClusterId(2)), 1);
        assert!(cache.is_empty());
        assert_eq!(cache.purge_referencing(ClusterId(2)), 0);
    }

    #[test]
    fn fresh_within_bounds_staleness_by_age() {
        let cache = CloseSetCache::new();
        let origin = ClusterId(1);
        cache.insert(origin, vec![(origin, 0)], sample_set(), 100);
        assert!(cache.fresh_within(origin, 150, 60).is_some());
        assert!(cache.fresh_within(origin, 200, 60).is_none());
        // Age checks ignore epochs: that is the stale rung's contract.
        assert!(cache.fresh_within(origin, 100, 0).is_some());
    }
}
