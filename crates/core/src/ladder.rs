//! The graceful-degradation ladder.
//!
//! ASAP's relay selection assumes a healthy control plane: surrogates
//! answer close-set requests, so a caller can always intersect two fresh
//! close cluster sets. Under churn or partition that assumption fails,
//! and the worst possible response is to block a call on a control plane
//! that is not coming back. Instead, each caller cluster walks a ladder
//! of strictly cheaper service levels and climbs back up the moment the
//! control plane answers again:
//!
//! 1. [`DegradationLevel::FullAsap`] — fresh close sets, the paper's
//!    protocol, AS-aware selection.
//! 2. [`DegradationLevel::StaleCloseSet`] — a cached close set whose age
//!    is within [`MembershipConfig::stale_set_max_age_ms`]: AS-aware but
//!    possibly missing recent re-elections (bounded staleness).
//! 3. [`DegradationLevel::RandomProbe`] — MIX-style deterministic random
//!    relay probing, AS-blind but requiring no surrogate at all.
//! 4. [`DegradationLevel::DirectOnly`] — the direct path even above
//!    `latT`: a degraded call beats a dropped one.
//!
//! Every downgrade and recovery is recorded so the soak harness can
//! assert that no cluster gets *stuck* degraded once faults clear.
//!
//! [`MembershipConfig::stale_set_max_age_ms`]: crate::config::MembershipConfig::stale_set_max_age_ms

/// One rung of the service ladder, from full protocol to bare direct
/// path. Ordered: greater = more degraded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum DegradationLevel {
    /// Fresh close sets from live surrogates — the full protocol.
    #[default]
    FullAsap,
    /// A cached close set of bounded age; AS-aware but possibly stale.
    StaleCloseSet,
    /// MIX-style deterministic random probing; AS-blind, surrogate-free.
    RandomProbe,
    /// Direct path only, even above the latency threshold.
    DirectOnly,
}

impl DegradationLevel {
    /// A short stable label for reports and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            DegradationLevel::FullAsap => "full_asap",
            DegradationLevel::StaleCloseSet => "stale_close_set",
            DegradationLevel::RandomProbe => "random_probe",
            DegradationLevel::DirectOnly => "direct_only",
        }
    }
}

/// Per-cluster ladder state with transition accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DegradationLadder {
    level: DegradationLevel,
    /// Times the ladder moved to a more degraded level.
    pub downgrades: u64,
    /// Times the ladder recovered to the full protocol.
    pub recoveries: u64,
    /// Virtual ms of the last level change (0 if never changed).
    pub last_change_ms: u64,
}

impl DegradationLadder {
    /// The current service level.
    pub fn level(&self) -> DegradationLevel {
        self.level
    }

    /// Records that a call was served at `level` at `now_ms`. Moving to
    /// a more degraded level counts one downgrade; serving at
    /// [`DegradationLevel::FullAsap`] from any degraded level counts one
    /// recovery. Serving at a *less* degraded (but not full) level moves
    /// the ladder there without counting — partial recoveries only count
    /// once the full protocol works again.
    pub fn observe(&mut self, level: DegradationLevel, now_ms: u64) {
        if level == self.level {
            return;
        }
        if level > self.level {
            self.downgrades += 1;
        } else if level == DegradationLevel::FullAsap {
            self.recoveries += 1;
        }
        self.level = level;
        self.last_change_ms = now_ms;
    }

    /// Whether the ladder currently sits below the full protocol.
    pub fn is_degraded(&self) -> bool {
        self.level != DegradationLevel::FullAsap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_by_severity() {
        assert!(DegradationLevel::FullAsap < DegradationLevel::StaleCloseSet);
        assert!(DegradationLevel::StaleCloseSet < DegradationLevel::RandomProbe);
        assert!(DegradationLevel::RandomProbe < DegradationLevel::DirectOnly);
        assert_eq!(DegradationLevel::default(), DegradationLevel::FullAsap);
    }

    #[test]
    fn observe_counts_downgrades_and_recoveries() {
        let mut ladder = DegradationLadder::default();
        ladder.observe(DegradationLevel::FullAsap, 10);
        assert_eq!((ladder.downgrades, ladder.recoveries), (0, 0));

        ladder.observe(DegradationLevel::StaleCloseSet, 20);
        ladder.observe(DegradationLevel::DirectOnly, 30);
        assert_eq!(ladder.downgrades, 2);
        assert!(ladder.is_degraded());

        // Partial recovery moves but does not count.
        ladder.observe(DegradationLevel::RandomProbe, 40);
        assert_eq!(ladder.recoveries, 0);
        assert_eq!(ladder.level(), DegradationLevel::RandomProbe);

        ladder.observe(DegradationLevel::FullAsap, 50);
        assert_eq!(ladder.recoveries, 1);
        assert!(!ladder.is_degraded());
        assert_eq!(ladder.last_change_ms, 50);
    }

    #[test]
    fn repeated_same_level_is_a_no_op() {
        let mut ladder = DegradationLadder::default();
        ladder.observe(DegradationLevel::RandomProbe, 5);
        let snapshot = ladder;
        ladder.observe(DegradationLevel::RandomProbe, 99);
        assert_eq!(ladder, snapshot);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(DegradationLevel::FullAsap.label(), "full_asap");
        assert_eq!(DegradationLevel::DirectOnly.label(), "direct_only");
    }
}
