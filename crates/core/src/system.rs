//! The ASAP node runtime: bootstrap tables, surrogate election and
//! failover, join and call flows, message accounting.

use std::collections::HashMap;
use std::sync::Arc;

use asap_cluster::{Asn, ClusterId};
use asap_netsim::faults::MessageDrops;
use asap_workload::{HostId, Scenario};
use parking_lot::Mutex;

use crate::close_set::{construct_close_cluster_set, CloseClusterSet, ClusterIndex};
use crate::config::AsapConfig;
use crate::select::{select_close_relay, CloseRelaySelection};

/// Counters of everything the system spent recovering from faults:
/// dropped control messages, crashed surrogates, dead mid-call relays.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Control requests that timed out (dropped request or reply).
    pub timeouts: u64,
    /// Requests re-sent after a timeout.
    pub retries: u64,
    /// Mid-call relay failovers performed.
    pub failovers: u64,
    /// Surrogate re-elections triggered by crashes or forced epochs.
    pub re_elections: u64,
    /// Cached close sets dropped because a referenced cluster's surrogate
    /// epoch advanced.
    pub cache_invalidations: u64,
    /// Messages spent purely on recovery: wasted request/reply pairs,
    /// re-election notifications, failover re-pings.
    pub recovery_messages: u64,
    /// Virtual milliseconds (the simulator's tick) spent waiting on
    /// retry backoff before requests got through.
    pub stabilization_ticks: u64,
}

/// Counters describing everything the system did since bootstrap.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SystemStats {
    /// Hosts that completed the join handshake.
    pub joins: u64,
    /// Calls placed.
    pub calls: u64,
    /// Calls that used the direct path (below `latT`).
    pub direct_calls: u64,
    /// Calls that ran `select-close-relay()`.
    pub relayed_calls: u64,
    /// Close cluster sets constructed by surrogates.
    pub close_sets_built: u64,
    /// Background messages spent constructing close sets (amortized, not
    /// per-session — §7.3 reports session overhead separately).
    pub construction_messages: u64,
    /// Per-session selection messages (the Fig. 18 quantity).
    pub session_messages: u64,
    /// Surrogate elections performed (bootstrap + failovers).
    pub elections: u64,
    /// Everything spent recovering from injected faults.
    pub recovery: RecoveryStats,
}

/// The outcome of one call placed through ASAP.
#[derive(Debug, Clone)]
pub struct CallOutcome {
    /// Direct-route RTT measured at call start, if routable.
    pub direct_rtt_ms: Option<f64>,
    /// Whether the call proceeded on the direct path.
    pub used_direct: bool,
    /// The relay selection, when one ran.
    pub selection: Option<CloseRelaySelection>,
    /// The relay host(s) actually picked, with the true RTT and loss of
    /// the resulting path (empty relays = direct path).
    pub chosen: Option<ChosenPath>,
    /// Messages this call spent: 2 for the direct ping, plus the
    /// selection messages.
    pub messages: u64,
}

/// The concrete path a call ends up using.
#[derive(Debug, Clone, PartialEq)]
pub struct ChosenPath {
    /// Relay hosts (empty = direct, one = one-hop, two = two-hop).
    pub relays: Vec<HostId>,
    /// True end-to-end RTT in milliseconds.
    pub rtt_ms: f64,
    /// True end-to-end loss probability.
    pub loss: f64,
}

/// The running ASAP system over a scenario.
///
/// Bootstrap responsibilities (§6.1) are precomputed: the prefix → ASN and
/// prefix → surrogate tables and the annotated AS graph (owned by the
/// scenario). Surrogates construct close cluster sets lazily and cache
/// them — in the deployed system this is continuous background work; in
/// the simulation laziness keeps experiments fast without changing any
/// observable result.
#[derive(Debug)]
pub struct AsapSystem<'a> {
    scenario: &'a Scenario,
    config: AsapConfig,
    index: ClusterIndex,
    /// Current surrogates of every cluster (indexed by `ClusterId.0`);
    /// first entry is the primary. Large clusters elect several (§6.3:
    /// "for a few large clusters containing close to 1,000 online end
    /// hosts, we can select multiple surrogates in them to share the
    /// possible heavy load").
    surrogates: Mutex<Vec<Vec<HostId>>>,
    /// Close-set requests served, indexed like `surrogates` (per-cluster,
    /// per-surrogate) — used to verify load sharing.
    surrogate_load: Mutex<std::collections::HashMap<(ClusterId, HostId), u64>>,
    /// Hosts marked offline (failed surrogates stay out of elections).
    offline: Mutex<Vec<bool>>,
    /// Per-cluster surrogate epoch: advanced on every re-election (or
    /// forced staleness), so cached close sets referencing the cluster
    /// can tell they are out of date.
    epochs: Mutex<Vec<u64>>,
    close_sets: Mutex<HashMap<ClusterId, CachedCloseSet>>,
    /// Injected control-message drop decider (None = healthy network).
    message_faults: Mutex<Option<MessageDrops>>,
    stats: Mutex<SystemStats>,
}

/// A cached close cluster set plus the surrogate epochs of every cluster
/// it references, snapshotted at construction time.
#[derive(Debug)]
struct CachedCloseSet {
    deps: Vec<(ClusterId, u64)>,
    set: Arc<CloseClusterSet>,
}

impl<'a> AsapSystem<'a> {
    /// Boots the system: builds the bootstrap tables and elects the most
    /// capable member of every cluster as its surrogate ("every surrogate
    /// is the most powerful and reliable VoIP end host in its cluster",
    /// §6.3).
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation.
    pub fn bootstrap(scenario: &'a Scenario, config: AsapConfig) -> Self {
        config.validate().expect("invalid ASAP configuration");
        let index = ClusterIndex::build(scenario);
        let offline = vec![false; scenario.population.hosts().len()];
        let cluster_count = scenario.population.clustering().cluster_count();
        let system = AsapSystem {
            scenario,
            config,
            index,
            surrogates: Mutex::new(Vec::new()),
            surrogate_load: Mutex::new(Default::default()),
            offline: Mutex::new(offline),
            epochs: Mutex::new(vec![0; cluster_count]),
            close_sets: Mutex::new(HashMap::new()),
            message_faults: Mutex::new(None),
            stats: Mutex::new(SystemStats::default()),
        };
        let clustering = scenario.population.clustering();
        let mut surrogates = Vec::with_capacity(clustering.cluster_count());
        for c in clustering.clusters() {
            surrogates.push(system.elect(c.id()));
        }
        *system.surrogates.lock() = surrogates;
        system
    }

    /// How many surrogates a cluster of `members` hosts elects: one per
    /// started block of [`AsapConfig::members_per_surrogate`] members.
    fn surrogate_count(&self, members: usize) -> usize {
        members.div_ceil(self.config.members_per_surrogate).max(1)
    }

    /// The scenario this system runs over.
    pub fn scenario(&self) -> &'a Scenario {
        self.scenario
    }

    /// The protocol configuration.
    pub fn config(&self) -> &AsapConfig {
        &self.config
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> SystemStats {
        *self.stats.lock()
    }

    /// The current primary surrogate of `cluster`.
    ///
    /// # Panics
    ///
    /// Panics if the cluster id is out of range.
    pub fn surrogate_of(&self, cluster: ClusterId) -> HostId {
        self.surrogates.lock()[cluster.0 as usize][0]
    }

    /// All current surrogates of `cluster` (large clusters elect several;
    /// §6.3).
    ///
    /// # Panics
    ///
    /// Panics if the cluster id is out of range.
    pub fn surrogates_of(&self, cluster: ClusterId) -> Vec<HostId> {
        self.surrogates.lock()[cluster.0 as usize].clone()
    }

    /// The surrogate of `cluster` that serves `requester`'s close-set
    /// request: requests are spread across the cluster's surrogates by
    /// requester hash, and the chosen surrogate's load counter is bumped.
    pub fn serving_surrogate(&self, cluster: ClusterId, requester: HostId) -> HostId {
        let surrogates = self.surrogates.lock();
        let list = &surrogates[cluster.0 as usize];
        let pick = list[(requester.0 as usize) % list.len()];
        drop(surrogates);
        *self
            .surrogate_load
            .lock()
            .entry((cluster, pick))
            .or_insert(0) += 1;
        pick
    }

    /// Close-set requests served so far by `surrogate` on behalf of
    /// `cluster`.
    pub fn surrogate_load(&self, cluster: ClusterId, surrogate: HostId) -> u64 {
        self.surrogate_load
            .lock()
            .get(&(cluster, surrogate))
            .copied()
            .unwrap_or(0)
    }

    /// Elects the best online members of `cluster`: highest nodal
    /// capability (discounted by access delay), ties to the lower host
    /// id; large clusters elect several surrogates.
    fn elect(&self, cluster: ClusterId) -> Vec<HostId> {
        let offline = self.offline.lock();
        let members = self.scenario.population.cluster_members(cluster);
        // Surrogates must be powerful *and* well connected: a capable host
        // behind a slow access link would make the whole cluster look far
        // in every close cluster set, so access delay discounts the score.
        let score = |h: HostId| {
            let host = self.scenario.population.host(h);
            host.nodal.capability() - host.access_ms / 100.0
        };
        let mut online: Vec<HostId> = members
            .iter()
            .copied()
            .filter(|h| !offline[h.0 as usize])
            .collect();
        if online.is_empty() {
            online = members.clone();
        }
        online.sort_by(|&a, &b| score(b).total_cmp(&score(a)).then(a.cmp(&b)));
        online.truncate(self.surrogate_count(members.len()));
        self.stats.lock().elections += 1;
        online
    }

    /// Whether `host` is currently online.
    pub fn is_online(&self, host: HostId) -> bool {
        !self.offline.lock()[host.0 as usize]
    }

    /// The current surrogate epoch of `cluster` (advances on every
    /// re-election or forced staleness).
    pub fn surrogate_epoch(&self, cluster: ClusterId) -> u64 {
        self.epochs.lock()[cluster.0 as usize]
    }

    /// Installs (or clears) an injected control-message drop decider.
    /// While set, close-set fetches may time out and go through the
    /// [`AsapConfig::retry`] schedule.
    pub fn set_message_faults(&self, faults: Option<MessageDrops>) {
        *self.message_faults.lock() = faults;
    }

    /// Handles a surrogate failure: marks the host offline, elects a
    /// replacement, and invalidates cached close sets (they may list the
    /// failed surrogate as a relay representative).
    pub fn fail_surrogate(&self, cluster: ClusterId) -> HostId {
        let old = self.surrogate_of(cluster);
        self.crash_host(old);
        self.surrogate_of(cluster)
    }

    /// An ungraceful host departure. If the host was serving as one of
    /// its cluster's surrogates, the cluster re-elects immediately, its
    /// surrogate epoch advances, and every cached close set referencing
    /// the cluster is dropped (instead of the sledgehammer of clearing
    /// the whole cache). Returns `true` when a re-election happened.
    pub fn crash_host(&self, host: HostId) -> bool {
        {
            let mut offline = self.offline.lock();
            if offline[host.0 as usize] {
                return false; // already down
            }
            offline[host.0 as usize] = true;
        }
        let cluster = self.scenario.population.cluster_of(host);
        if !self.surrogates.lock()[cluster.0 as usize].contains(&host) {
            return false;
        }
        let new = self.elect(cluster);
        self.surrogates.lock()[cluster.0 as usize] = new;
        self.bump_epoch(cluster);
        let members = self.scenario.population.cluster_members(cluster).len() as u64;
        let mut stats = self.stats.lock();
        stats.recovery.re_elections += 1;
        // Bootstrap notification (2 messages) plus one per member.
        stats.recovery.recovery_messages += 2 + members;
        true
    }

    /// Forces `cluster`'s close-set epoch stale — as if its surrogate set
    /// rotated — so every cached close set referencing it rebuilds on
    /// next use (the `StaleCloseSet` fault).
    pub fn expire_close_set(&self, cluster: ClusterId) {
        self.bump_epoch(cluster);
    }

    /// Advances `cluster`'s surrogate epoch and eagerly purges every
    /// cached close set that references it, so no stale entry can ever
    /// be served.
    fn bump_epoch(&self, cluster: ClusterId) {
        self.epochs.lock()[cluster.0 as usize] += 1;
        let mut cache = self.close_sets.lock();
        let before = cache.len();
        cache.retain(|_, c| c.deps.iter().all(|&(cl, _)| cl != cluster));
        let dropped = (before - cache.len()) as u64;
        drop(cache);
        if dropped > 0 {
            self.stats.lock().recovery.cache_invalidations += dropped;
        }
    }

    /// Whether every cached close set references only current-epoch
    /// surrogate sets (validation hook for the robustness tests: with
    /// eager purging this must hold at every moment).
    pub fn cache_epoch_consistent(&self) -> bool {
        let epochs = self.epochs.lock();
        self.close_sets
            .lock()
            .values()
            .all(|c| c.deps.iter().all(|&(cl, e)| epochs[cl.0 as usize] == e))
    }

    /// The join flow (steps 1–4 of Fig. 8): the host learns its ASN and
    /// surrogate from a bootstrap, then fetches its cluster's close
    /// cluster set. Returns `(ASN, surrogate)`. Costs 4 messages (2 per
    /// round trip).
    pub fn join(&self, host: HostId) -> (Asn, HostId) {
        let h = self.scenario.population.host(host);
        let cluster = self.scenario.population.cluster_of(host);
        let surrogate = self.serving_surrogate(cluster, host);
        let mut stats = self.stats.lock();
        stats.joins += 1;
        stats.session_messages += 4;
        (h.asn, surrogate)
    }

    /// The close cluster set of `cluster`, constructing and caching it if
    /// the surrogate has not built one yet (or if the cached copy went
    /// stale because a referenced cluster re-elected).
    pub fn close_set_of(&self, cluster: ClusterId) -> Arc<CloseClusterSet> {
        {
            let epochs = self.epochs.lock();
            let mut cache = self.close_sets.lock();
            if let Some(cached) = cache.get(&cluster) {
                if cached
                    .deps
                    .iter()
                    .all(|&(cl, e)| epochs[cl.0 as usize] == e)
                {
                    return Arc::clone(&cached.set);
                }
                // Defensive: eager purging should have removed it.
                cache.remove(&cluster);
                drop(cache);
                drop(epochs);
                self.stats.lock().recovery.cache_invalidations += 1;
            }
        }
        let surrogates: Vec<Vec<HostId>> = self.surrogates.lock().clone();
        let set = Arc::new(construct_close_cluster_set(
            self.scenario,
            &self.index,
            &|c: ClusterId| surrogates[c.0 as usize][0],
            cluster,
            &self.config,
        ));
        let mut stats = self.stats.lock();
        stats.close_sets_built += 1;
        stats.construction_messages += set.construction_messages;
        drop(stats);
        // Snapshot the epochs of every referenced cluster; the entry dies
        // with the first of them to advance.
        let epochs = self.epochs.lock();
        let mut deps = vec![(cluster, epochs[cluster.0 as usize])];
        for entry in set.entries() {
            deps.push((entry.cluster, epochs[entry.cluster.0 as usize]));
        }
        drop(epochs);
        self.close_sets.lock().entry(cluster).or_insert(CachedCloseSet {
            deps,
            set: Arc::clone(&set),
        });
        Arc::clone(&set)
    }

    /// Fetches a close cluster set over a possibly-faulty control plane:
    /// each request/reply round trip can be dropped by the injected
    /// [`MessageDrops`], in which case the requester times out, waits the
    /// [`AsapConfig::retry`] backoff, and re-sends — bounded by
    /// `max_retries`, after which it escalates to the cluster's replica
    /// surrogate out of band (modeled as succeeding). Returns the set
    /// plus the extra messages spent on dropped attempts.
    fn fetch_close_set_recovering(
        &self,
        cluster: ClusterId,
        requester: HostId,
    ) -> (Arc<CloseClusterSet>, u64) {
        let faults = *self.message_faults.lock();
        let Some(faults) = faults else {
            return (self.close_set_of(cluster), 0);
        };
        let retry = self.config.retry;
        let mut extra = 0u64;
        for attempt in 0..=retry.max_retries {
            let key = (u64::from(requester.0) << 34)
                ^ (u64::from(cluster.0) << 8)
                ^ u64::from(attempt);
            if !faults.drops(key) {
                return (self.close_set_of(cluster), extra);
            }
            extra += 2; // the wasted request/reply pair
            let mut stats = self.stats.lock();
            stats.recovery.timeouts += 1;
            stats.recovery.retries += 1;
            stats.recovery.recovery_messages += 2;
            stats.recovery.stabilization_ticks += retry.backoff_ms(attempt, key);
        }
        (self.close_set_of(cluster), extra)
    }

    /// Places a call (steps 5–10 of Fig. 8): ping the direct route; if it
    /// violates `latT`, run `select-close-relay()` and pick the most
    /// suitable relay(s).
    pub fn call(&self, caller: HostId, callee: HostId) -> CallOutcome {
        let mut messages = 2; // direct-route ping + reply
        let direct_rtt_ms = self.scenario.host_rtt_ms(caller, callee);
        let direct_loss = self.scenario.host_loss(caller, callee).unwrap_or(1.0);
        {
            let mut stats = self.stats.lock();
            stats.calls += 1;
        }

        if let Some(rtt) = direct_rtt_ms {
            if rtt < self.config.lat_t_ms {
                let mut stats = self.stats.lock();
                stats.direct_calls += 1;
                stats.session_messages += messages;
                return CallOutcome {
                    direct_rtt_ms,
                    used_direct: true,
                    selection: None,
                    chosen: Some(ChosenPath {
                        relays: Vec::new(),
                        rtt_ms: rtt,
                        loss: direct_loss,
                    }),
                    messages,
                };
            }
        }

        let caller_cluster = self.scenario.population.cluster_of(caller);
        let callee_cluster = self.scenario.population.cluster_of(callee);
        let (caller_set, extra1) = self.fetch_close_set_recovering(caller_cluster, caller);
        let (callee_set, extra2) = self.fetch_close_set_recovering(callee_cluster, caller);
        messages += extra1 + extra2;

        let clustering = self.scenario.population.clustering();
        let cluster_size = |c: ClusterId| clustering.cluster(c).len() as u64;
        let mut fetch = |c: ClusterId| (*self.close_set_of(c)).clone();
        let selection = select_close_relay(
            &caller_set,
            &callee_set,
            &self.config,
            &cluster_size,
            &mut fetch,
        );
        messages += selection.messages;

        // "Comprehensively considering" the candidates: evaluate the top
        // few by true path RTT (their surrogates' measurements are
        // estimates) and keep the best.
        let chosen = self.pick_best(caller, callee, &selection, &[]);

        let mut stats = self.stats.lock();
        stats.relayed_calls += 1;
        stats.session_messages += messages;
        drop(stats);

        CallOutcome {
            direct_rtt_ms,
            used_direct: false,
            selection: Some(selection),
            chosen,
            messages,
        }
    }

    /// Evaluates the top candidates of a selection against the true
    /// network and returns the best concrete path. Relays that are
    /// offline or explicitly `dead` (known-failed mid-call) are skipped.
    fn pick_best(
        &self,
        caller: HostId,
        callee: HostId,
        selection: &CloseRelaySelection,
        dead: &[HostId],
    ) -> Option<ChosenPath> {
        // All one-hop candidates are evaluated (their RTT estimates are
        // already on hand from the close sets, per the paper's
        // "comprehensively considering" step); two-hop pairs are capped —
        // they only matter when the one-hop set is thin anyway.
        let one_hop_scan = selection.one_hop.len();
        const TWO_HOP_SCAN: usize = 64;
        let mut best: Option<ChosenPath> = None;
        let mut consider = |candidate: Option<ChosenPath>| {
            if let Some(c) = candidate {
                let better = match &best {
                    Some(b) => c.rtt_ms < b.rtt_ms,
                    None => true,
                };
                if better {
                    best = Some(c);
                }
            }
        };

        // Unmeasured loss means unusable, not perfect: default to 1.0
        // everywhere, matching the direct-call site.
        for r in selection.one_hop.iter().take(one_hop_scan) {
            let relay = self.surrogate_of(r.cluster);
            if relay == caller
                || relay == callee
                || dead.contains(&relay)
                || !self.is_online(relay)
            {
                continue;
            }
            let path = self
                .scenario
                .one_hop_rtt_ms(caller, relay, callee)
                .map(|rtt| ChosenPath {
                    relays: vec![relay],
                    rtt_ms: rtt,
                    loss: self
                        .scenario
                        .one_hop_loss(caller, relay, callee)
                        .unwrap_or(1.0),
                });
            consider(path);
        }
        for t in selection.two_hop.iter().take(TWO_HOP_SCAN) {
            let (r1, r2) = (self.surrogate_of(t.first), self.surrogate_of(t.second));
            if r1 == r2 || [r1, r2].contains(&caller) || [r1, r2].contains(&callee) {
                continue;
            }
            if dead.contains(&r1)
                || dead.contains(&r2)
                || !self.is_online(r1)
                || !self.is_online(r2)
            {
                continue;
            }
            let path = self
                .scenario
                .two_hop_rtt_ms(caller, r1, r2, callee)
                .map(|rtt| {
                    let loss = {
                        let l1 = self.scenario.host_loss(caller, r1).unwrap_or(1.0);
                        let l2 = self.scenario.host_loss(r1, r2).unwrap_or(1.0);
                        let l3 = self.scenario.host_loss(r2, callee).unwrap_or(1.0);
                        1.0 - (1.0 - l1) * (1.0 - l2) * (1.0 - l3)
                    };
                    ChosenPath {
                        relays: vec![r1, r2],
                        rtt_ms: rtt,
                        loss,
                    }
                });
            consider(path);
        }
        best
    }

    /// Mid-call relay failover: the call's relay died, so re-pick from
    /// the *cached* candidate set (no new `select-close-relay()` run),
    /// skipping `dead` hosts and any cluster whose surrogates are all
    /// offline. Falls back to a two-hop pair, then to the direct path
    /// even above `latT` — a degraded call beats a dropped one. Returns
    /// `None` only when the pair is truly partitioned.
    pub fn failover_path(
        &self,
        caller: HostId,
        callee: HostId,
        selection: &CloseRelaySelection,
        dead: &[HostId],
    ) -> Option<ChosenPath> {
        // A cluster is only unusable when every surrogate is down — a
        // crash of the primary redirects `surrogate_of` to the re-elected
        // replacement automatically.
        let dead_clusters: Vec<ClusterId> = dead
            .iter()
            .map(|&h| self.scenario.population.cluster_of(h))
            .filter(|&c| self.surrogates_of(c).iter().all(|&s| !self.is_online(s)))
            .collect();
        let filtered = selection.excluding(&dead_clusters);
        let mut best = self.pick_best(caller, callee, &filtered, dead);
        if best.is_none() {
            if let Some(rtt) = self.scenario.host_rtt_ms(caller, callee) {
                best = Some(ChosenPath {
                    relays: Vec::new(),
                    rtt_ms: rtt,
                    loss: self.scenario.host_loss(caller, callee).unwrap_or(1.0),
                });
            }
        }
        let mut stats = self.stats.lock();
        stats.recovery.failovers += 1;
        // Re-ping of the replacement path.
        stats.recovery.recovery_messages += 2;
        stats.session_messages += 2;
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_workload::{sessions, ScenarioConfig};

    fn scenario() -> Scenario {
        Scenario::build(ScenarioConfig::tiny(), 21)
    }

    #[test]
    fn bootstrap_elects_most_capable_surrogates() {
        let s = scenario();
        let system = AsapSystem::bootstrap(&s, AsapConfig::default());
        let score = |h: HostId| {
            let host = s.population.host(h);
            host.nodal.capability() - host.access_ms / 100.0
        };
        for c in s.population.clustering().clusters() {
            let surrogate = system.surrogate_of(c.id());
            for m in s.population.cluster_members(c.id()) {
                assert!(
                    score(surrogate) >= score(m) - 1e-12,
                    "surrogate of {:?} is not the best-scoring member",
                    c.id()
                );
            }
        }
    }

    #[test]
    fn fast_direct_calls_skip_selection() {
        let s = scenario();
        let system = AsapSystem::bootstrap(&s, AsapConfig::default());
        // Find a fast pair.
        let fast = sessions::generate(&s.population, 200, 1)
            .into_iter()
            .find(|x| s.host_rtt_ms(x.caller, x.callee).is_some_and(|r| r < 150.0))
            .expect("some fast session exists");
        let out = system.call(fast.caller, fast.callee);
        assert!(out.used_direct);
        assert!(out.selection.is_none());
        assert_eq!(out.messages, 2);
        assert!(out.chosen.unwrap().relays.is_empty());
    }

    #[test]
    fn slow_calls_run_selection() {
        let s = scenario();
        let system = AsapSystem::bootstrap(&s, AsapConfig::default());
        let slow = sessions::generate(&s.population, 3000, 2)
            .into_iter()
            .find(|x| s.host_rtt_ms(x.caller, x.callee).is_some_and(|r| r > 300.0));
        let Some(slow) = slow else {
            return; // tiny worlds occasionally have no latent session
        };
        let out = system.call(slow.caller, slow.callee);
        assert!(!out.used_direct);
        let sel = out.selection.expect("selection ran");
        assert!(out.messages >= 4); // ping + 2 selection messages
        if let Some(chosen) = &out.chosen {
            assert!(!chosen.relays.is_empty());
            // The chosen relay really is a surrogate the selection named.
            let named: Vec<HostId> =
                sel.one_hop
                    .iter()
                    .map(|r| system.surrogate_of(r.cluster))
                    .chain(sel.two_hop.iter().flat_map(|t| {
                        [system.surrogate_of(t.first), system.surrogate_of(t.second)]
                    }))
                    .collect();
            for r in &chosen.relays {
                assert!(named.contains(r));
            }
        }
    }

    #[test]
    fn close_sets_are_cached() {
        let s = scenario();
        let system = AsapSystem::bootstrap(&s, AsapConfig::default());
        let c = s.population.clustering().clusters()[0].id();
        let a = system.close_set_of(c);
        let b = system.close_set_of(c);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(system.stats().close_sets_built, 1);
    }

    #[test]
    fn surrogate_failover_elects_someone_else_and_invalidates() {
        let s = scenario();
        let system = AsapSystem::bootstrap(&s, AsapConfig::default());
        // Pick a cluster with at least two members.
        let cluster = s
            .population
            .clustering()
            .clusters()
            .iter()
            .find(|c| c.len() >= 2)
            .expect("some multi-member cluster")
            .id();
        let _ = system.close_set_of(cluster);
        let old = system.surrogate_of(cluster);
        let new = system.fail_surrogate(cluster);
        assert_ne!(old, new, "failover must pick a different host");
        assert!(s.population.cluster_members(cluster).contains(&new));
        // Cache was invalidated: rebuilding bumps the counter.
        let built_before = system.stats().close_sets_built;
        let _ = system.close_set_of(cluster);
        assert_eq!(system.stats().close_sets_built, built_before + 1);
    }

    #[test]
    fn join_reports_asn_and_surrogate() {
        let s = scenario();
        let system = AsapSystem::bootstrap(&s, AsapConfig::default());
        let host = s.population.hosts()[5].id;
        let (asn, surrogate) = system.join(host);
        assert_eq!(asn, s.population.host(host).asn);
        let cluster = s.population.cluster_of(host);
        assert!(system.surrogates_of(cluster).contains(&surrogate));
        assert_eq!(system.stats().joins, 1);
    }

    #[test]
    fn large_clusters_elect_multiple_surrogates() {
        let s = scenario();
        let config = AsapConfig {
            members_per_surrogate: 3,
            ..Default::default()
        };
        let system = AsapSystem::bootstrap(&s, config);
        let big = s
            .population
            .clustering()
            .clusters()
            .iter()
            .find(|c| c.len() >= 7)
            .expect("some cluster with ≥7 members")
            .id();
        let surrogates = system.surrogates_of(big);
        let want = s.population.cluster_members(big).len().div_ceil(3);
        assert_eq!(surrogates.len(), want);
        // All surrogates are distinct members.
        let members = s.population.cluster_members(big);
        let mut dedup = surrogates.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), surrogates.len());
        assert!(surrogates.iter().all(|h| members.contains(h)));
    }

    #[test]
    fn close_set_requests_are_load_balanced() {
        let s = scenario();
        let config = AsapConfig {
            members_per_surrogate: 2,
            ..Default::default()
        };
        let system = AsapSystem::bootstrap(&s, config);
        let big = s
            .population
            .clustering()
            .clusters()
            .iter()
            .find(|c| c.len() >= 6)
            .expect("some cluster with ≥6 members")
            .id();
        let surrogates = system.surrogates_of(big);
        assert!(surrogates.len() >= 3);
        // Scale requests with the surrogate count so every surrogate is
        // reachable by the requester-hash spread regardless of cluster size.
        let requests = surrogates.len() as u32 * 10;
        for i in 0..requests {
            let _ = system.serving_surrogate(big, HostId(i));
        }
        for &sur in &surrogates {
            let load = system.surrogate_load(big, sur);
            assert!(load > 0, "surrogate {sur} served nothing");
            assert!(
                load <= requests as u64 / surrogates.len() as u64 + 1,
                "surrogate {sur} overloaded: {load}"
            );
        }
    }

    #[test]
    fn message_faults_cause_timeouts_but_calls_still_complete() {
        let s = scenario();
        let system = AsapSystem::bootstrap(&s, AsapConfig::default());
        system.set_message_faults(Some(asap_netsim::MessageDrops::new(0.9, 77)));
        let sessions = sessions::generate(&s.population, 200, 9);
        let mut relayed = 0;
        for sess in &sessions {
            let out = system.call(sess.caller, sess.callee);
            if !out.used_direct {
                relayed += 1;
            }
        }
        if relayed == 0 {
            return; // tiny worlds occasionally have no slow session
        }
        let rec = system.stats().recovery;
        // 90% drop probability over many fetches must hit some timeouts,
        // and every timeout is accounted as retries + messages + waiting.
        assert!(rec.timeouts > 0);
        assert_eq!(rec.retries, rec.timeouts);
        assert_eq!(rec.recovery_messages, rec.timeouts * 2);
        assert!(rec.stabilization_ticks > 0);
    }

    #[test]
    fn failover_avoids_dead_relay_and_offline_hosts() {
        let s = scenario();
        let system = AsapSystem::bootstrap(&s, AsapConfig::default());
        let slow = sessions::generate(&s.population, 3000, 2)
            .into_iter()
            .find(|x| s.host_rtt_ms(x.caller, x.callee).is_some_and(|r| r > 300.0));
        let Some(slow) = slow else {
            return; // tiny worlds occasionally have no latent session
        };
        let out = system.call(slow.caller, slow.callee);
        let Some(selection) = out.selection else {
            return;
        };
        let Some(chosen) = out.chosen else {
            return;
        };
        let Some(&dead_relay) = chosen.relays.first() else {
            return;
        };
        system.crash_host(dead_relay);
        let replacement =
            system.failover_path(slow.caller, slow.callee, &selection, &[dead_relay]);
        let path = replacement.expect("failover finds some path (direct at worst)");
        assert!(
            !path.relays.contains(&dead_relay),
            "failover re-picked the dead relay"
        );
        for r in &path.relays {
            assert!(system.is_online(*r), "failover picked an offline relay");
        }
        let rec = system.stats().recovery;
        assert_eq!(rec.failovers, 1);
        assert!(rec.recovery_messages >= 2);
    }

    #[test]
    fn crashing_non_surrogate_does_not_re_elect() {
        let s = scenario();
        let system = AsapSystem::bootstrap(&s, AsapConfig::default());
        let cluster = s
            .population
            .clustering()
            .clusters()
            .iter()
            .find(|c| c.len() >= 2)
            .expect("some multi-member cluster")
            .id();
        let surrogate = system.surrogate_of(cluster);
        let bystander = *s
            .population
            .cluster_members(cluster)
            .iter()
            .find(|&&h| h != surrogate)
            .unwrap();
        let epoch_before = system.surrogate_epoch(cluster);
        assert!(!system.crash_host(bystander));
        assert_eq!(system.surrogate_of(cluster), surrogate);
        assert_eq!(system.surrogate_epoch(cluster), epoch_before);
        assert!(!system.is_online(bystander));
        // Crashing the same host twice is a no-op.
        assert!(!system.crash_host(bystander));
    }

    #[test]
    fn epoch_bump_purges_dependent_cache_entries() {
        let s = scenario();
        let system = AsapSystem::bootstrap(&s, AsapConfig::default());
        let c = s.population.clustering().clusters()[0].id();
        let set = system.close_set_of(c);
        assert!(system.cache_epoch_consistent());
        // Expire some cluster the set references (or the home cluster).
        let target = set.entries().first().map_or(c, |e| e.cluster);
        system.expire_close_set(target);
        assert!(system.cache_epoch_consistent());
        assert!(system.stats().recovery.cache_invalidations >= 1);
        // Rebuild sees the new epoch and is consistent again.
        let _ = system.close_set_of(c);
        assert!(system.cache_epoch_consistent());
    }

    #[test]
    fn stats_accumulate() {
        let s = scenario();
        let system = AsapSystem::bootstrap(&s, AsapConfig::default());
        let sessions = sessions::generate(&s.population, 10, 3);
        for sess in &sessions {
            system.call(sess.caller, sess.callee);
        }
        let stats = system.stats();
        assert_eq!(stats.calls, 10);
        assert_eq!(stats.direct_calls + stats.relayed_calls, 10);
        assert!(stats.session_messages >= 20);
    }
}
