//! The ASAP node runtime: bootstrap tables, surrogate replica sets with
//! epoch-numbered warm handoff, phi-accrual liveness, the
//! graceful-degradation ladder, join and call flows, message accounting.
//!
//! # Failure model
//!
//! Two detection channels coexist, mirroring a real deployment:
//!
//! * **Announced departures** ([`AsapSystem::crash_host`],
//!   [`AsapSystem::fail_surrogate`]) — cluster-local peers notice the
//!   closed connection immediately, so the replica set reacts in the same
//!   step (warm handoff or cold re-election).
//! * **Silent failures** ([`AsapSystem::silent_crash`], AS partitions) —
//!   nothing announces them. The phi-accrual suspicion detector
//!   ([`asap_netsim::membership`]) accumulates evidence from missed
//!   heartbeats, and [`AsapSystem::membership_tick`] demotes replica
//!   members only once their verdict reaches [`Verdict::Dead`].
//!
//! Losing an active surrogate triggers an **epoch-numbered handoff**: if a
//! quorum of the replica set (active + standbys) is still usable, the best
//! standby is promoted in place — the cluster's epoch advances but cached
//! close sets referencing it are *refreshed*, not purged, because the
//! close-set content is cluster-level and relays are resolved through
//! `surrogate_of` at pick time. Without quorum the cluster falls back to a
//! cold re-election with the PR1 purge semantics.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use asap_cluster::{Asn, ClusterId};
use asap_netsim::capacity::{Admission, AdmissionQueue, RelaySlots, ShedCause, SlotVerdict};
use asap_netsim::faults::MessageDrops;
use asap_netsim::membership::{MembershipView, Verdict};
use asap_telemetry::{Counter, Gauge, HistogramHandle, LedgerScope, MessageKind, Telemetry};
use asap_workload::{HostId, Scenario};
use parking_lot::Mutex;

use crate::close_set::{
    construct_close_cluster_set, CacheLookup, CloseClusterSet, CloseSetCache, ClusterIndex,
};
use crate::config::AsapConfig;
use crate::ladder::{DegradationLadder, DegradationLevel};
use crate::select::{select_close_relay, CloseRelaySelection};

/// Counters of everything the system spent recovering from faults:
/// dropped control messages, crashed surrogates, dead mid-call relays,
/// degraded-mode service.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Control requests that timed out (dropped request or reply).
    pub timeouts: u64,
    /// Requests re-sent after a timeout.
    pub retries: u64,
    /// Mid-call relay failovers performed.
    pub failovers: u64,
    /// Cold surrogate re-elections (no usable quorum, or forced epochs).
    pub re_elections: u64,
    /// Cached close sets dropped because a referenced cluster's surrogate
    /// epoch advanced without a warm handoff.
    pub cache_invalidations: u64,
    /// Messages spent purely on recovery: wasted request/reply pairs,
    /// re-election notifications, quorum rounds, failover re-pings.
    pub recovery_messages: u64,
    /// Virtual milliseconds (the simulator's tick) spent waiting on
    /// retry backoff before requests got through.
    pub stabilization_ticks: u64,
    /// Warm standby promotions: an active surrogate was replaced by a
    /// quorum handoff without purging dependent close sets.
    pub warm_handoffs: u64,
    /// Surrogate losses where the surviving replica set had no usable
    /// quorum, forcing a cold re-election.
    pub quorum_failures: u64,
    /// Replica members declared dead by the suspicion detector (silent
    /// crashes and partitions caught via missed heartbeats).
    pub suspected_dead: u64,
    /// Ladder transitions to a more degraded service level.
    pub downgrades: u64,
    /// Ladder recoveries back to the full protocol.
    pub ladder_recoveries: u64,
    /// Calls served from a bounded-age cached close set because fresh
    /// fetches were impossible (the stale-close-set rung).
    pub stale_sets_served: u64,
    /// Calls that fell through to MIX-style random relay probing (no
    /// close set available at all).
    pub probe_fallbacks: u64,
    /// Calls forced onto the direct path above `latT` because even
    /// probing found no relay.
    pub forced_direct: u64,
}

impl RecoveryStats {
    /// Adds another shard's recovery counters into this one. Every
    /// field is a plain event count, so field-wise addition is the
    /// exact combine (associative and commutative).
    pub fn merge_from(&mut self, other: &RecoveryStats) {
        self.timeouts += other.timeouts;
        self.retries += other.retries;
        self.failovers += other.failovers;
        self.re_elections += other.re_elections;
        self.cache_invalidations += other.cache_invalidations;
        self.recovery_messages += other.recovery_messages;
        self.stabilization_ticks += other.stabilization_ticks;
        self.warm_handoffs += other.warm_handoffs;
        self.quorum_failures += other.quorum_failures;
        self.suspected_dead += other.suspected_dead;
        self.downgrades += other.downgrades;
        self.ladder_recoveries += other.ladder_recoveries;
        self.stale_sets_served += other.stale_sets_served;
        self.probe_fallbacks += other.probe_fallbacks;
        self.forced_direct += other.forced_direct;
    }
}

/// Counters of everything the capacity model did: admission verdicts on
/// close-set fetches, hedged fetch legs, load-aware relay spillovers,
/// and the surrogate-load high-water marks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverloadStats {
    /// Close-set fetches offered to admission control (every fetch that
    /// reached a usable surrogate, whether or not capacity is enabled).
    pub offered_fetches: u64,
    /// Fetches admitted with no queueing delay.
    pub admitted_fetches: u64,
    /// Fetches admitted after waiting in the surrogate's bounded queue.
    pub queued_fetches: u64,
    /// Total virtual milliseconds queued fetches waited for a service
    /// slot.
    pub queue_wait_ms: u64,
    /// Fetches shed because the surrogate's queue was full.
    pub shed_queue_full: u64,
    /// Fetches shed because the queueing delay would have exceeded the
    /// deadline.
    pub shed_deadline: u64,
    /// Deepest admission queue observed across all surrogates.
    pub max_queue_depth: u64,
    /// Hedge legs issued to standby replicas (queue delay or retry
    /// backoff crossed the hedge delay).
    pub hedged_fetches: u64,
    /// Hedge legs whose answer arrived first and served the fetch.
    pub hedge_wins: u64,
    /// Relay candidates skipped during path evaluation because every
    /// relay-call slot was occupied (the typed `Busy` verdict).
    pub relay_busy_skips: u64,
    /// Calls that spilled over to a later candidate after at least one
    /// busy skip.
    pub relay_spillovers: u64,
    /// Relay slot acquisitions that pushed a host over its limit (the
    /// runtime treats these like relay crashes and fails away).
    pub saturated_acquires: u64,
    /// Close-set requests actually served by surrogates (shed fetches
    /// never reach one, so they do not count).
    pub surrogate_requests: u64,
    /// Heaviest per-(cluster, surrogate) served-request load observed.
    pub hot_surrogate_load: u64,
}

impl OverloadStats {
    /// Fetches shed by admission control, for either cause.
    pub fn shed_fetches(&self) -> u64 {
        self.shed_queue_full + self.shed_deadline
    }

    /// The conservation invariant: every offered fetch is admitted,
    /// queued, or shed — none lost.
    pub fn accounted(&self) -> bool {
        self.offered_fetches == self.admitted_fetches + self.queued_fetches + self.shed_fetches()
    }

    /// Adds another shard's overload counters into this one. Event
    /// counts add; the two high-water marks (`max_queue_depth`,
    /// `hot_surrogate_load`) take the maximum — both combines are
    /// associative and commutative, so shard merge order cannot change
    /// the result.
    pub fn merge_from(&mut self, other: &OverloadStats) {
        self.offered_fetches += other.offered_fetches;
        self.admitted_fetches += other.admitted_fetches;
        self.queued_fetches += other.queued_fetches;
        self.queue_wait_ms += other.queue_wait_ms;
        self.shed_queue_full += other.shed_queue_full;
        self.shed_deadline += other.shed_deadline;
        self.max_queue_depth = self.max_queue_depth.max(other.max_queue_depth);
        self.hedged_fetches += other.hedged_fetches;
        self.hedge_wins += other.hedge_wins;
        self.relay_busy_skips += other.relay_busy_skips;
        self.relay_spillovers += other.relay_spillovers;
        self.saturated_acquires += other.saturated_acquires;
        self.surrogate_requests += other.surrogate_requests;
        self.hot_surrogate_load = self.hot_surrogate_load.max(other.hot_surrogate_load);
    }
}

/// Counters describing everything the system did since bootstrap.
/// Message costs are no longer counted here: every control message is
/// recorded, by [`MessageKind`], into the system's telemetry ledger
/// scope (see [`AsapSystem::ledger_scope`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SystemStats {
    /// Hosts that completed the join handshake.
    pub joins: u64,
    /// Calls placed.
    pub calls: u64,
    /// Calls that used the direct path (below `latT`).
    pub direct_calls: u64,
    /// Calls that ran `select-close-relay()` (or a degraded fallback).
    pub relayed_calls: u64,
    /// Close cluster sets constructed by surrogates.
    pub close_sets_built: u64,
    /// Close-set requests answered from the per-cluster memo.
    pub close_set_cache_hits: u64,
    /// Close-set requests that had to (re)build the set (absent or
    /// epoch-stale cache entries).
    pub close_set_cache_misses: u64,
    /// Surrogate elections performed (bootstrap + cold re-elections).
    pub elections: u64,
    /// Everything spent recovering from injected faults.
    pub recovery: RecoveryStats,
    /// Everything the capacity model did: admission verdicts, hedges,
    /// spillovers, surrogate-load high-water marks.
    pub overload: OverloadStats,
}

impl SystemStats {
    /// Adds another shard's counters into this one (counts add; the
    /// nested stats use their own merge rules).
    pub fn merge_from(&mut self, other: &SystemStats) {
        self.joins += other.joins;
        self.calls += other.calls;
        self.direct_calls += other.direct_calls;
        self.relayed_calls += other.relayed_calls;
        self.close_sets_built += other.close_sets_built;
        self.close_set_cache_hits += other.close_set_cache_hits;
        self.close_set_cache_misses += other.close_set_cache_misses;
        self.elections += other.elections;
        self.recovery.merge_from(&other.recovery);
        self.overload.merge_from(&other.overload);
    }
}

/// The outcome of one call placed through ASAP.
#[derive(Debug, Clone)]
pub struct CallOutcome {
    /// Direct-route RTT measured at call start, if routable.
    pub direct_rtt_ms: Option<f64>,
    /// Whether the call proceeded on the direct path because it was
    /// already below `latT`.
    pub used_direct: bool,
    /// The relay selection, when one ran.
    pub selection: Option<CloseRelaySelection>,
    /// The relay host(s) actually picked, with the true RTT and loss of
    /// the resulting path (empty relays = direct path).
    pub chosen: Option<ChosenPath>,
    /// Messages this call spent: 2 for the direct ping, plus the
    /// selection (or probing) messages.
    pub messages: u64,
    /// The service-ladder rung this call was served at.
    pub degradation: DegradationLevel,
    /// Whether admission control shed a close-set fetch of this call
    /// (the call was then served from the degraded rungs instead of
    /// failing).
    pub shed_by_overload: bool,
}

/// The outcome of one possibly-degraded, possibly-hedged close-set
/// fetch.
#[derive(Debug, Clone)]
pub struct FetchResult {
    /// The close set obtained, if any rung produced one.
    pub set: Option<Arc<CloseClusterSet>>,
    /// The service-ladder rung the set was obtained at.
    pub level: DegradationLevel,
    /// Extra messages spent on dropped attempts and hedge legs.
    pub extra_messages: u64,
    /// Whether admission control shed this fetch before it reached the
    /// surrogate.
    pub shed: bool,
}

/// The concrete path a call ends up using.
#[derive(Debug, Clone, PartialEq)]
pub struct ChosenPath {
    /// Relay hosts (empty = direct, one = one-hop, two = two-hop).
    pub relays: Vec<HostId>,
    /// True end-to-end RTT in milliseconds.
    pub rtt_ms: f64,
    /// True end-to-end loss probability.
    pub loss: f64,
}

/// A cluster's bootstrap replica set: the active surrogates serving
/// requests plus warm standbys ready for an epoch-numbered handoff.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplicaSet {
    /// Active surrogates (first entry is the primary; large clusters
    /// elect several, §6.3).
    pub active: Vec<HostId>,
    /// Standby surrogates kept warm behind the active set, best first.
    pub standbys: Vec<HostId>,
    /// Epoch number: advanced on every handoff or re-election.
    pub epoch: u64,
}

impl ReplicaSet {
    /// Every member of the replica set (actives then standbys).
    pub fn members(&self) -> Vec<HostId> {
        self.active
            .iter()
            .chain(self.standbys.iter())
            .copied()
            .collect()
    }

    /// Total replica-set size (actives + standbys).
    pub fn size(&self) -> usize {
        self.active.len() + self.standbys.len()
    }
}

/// What one membership sweep did: heartbeats delivered and active
/// surrogates demoted because the detector declared them dead.
#[derive(Debug, Clone, Default)]
pub struct MembershipTickReport {
    /// Heartbeats delivered to reachable monitored nodes.
    pub heartbeats: u64,
    /// Active surrogates demoted this sweep (callers should fail over
    /// any call still relayed through them).
    pub demoted: Vec<HostId>,
}

/// The running ASAP system over a scenario.
///
/// Bootstrap responsibilities (§6.1) are precomputed: the prefix → ASN and
/// prefix → surrogate tables and the annotated AS graph (owned by the
/// scenario). Surrogates construct close cluster sets lazily and cache
/// them — in the deployed system this is continuous background work; in
/// the simulation laziness keeps experiments fast without changing any
/// observable result.
#[derive(Debug)]
pub struct AsapSystem<'a> {
    scenario: &'a Scenario,
    config: AsapConfig,
    index: ClusterIndex,
    /// Per-cluster replica sets (indexed by `ClusterId.0`).
    replicas: Mutex<Vec<ReplicaSet>>,
    /// Close-set requests served, per (cluster, surrogate) — used to
    /// verify load sharing.
    surrogate_load: Mutex<std::collections::HashMap<(ClusterId, HostId), u64>>,
    /// Hosts marked offline (failed surrogates stay out of elections).
    offline: Mutex<Vec<bool>>,
    /// Memoized per-cluster close sets with epoch-snapshot invalidation
    /// (see [`CloseSetCache`] for the invalidation rules).
    close_sets: CloseSetCache,
    /// Injected control-message drop decider (None = healthy network).
    message_faults: Mutex<Option<MessageDrops>>,
    /// Phi-accrual liveness over every current and former replica member.
    membership: Mutex<MembershipView>,
    /// Per-cluster graceful-degradation ladder state.
    ladders: Mutex<Vec<DegradationLadder>>,
    /// Per-(cluster, surrogate) admission queues: the virtual-service-
    /// clock request budget with its bounded, deadline-aware queue.
    admissions: Mutex<BTreeMap<(ClusterId, HostId), AdmissionQueue>>,
    /// Per-host relay-call slot occupancy (`None` when the capacity
    /// model is disabled).
    relay_slots: Option<Mutex<RelaySlots>>,
    /// Registry handles for the overload counters.
    overload_meters: OverloadMeters,
    /// Registry mirrors of the close-set cache hit/miss counters.
    cache_meters: CacheMeters,
    /// ASNs currently cut off by an AS partition (hosts intact but
    /// silent to the outside).
    partitioned: Mutex<BTreeSet<u32>>,
    /// Monotonic virtual clock, advanced by the event-driven runtime.
    clock_ms: Mutex<u64>,
    stats: Mutex<SystemStats>,
    /// Shared telemetry context (registry + ledger + spans).
    telemetry: Telemetry,
    /// Per-session protocol messages, by kind (the Fig. 18 quantity).
    scope: LedgerScope,
    /// Amortized close-set construction messages, kept in a sibling
    /// scope so the per-session numbers stay clean (§7.3 reports them
    /// separately).
    construction_scope: LedgerScope,
    /// End-to-end RTT of every path a call actually got.
    call_rtt: HistogramHandle,
}

/// Registry mirror counters for the close-set cache, so cache
/// effectiveness shows up in `--metrics-out` snapshots next to the
/// authoritative [`CloseSetCache`] atomics.
#[derive(Debug)]
struct CacheMeters {
    hits: Counter,
    misses: Counter,
}

impl CacheMeters {
    fn new(telemetry: &Telemetry, scope_name: &str) -> Self {
        let registry = telemetry.registry();
        CacheMeters {
            hits: registry.counter(&format!("{scope_name}.cache.close_set.hits")),
            misses: registry.counter(&format!("{scope_name}.cache.close_set.misses")),
        }
    }
}

/// Registry handles for the overload counters, created once at
/// bootstrap so the admission/hedge hot paths never re-lock the
/// registry.
#[derive(Debug)]
struct OverloadMeters {
    offered: Counter,
    admitted: Counter,
    queued: Counter,
    shed_queue_full: Counter,
    shed_deadline: Counter,
    hedged: Counter,
    hedge_wins: Counter,
    busy_skips: Counter,
    spillovers: Counter,
    saturated: Counter,
    surrogate_requests: Counter,
    max_queue_depth: Gauge,
    hot_surrogate: Gauge,
}

impl OverloadMeters {
    fn new(telemetry: &Telemetry, scope_name: &str) -> Self {
        let registry = telemetry.registry();
        let counter = |name: &str| registry.counter(&format!("{scope_name}.{name}"));
        let gauge = |name: &str| registry.gauge(&format!("{scope_name}.{name}"));
        OverloadMeters {
            offered: counter("admission.offered"),
            admitted: counter("admission.admitted"),
            queued: counter("admission.queued"),
            shed_queue_full: counter("admission.shed_queue_full"),
            shed_deadline: counter("admission.shed_deadline"),
            hedged: counter("hedge.sent"),
            hedge_wins: counter("hedge.wins"),
            busy_skips: counter("relay.busy_skips"),
            spillovers: counter("relay.spillovers"),
            saturated: counter("relay.saturated_acquires"),
            surrogate_requests: counter("surrogate.requests"),
            max_queue_depth: gauge("admission.max_queue_depth"),
            hot_surrogate: gauge("surrogate.hot_load"),
        }
    }
}

/// SplitMix64 finalizer: the deterministic hash behind MIX-style probing.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl<'a> AsapSystem<'a> {
    /// Boots the system: builds the bootstrap tables and elects each
    /// cluster's replica set — the most capable members as active
    /// surrogates ("every surrogate is the most powerful and reliable
    /// VoIP end host in its cluster", §6.3) plus warm standbys. Every
    /// replica member starts monitored with a heartbeat at t=0.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation.
    pub fn bootstrap(scenario: &'a Scenario, config: AsapConfig) -> Self {
        Self::bootstrap_scoped(scenario, config, &Telemetry::new(), "ASAP")
    }

    /// Boots the system recording into `telemetry` under the ledger
    /// scope `scope_name` (and `"<scope_name>.construction"` for the
    /// amortized close-set construction messages). Several systems can
    /// share one telemetry context under distinct scope names — e.g.
    /// `"ASAP@small"` / `"ASAP@large"` in a scalability sweep.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation.
    pub fn bootstrap_scoped(
        scenario: &'a Scenario,
        config: AsapConfig,
        telemetry: &Telemetry,
        scope_name: &str,
    ) -> Self {
        config.validate().expect("invalid ASAP configuration");
        let index = ClusterIndex::build(scenario);
        let offline = vec![false; scenario.population.hosts().len()];
        let cluster_count = scenario.population.clustering().cluster_count();
        let relay_slots = config.capacity.enabled.then(|| {
            Mutex::new(RelaySlots::new(
                &config.capacity,
                scenario
                    .population
                    .hosts()
                    .iter()
                    .map(|h| h.nodal.capability()),
            ))
        });
        let system = AsapSystem {
            scenario,
            config,
            index,
            replicas: Mutex::new(Vec::new()),
            surrogate_load: Mutex::new(Default::default()),
            offline: Mutex::new(offline),
            close_sets: CloseSetCache::new(),
            message_faults: Mutex::new(None),
            membership: Mutex::new(MembershipView::new(config.membership.suspicion)),
            ladders: Mutex::new(vec![DegradationLadder::default(); cluster_count]),
            admissions: Mutex::new(BTreeMap::new()),
            relay_slots,
            overload_meters: OverloadMeters::new(telemetry, scope_name),
            cache_meters: CacheMeters::new(telemetry, scope_name),
            partitioned: Mutex::new(BTreeSet::new()),
            clock_ms: Mutex::new(0),
            stats: Mutex::new(SystemStats::default()),
            telemetry: telemetry.clone(),
            scope: telemetry.ledger().scope(scope_name),
            construction_scope: telemetry
                .ledger()
                .scope(&format!("{scope_name}.construction")),
            call_rtt: telemetry
                .registry()
                .histogram(&format!("{scope_name}.call.rtt_ms")),
        };
        let clustering = scenario.population.clustering();
        let mut replicas = Vec::with_capacity(clustering.cluster_count());
        for c in clustering.clusters() {
            replicas.push(system.elect_split(c.id(), &[]));
        }
        *system.replicas.lock() = replicas;
        let members: Vec<u32> = system
            .replicas
            .lock()
            .iter()
            .flat_map(|r| r.members())
            .map(|h| h.0)
            .collect();
        let mut view = system.membership.lock();
        for m in members {
            view.heartbeat(m, 0);
        }
        drop(view);
        system
    }

    /// How many surrogates a cluster of `members` hosts elects: one per
    /// started block of [`AsapConfig::members_per_surrogate`] members.
    fn surrogate_count(&self, members: usize) -> usize {
        members.div_ceil(self.config.members_per_surrogate).max(1)
    }

    /// The scenario this system runs over.
    pub fn scenario(&self) -> &'a Scenario {
        self.scenario
    }

    /// The protocol configuration.
    pub fn config(&self) -> &AsapConfig {
        &self.config
    }

    /// A snapshot of the counters (close-set cache hit/miss counts are
    /// read from the cache's own atomics at snapshot time).
    pub fn stats(&self) -> SystemStats {
        let mut stats = *self.stats.lock();
        let (hits, misses) = self.close_sets.stats();
        stats.close_set_cache_hits = hits;
        stats.close_set_cache_misses = misses;
        stats
    }

    /// The telemetry context this system records into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The ledger scope holding this system's per-session protocol
    /// messages, by [`MessageKind`].
    pub fn ledger_scope(&self) -> &LedgerScope {
        &self.scope
    }

    /// The sibling scope holding the amortized close-set construction
    /// messages (kept out of the per-session numbers, per §7.3).
    pub fn construction_scope(&self) -> &LedgerScope {
        &self.construction_scope
    }

    /// Advances the monotonic virtual clock (late values are ignored).
    pub fn advance_to(&self, now_ms: u64) {
        let mut clock = self.clock_ms.lock();
        *clock = (*clock).max(now_ms);
    }

    /// The current virtual time in milliseconds.
    pub fn now_ms(&self) -> u64 {
        *self.clock_ms.lock()
    }

    /// The current primary surrogate of `cluster`.
    ///
    /// # Panics
    ///
    /// Panics if the cluster id is out of range.
    pub fn surrogate_of(&self, cluster: ClusterId) -> HostId {
        self.replicas.lock()[cluster.0 as usize].active[0]
    }

    /// All current active surrogates of `cluster` (large clusters elect
    /// several; §6.3).
    ///
    /// # Panics
    ///
    /// Panics if the cluster id is out of range.
    pub fn surrogates_of(&self, cluster: ClusterId) -> Vec<HostId> {
        self.replicas.lock()[cluster.0 as usize].active.clone()
    }

    /// The current warm standbys of `cluster`, best first.
    pub fn standbys_of(&self, cluster: ClusterId) -> Vec<HostId> {
        self.replicas.lock()[cluster.0 as usize].standbys.clone()
    }

    /// A snapshot of `cluster`'s full replica set.
    pub fn replica_set_of(&self, cluster: ClusterId) -> ReplicaSet {
        self.replicas.lock()[cluster.0 as usize].clone()
    }

    /// The surrogate of `cluster` that serves `requester`'s close-set
    /// request: requests are spread across the cluster's usable
    /// surrogates by requester hash, and the chosen surrogate's load
    /// counter is bumped.
    pub fn serving_surrogate(&self, cluster: ClusterId, requester: HostId) -> HostId {
        let pick = self.route_surrogate(cluster, requester);
        self.record_surrogate_load(cluster, pick);
        pick
    }

    /// The surrogate `requester`'s request would route to, without
    /// bumping any load counter — admission control must know the
    /// target before deciding whether the request is served at all.
    fn route_surrogate(&self, cluster: ClusterId, requester: HostId) -> HostId {
        let actives = self.surrogates_of(cluster);
        let usable: Vec<HostId> = actives
            .iter()
            .copied()
            .filter(|&h| self.host_usable(h))
            .collect();
        let pool = if usable.is_empty() { &actives } else { &usable };
        pool[(requester.0 as usize) % pool.len()]
    }

    /// Bumps `surrogate`'s served-request counter. Only *served*
    /// requests count — shed fetches never reach the surrogate, which
    /// is exactly the load relief the admission queue buys.
    fn record_surrogate_load(&self, cluster: ClusterId, surrogate: HostId) {
        let served = {
            let mut load = self.surrogate_load.lock();
            let entry = load.entry((cluster, surrogate)).or_insert(0);
            *entry += 1;
            *entry
        };
        self.overload_meters.surrogate_requests.inc();
        let mut stats = self.stats.lock();
        stats.overload.surrogate_requests += 1;
        stats.overload.hot_surrogate_load = stats.overload.hot_surrogate_load.max(served);
        drop(stats);
        let gauge = &self.overload_meters.hot_surrogate;
        if served as i64 > gauge.get() {
            gauge.set(served as i64);
        }
    }

    /// Close-set requests served so far by `surrogate` on behalf of
    /// `cluster`.
    pub fn surrogate_load(&self, cluster: ClusterId, surrogate: HostId) -> u64 {
        self.surrogate_load
            .lock()
            .get(&(cluster, surrogate))
            .copied()
            .unwrap_or(0)
    }

    /// The heaviest per-(cluster, surrogate) served-request load so far
    /// — the hot-surrogate number the overload bench guards.
    pub fn hot_surrogate_load(&self) -> u64 {
        self.surrogate_load
            .lock()
            .values()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Runs `surrogate`'s admission control for one close-set request
    /// at the current virtual time. With the capacity model disabled
    /// every request is admitted immediately, but the offer is still
    /// counted so the conservation invariant (offered = admitted +
    /// queued + shed) holds in both modes.
    fn admit_request(&self, cluster: ClusterId, surrogate: HostId) -> Admission {
        let meters = &self.overload_meters;
        if !self.config.capacity.enabled {
            let mut stats = self.stats.lock();
            stats.overload.offered_fetches += 1;
            stats.overload.admitted_fetches += 1;
            drop(stats);
            meters.offered.inc();
            meters.admitted.inc();
            return Admission::Admit {
                waited_ms: 0,
                depth: 0,
            };
        }
        let now = self.now_ms();
        let (verdict, max_depth) = {
            let mut queues = self.admissions.lock();
            let queue = queues
                .entry((cluster, surrogate))
                .or_insert_with(|| AdmissionQueue::new(&self.config.capacity));
            (queue.offer(now), queue.max_depth())
        };
        meters.offered.inc();
        let mut stats = self.stats.lock();
        let overload = &mut stats.overload;
        overload.offered_fetches += 1;
        overload.max_queue_depth = overload.max_queue_depth.max(u64::from(max_depth));
        match verdict {
            Admission::Admit { waited_ms: 0, .. } => {
                overload.admitted_fetches += 1;
                drop(stats);
                meters.admitted.inc();
            }
            Admission::Admit { waited_ms, .. } => {
                overload.queued_fetches += 1;
                overload.queue_wait_ms += waited_ms;
                drop(stats);
                meters.queued.inc();
            }
            Admission::Shed(ShedCause::QueueFull) => {
                overload.shed_queue_full += 1;
                drop(stats);
                meters.shed_queue_full.inc();
            }
            Admission::Shed(ShedCause::DeadlineExceeded) => {
                overload.shed_deadline += 1;
                drop(stats);
                meters.shed_deadline.inc();
            }
        }
        if i64::from(max_depth) > meters.max_queue_depth.get() {
            meters.max_queue_depth.set(i64::from(max_depth));
        }
        verdict
    }

    /// Elects a fresh replica set for `cluster`: highest nodal capability
    /// (discounted by access delay), ties to the lower host id. Prefers
    /// usable members, then merely-online ones, then anyone; `exclude`
    /// is kept out unless it would empty every pool. The returned epoch
    /// is 0 — callers continuing an existing cluster must set it.
    fn elect_split(&self, cluster: ClusterId, exclude: &[HostId]) -> ReplicaSet {
        let members = self.scenario.population.cluster_members(cluster);
        // Surrogates must be powerful *and* well connected: a capable host
        // behind a slow access link would make the whole cluster look far
        // in every close cluster set, so access delay discounts the score.
        let score = |h: HostId| {
            let host = self.scenario.population.host(h);
            host.nodal.capability() - host.access_ms / 100.0
        };
        let pick_pool = |pred: &dyn Fn(HostId) -> bool| -> Vec<HostId> {
            members
                .iter()
                .copied()
                .filter(|&h| !exclude.contains(&h) && pred(h))
                .collect()
        };
        let mut pool = pick_pool(&|h| self.host_usable(h));
        if pool.is_empty() {
            pool = pick_pool(&|h| self.is_online(h));
        }
        if pool.is_empty() {
            pool = pick_pool(&|_| true);
        }
        if pool.is_empty() {
            pool = members.clone();
        }
        pool.sort_by(|&a, &b| score(b).total_cmp(&score(a)).then(a.cmp(&b)));
        let actives_n = self.surrogate_count(members.len());
        let active: Vec<HostId> = pool.iter().copied().take(actives_n).collect();
        let standbys: Vec<HostId> = pool
            .iter()
            .copied()
            .skip(actives_n)
            .take(self.config.membership.standbys)
            .collect();
        self.stats.lock().elections += 1;
        ReplicaSet {
            active,
            standbys,
            epoch: 0,
        }
    }

    /// Whether `host` is currently online.
    pub fn is_online(&self, host: HostId) -> bool {
        !self.offline.lock()[host.0 as usize]
    }

    /// Physical reachability: online and not behind an AS partition.
    fn host_reachable(&self, host: HostId) -> bool {
        if self.offline.lock()[host.0 as usize] {
            return false;
        }
        let asn = self.scenario.population.host(host).asn.0;
        !self.partitioned.lock().contains(&asn)
    }

    /// Whether the system would route through `host`: physically
    /// reachable (a setup ping would answer) *and* not declared dead by
    /// the suspicion detector.
    pub fn host_usable(&self, host: HostId) -> bool {
        self.host_reachable(host) && self.relay_verdict(host) != Verdict::Dead
    }

    /// The suspicion verdict on `host` at the current virtual time
    /// (unmonitored hosts are [`Verdict::Alive`]).
    pub fn relay_verdict(&self, host: HostId) -> Verdict {
        let now = self.now_ms();
        self.membership.lock().verdict(host.0, now)
    }

    /// Whether `cluster`'s control plane can answer a close-set request:
    /// at least one active surrogate is usable.
    pub fn cluster_control_usable(&self, cluster: ClusterId) -> bool {
        let actives = self.surrogates_of(cluster);
        actives.iter().any(|&h| self.host_usable(h))
    }

    /// The current surrogate epoch of `cluster` (advances on every
    /// handoff, re-election, or forced staleness).
    pub fn surrogate_epoch(&self, cluster: ClusterId) -> u64 {
        self.replicas.lock()[cluster.0 as usize].epoch
    }

    /// The ladder state of `cluster` (for soak-harness assertions).
    pub fn ladder_of(&self, cluster: ClusterId) -> DegradationLadder {
        self.ladders.lock()[cluster.0 as usize]
    }

    /// Cuts `asn` off: its hosts stay up but no traffic crosses the
    /// partition, so heartbeats stop and fetches into it fail.
    pub fn partition_as(&self, asn: u32) {
        self.partitioned.lock().insert(asn);
    }

    /// Heals a partition: traffic (and heartbeats) flow again.
    pub fn heal_as(&self, asn: u32) {
        self.partitioned.lock().remove(&asn);
    }

    /// Whether `asn` is currently partitioned.
    pub fn is_partitioned(&self, asn: u32) -> bool {
        self.partitioned.lock().contains(&asn)
    }

    /// Installs (or clears) an injected control-message drop decider.
    /// While set, close-set fetches may time out and go through the
    /// [`AsapConfig::retry`] schedule.
    pub fn set_message_faults(&self, faults: Option<MessageDrops>) {
        *self.message_faults.lock() = faults;
    }

    /// Handles an announced primary-surrogate failure: marks the host
    /// offline and hands off (or re-elects). Returns the new primary.
    pub fn fail_surrogate(&self, cluster: ClusterId) -> HostId {
        let old = self.surrogate_of(cluster);
        self.crash_host(old);
        self.surrogate_of(cluster)
    }

    /// An *announced* ungraceful departure: cluster peers notice the
    /// closed connection immediately. An active surrogate triggers a
    /// quorum handoff (warm when possible, cold re-election otherwise);
    /// a standby is replaced in place. Returns `true` when the active
    /// surrogate set changed.
    pub fn crash_host(&self, host: HostId) -> bool {
        if !self.mark_offline(host) {
            return false; // already down
        }
        let cluster = self.scenario.population.cluster_of(host);
        let (is_active, is_standby) = {
            let replicas = self.replicas.lock();
            let rs = &replicas[cluster.0 as usize];
            (rs.active.contains(&host), rs.standbys.contains(&host))
        };
        if is_active {
            self.handle_surrogate_loss(cluster, host);
            true
        } else {
            if is_standby {
                self.replicas.lock()[cluster.0 as usize]
                    .standbys
                    .retain(|&h| h != host);
                self.backfill_standbys(cluster);
            }
            false
        }
    }

    /// A *silent* crash: the host dies without anyone noticing. Replica
    /// roles it held are only recovered once the suspicion detector
    /// declares it dead at a later [`AsapSystem::membership_tick`].
    /// Returns `true` when the host held an active surrogate role.
    pub fn silent_crash(&self, host: HostId) -> bool {
        if !self.mark_offline(host) {
            return false;
        }
        let cluster = self.scenario.population.cluster_of(host);
        self.replicas.lock()[cluster.0 as usize]
            .active
            .contains(&host)
    }

    /// Marks `host` offline; `false` if it already was.
    fn mark_offline(&self, host: HostId) -> bool {
        let mut offline = self.offline.lock();
        if offline[host.0 as usize] {
            return false;
        }
        offline[host.0 as usize] = true;
        true
    }

    /// Replaces the lost active surrogate `lost` of `cluster`. With a
    /// usable quorum of the replica set (survivors × 2 ≥ set size) and a
    /// usable standby, the standby is promoted warm: the epoch advances
    /// but cached close sets are refreshed in place. Otherwise the
    /// cluster cold-re-elects and dependent cache entries are purged.
    fn handle_surrogate_loss(&self, cluster: ClusterId, lost: HostId) {
        let (set_size, slot, survivors) = {
            let replicas = self.replicas.lock();
            let rs = &replicas[cluster.0 as usize];
            let members = rs.members();
            (
                members.len(),
                rs.active.iter().position(|&h| h == lost),
                members
                    .into_iter()
                    .filter(|&h| h != lost)
                    .collect::<Vec<_>>(),
            )
        };
        let Some(slot) = slot else {
            return; // not an active surrogate (already demoted)
        };
        let usable: Vec<HostId> = survivors
            .iter()
            .copied()
            .filter(|&h| self.host_usable(h))
            .collect();
        let quorum = usable.len() * 2 >= set_size;
        let promoted = {
            let replicas = self.replicas.lock();
            let standbys = &replicas[cluster.0 as usize].standbys;
            usable.iter().copied().find(|h| standbys.contains(h))
        };
        if let (true, Some(promoted)) = (quorum, promoted) {
            let epoch = {
                let mut replicas = self.replicas.lock();
                let rs = &mut replicas[cluster.0 as usize];
                rs.active[slot] = promoted;
                rs.standbys.retain(|&h| h != promoted);
                rs.epoch += 1;
                rs.epoch
            };
            self.refresh_epoch(cluster, epoch);
            self.backfill_standbys(cluster);
            let mut stats = self.stats.lock();
            stats.recovery.warm_handoffs += 1;
            // One quorum round among the replica set plus the bootstrap
            // notification.
            stats.recovery.recovery_messages += 2 + set_size as u64;
            drop(stats);
            self.scope
                .record_for_cluster(cluster.0, MessageKind::Handoff, 2 + set_size as u64);
        } else {
            let mut fresh = self.elect_split(cluster, &[lost]);
            let new_members = fresh.members();
            {
                let mut replicas = self.replicas.lock();
                fresh.epoch = replicas[cluster.0 as usize].epoch + 1;
                replicas[cluster.0 as usize] = fresh;
            }
            self.purge_referencing(cluster);
            {
                let mut view = self.membership.lock();
                for h in new_members {
                    view.watch(h.0);
                }
            }
            let members = self.scenario.population.cluster_members(cluster).len() as u64;
            let mut stats = self.stats.lock();
            stats.recovery.re_elections += 1;
            if !quorum {
                stats.recovery.quorum_failures += 1;
            }
            // Bootstrap notification (2 messages) plus one per member.
            stats.recovery.recovery_messages += 2 + members;
            drop(stats);
            self.scope
                .record_for_cluster(cluster.0, MessageKind::Election, 2 + members);
        }
    }

    /// Tops the standby list back up to the configured size with the
    /// best usable members not already in the replica set.
    fn backfill_standbys(&self, cluster: ClusterId) {
        let want = self.config.membership.standbys;
        let score = |h: HostId| {
            let host = self.scenario.population.host(h);
            host.nodal.capability() - host.access_ms / 100.0
        };
        loop {
            let (current, have) = {
                let replicas = self.replicas.lock();
                let rs = &replicas[cluster.0 as usize];
                (rs.members(), rs.standbys.len())
            };
            if have >= want {
                return;
            }
            let candidate = self
                .scenario
                .population
                .cluster_members(cluster)
                .iter()
                .copied()
                .filter(|h| !current.contains(h) && self.host_usable(*h))
                .max_by(|&a, &b| score(a).total_cmp(&score(b)).then(b.cmp(&a)));
            let Some(candidate) = candidate else {
                return; // nobody left to recruit
            };
            self.replicas.lock()[cluster.0 as usize]
                .standbys
                .push(candidate);
            self.membership.lock().watch(candidate.0);
        }
    }

    /// One membership sweep at `now_ms`: every reachable monitored node
    /// heartbeats, then active surrogates (and lingering standbys) whose
    /// verdict is [`Verdict::Dead`] are demoted/replaced — unless the
    /// whole cluster has no usable member, in which case the current set
    /// is kept rather than churning pointless elections.
    pub fn membership_tick(&self, now_ms: u64) -> MembershipTickReport {
        self.advance_to(now_ms);
        let watched = self.membership.lock().watched();
        let mut heartbeats = 0u64;
        for id in watched {
            if self.host_reachable(HostId(id)) {
                self.membership.lock().heartbeat(id, now_ms);
                self.scope.record_for_node(id, MessageKind::Heartbeat, 1);
                heartbeats += 1;
            }
        }
        let cluster_count = self.replicas.lock().len();
        let mut demoted = Vec::new();
        for c in 0..cluster_count {
            let cluster = ClusterId(c as u32);
            let (dead_active, dead_standby) = {
                let replicas = self.replicas.lock();
                let view = self.membership.lock();
                let rs = &replicas[c];
                let dead = |h: &&HostId| view.verdict(h.0, now_ms) == Verdict::Dead;
                (
                    rs.active.iter().filter(dead).copied().collect::<Vec<_>>(),
                    rs.standbys.iter().filter(dead).copied().collect::<Vec<_>>(),
                )
            };
            if dead_active.is_empty() && dead_standby.is_empty() {
                continue;
            }
            let members = self.scenario.population.cluster_members(cluster);
            if !members.iter().any(|&h| self.host_usable(h)) {
                continue; // nothing better to promote
            }
            for h in dead_active {
                if !self.replicas.lock()[c].active.contains(&h) {
                    continue; // a cold re-election already replaced it
                }
                self.stats.lock().recovery.suspected_dead += 1;
                self.handle_surrogate_loss(cluster, h);
                demoted.push(h);
            }
            let lingering: Vec<HostId> = {
                let replicas = self.replicas.lock();
                dead_standby
                    .iter()
                    .copied()
                    .filter(|h| replicas[c].standbys.contains(h))
                    .collect()
            };
            if !lingering.is_empty() {
                self.stats.lock().recovery.suspected_dead += lingering.len() as u64;
                self.replicas.lock()[c]
                    .standbys
                    .retain(|h| !lingering.contains(h));
                self.backfill_standbys(cluster);
            }
        }
        MembershipTickReport {
            heartbeats,
            demoted,
        }
    }

    /// Forces `cluster`'s close-set epoch stale — as if its surrogate set
    /// rotated without a handoff — so every cached close set referencing
    /// it rebuilds on next use (the `StaleCloseSet` fault).
    pub fn expire_close_set(&self, cluster: ClusterId) {
        self.replicas.lock()[cluster.0 as usize].epoch += 1;
        self.purge_referencing(cluster);
    }

    /// Warm handoff bookkeeping: cached close sets referencing `cluster`
    /// adopt the new epoch in place. The content stays valid because
    /// close sets are cluster-level and relays resolve through
    /// `surrogate_of` at pick time.
    fn refresh_epoch(&self, cluster: ClusterId, epoch: u64) {
        self.close_sets.refresh_epoch(cluster, epoch);
    }

    /// Eagerly purges every cached close set that references `cluster`,
    /// so no stale entry can ever be served after a cold epoch change.
    fn purge_referencing(&self, cluster: ClusterId) {
        let dropped = self.close_sets.purge_referencing(cluster);
        if dropped > 0 {
            self.stats.lock().recovery.cache_invalidations += dropped;
        }
    }

    /// Whether every cached close set references only current-epoch
    /// surrogate sets (validation hook for the robustness tests: with
    /// eager purging and in-place warm refreshes this must hold at every
    /// moment).
    pub fn cache_epoch_consistent(&self) -> bool {
        let replicas = self.replicas.lock();
        self.close_sets
            .epoch_consistent(|cl| replicas[cl.0 as usize].epoch)
    }

    /// The join flow (steps 1–4 of Fig. 8): the host learns its ASN and
    /// surrogate from a bootstrap, then fetches its cluster's close
    /// cluster set. Returns `(ASN, surrogate)`. Costs 4 messages (2 per
    /// round trip).
    pub fn join(&self, host: HostId) -> (Asn, HostId) {
        let h = self.scenario.population.host(host);
        let cluster = self.scenario.population.cluster_of(host);
        let surrogate = self.serving_surrogate(cluster, host);
        self.stats.lock().joins += 1;
        self.scope.record(MessageKind::JoinRequest, 1);
        self.scope.record(MessageKind::JoinReply, 1);
        self.scope.record(MessageKind::CloseSetRequest, 1);
        self.scope.record(MessageKind::CloseSetReply, 1);
        (h.asn, surrogate)
    }

    /// The close cluster set of `cluster`, constructing and caching it if
    /// the surrogate has not built one yet (or if the cached copy went
    /// stale because a referenced cluster cold-re-elected).
    pub fn close_set_of(&self, cluster: ClusterId) -> Arc<CloseClusterSet> {
        {
            let replicas = self.replicas.lock();
            let lookup = self
                .close_sets
                .lookup(cluster, |cl| replicas[cl.0 as usize].epoch);
            drop(replicas);
            match lookup {
                CacheLookup::Hit(set) => {
                    self.cache_meters.hits.inc();
                    return set;
                }
                CacheLookup::Stale => {
                    // Defensive: eager purging should have removed it.
                    self.cache_meters.misses.inc();
                    self.stats.lock().recovery.cache_invalidations += 1;
                }
                CacheLookup::Miss => self.cache_meters.misses.inc(),
            }
        }
        let primaries: Vec<HostId> = self.replicas.lock().iter().map(|r| r.active[0]).collect();
        let set = Arc::new(construct_close_cluster_set(
            self.scenario,
            &self.index,
            &|c: ClusterId| primaries[c.0 as usize],
            cluster,
            &self.config,
        ));
        self.stats.lock().close_sets_built += 1;
        // Construction cost is probe round trips, attributed to the
        // cluster whose surrogate did the measuring.
        let probes = set.construction_messages;
        self.construction_scope.record_for_cluster(
            cluster.0,
            MessageKind::ProbeRequest,
            probes - probes / 2,
        );
        self.construction_scope
            .record_for_cluster(cluster.0, MessageKind::ProbeReply, probes / 2);
        // Snapshot the epochs of every referenced cluster; the entry dies
        // with the first of them to cold-advance.
        let built_at_ms = self.now_ms();
        let replicas = self.replicas.lock();
        let mut deps = vec![(cluster, replicas[cluster.0 as usize].epoch)];
        for entry in set.entries() {
            deps.push((entry.cluster, replicas[entry.cluster.0 as usize].epoch));
        }
        drop(replicas);
        self.close_sets
            .insert(cluster, deps, Arc::clone(&set), built_at_ms);
        Arc::clone(&set)
    }

    /// Issues the hedge leg of a close-set fetch to the first usable
    /// warm standby of `cluster`. Returns the set when the standby
    /// answers (the hedge "wins"); `None` when no standby is usable or
    /// the hedge leg is dropped too. The leg's request/reply pair is
    /// metered in the ledger against the standby under the dedicated
    /// hedge message kinds, so the cost of hedging is visible.
    fn hedge_fetch(
        &self,
        cluster: ClusterId,
        requester: HostId,
        extra: &mut u64,
    ) -> Option<Arc<CloseClusterSet>> {
        let standby = self
            .standbys_of(cluster)
            .into_iter()
            .find(|&h| self.host_usable(h))?;
        self.stats.lock().overload.hedged_fetches += 1;
        self.overload_meters.hedged.inc();
        *extra += 2;
        self.scope
            .record_for_node(standby.0, MessageKind::HedgeRequest, 1);
        self.scope
            .record_for_node(standby.0, MessageKind::HedgeReply, 1);
        if let Some(faults) = self.message_faults.lock().clone() {
            // The hedge leg rides its own drop key: its fate is
            // independent of the primary's attempts.
            let key = (u64::from(requester.0) << 34)
                ^ (u64::from(cluster.0) << 8)
                ^ (u64::from(standby.0) << 13)
                ^ 0xA5;
            if faults.drops(key) {
                return None;
            }
        }
        self.stats.lock().overload.hedge_wins += 1;
        self.overload_meters.hedge_wins.inc();
        Some(self.close_set_of(cluster))
    }

    /// Fetches a close cluster set over a possibly-degraded,
    /// possibly-overloaded control plane.
    ///
    /// The request first routes to its serving surrogate and passes that
    /// surrogate's admission control: a fetch exceeding the request-rate
    /// budget waits in the bounded queue, and one that would overflow
    /// the queue or miss its deadline is *shed* — it skips the surrogate
    /// entirely and falls through the same degradation ladder a dead
    /// surrogate would trigger (bounded-stale cache, then probing), so
    /// overload degrades calls instead of failing them.
    ///
    /// Admitted fetches go through the [`AsapConfig::retry`] schedule
    /// against the injected [`MessageDrops`]. Whenever the accumulated
    /// delay (queueing or retry backoff) crosses the configured hedge
    /// delay, the fetch is *hedged*: the same request is re-issued to a
    /// warm standby replica and the first answer wins, with both legs
    /// metered.
    pub fn fetch_close_set_degraded(&self, cluster: ClusterId, requester: HostId) -> FetchResult {
        let mut extra = 0u64;
        let mut shed = false;
        if self.cluster_control_usable(cluster) {
            let surrogate = self.route_surrogate(cluster, requester);
            match self.admit_request(cluster, surrogate) {
                Admission::Shed(_) => shed = true,
                Admission::Admit { waited_ms, .. } => {
                    self.record_surrogate_load(cluster, surrogate);
                    let capacity = self.config.capacity;
                    let mut hedged = false;
                    // Queue-delay hedge: the request is already
                    // `waited_ms` old before the surrogate even serves
                    // it.
                    if capacity.enabled && waited_ms >= capacity.hedge_delay_ms {
                        hedged = true;
                        if let Some(set) = self.hedge_fetch(cluster, requester, &mut extra) {
                            return FetchResult {
                                set: Some(set),
                                level: DegradationLevel::FullAsap,
                                extra_messages: extra,
                                shed: false,
                            };
                        }
                    }
                    let faults = self.message_faults.lock().clone();
                    let Some(faults) = faults else {
                        return FetchResult {
                            set: Some(self.close_set_of(cluster)),
                            level: DegradationLevel::FullAsap,
                            extra_messages: extra,
                            shed: false,
                        };
                    };
                    let retry = self.config.retry;
                    let mut waited_total = waited_ms;
                    for attempt in 0..=retry.max_retries {
                        let key = (u64::from(requester.0) << 34)
                            ^ (u64::from(cluster.0) << 8)
                            ^ u64::from(attempt);
                        if !faults.drops(key) {
                            return FetchResult {
                                set: Some(self.close_set_of(cluster)),
                                level: DegradationLevel::FullAsap,
                                extra_messages: extra,
                                shed: false,
                            };
                        }
                        extra += 2; // the wasted request/reply pair
                        self.scope.record(MessageKind::CloseSetRequest, 1);
                        self.scope.record(MessageKind::CloseSetReply, 1);
                        let mut stats = self.stats.lock();
                        stats.recovery.timeouts += 1;
                        stats.recovery.retries += 1;
                        stats.recovery.recovery_messages += 2;
                        stats.recovery.stabilization_ticks += retry.backoff_ms(attempt, key);
                        drop(stats);
                        waited_total += retry.backoff_ms(attempt, key);
                        // Retry-backoff hedge: the cumulative wait just
                        // crossed the hedge delay.
                        if capacity.enabled && !hedged && waited_total >= capacity.hedge_delay_ms {
                            hedged = true;
                            if let Some(set) = self.hedge_fetch(cluster, requester, &mut extra) {
                                return FetchResult {
                                    set: Some(set),
                                    level: DegradationLevel::FullAsap,
                                    extra_messages: extra,
                                    shed: false,
                                };
                            }
                        }
                    }
                }
            }
        }
        // Degraded service: shed by admission control, surrogate
        // unreachable, or every retry eaten. A cached set of bounded age
        // still beats probing.
        let now = self.now_ms();
        let cached =
            self.close_sets
                .fresh_within(cluster, now, self.config.membership.stale_set_max_age_ms);
        match cached {
            Some(set) => {
                self.stats.lock().recovery.stale_sets_served += 1;
                FetchResult {
                    set: Some(set),
                    level: DegradationLevel::StaleCloseSet,
                    extra_messages: extra,
                    shed,
                }
            }
            None => FetchResult {
                set: None,
                level: DegradationLevel::RandomProbe,
                extra_messages: extra,
                shed,
            },
        }
    }

    /// Whether `a` and `b` can exchange packets at all: same AS, or
    /// neither side behind a partition.
    fn pair_connected(&self, a: HostId, b: HostId) -> bool {
        let asn_a = self.scenario.population.host(a).asn.0;
        let asn_b = self.scenario.population.host(b).asn.0;
        if asn_a == asn_b {
            return true;
        }
        let partitioned = self.partitioned.lock();
        !partitioned.contains(&asn_a) && !partitioned.contains(&asn_b)
    }

    /// MIX-style deterministic random probing: the last resort before
    /// going direct. Candidate relays are drawn by hashing (caller,
    /// callee, attempt) over the whole population — AS-blind, no
    /// surrogate involved — and the best responding one-hop path wins
    /// even above `latT`. Returns the best path and the probes sent.
    fn probe_relays(&self, caller: HostId, callee: HostId) -> (Option<ChosenPath>, u64) {
        let host_count = self.scenario.population.hosts().len() as u64;
        let mut attempts = 0u64;
        let mut best: Option<ChosenPath> = None;
        for i in 0..self.config.membership.mix_probes {
            let key = (u64::from(caller.0) << 40) ^ (u64::from(callee.0) << 16) ^ i as u64;
            let h = HostId((mix64(key) % host_count) as u32);
            if h == caller || h == callee || !self.host_usable(h) {
                continue;
            }
            attempts += 1;
            let Some(rtt) = self.scenario.one_hop_rtt_ms(caller, h, callee) else {
                continue;
            };
            if best.as_ref().is_none_or(|b| rtt < b.rtt_ms) {
                best = Some(ChosenPath {
                    relays: vec![h],
                    rtt_ms: rtt,
                    loss: self.scenario.one_hop_loss(caller, h, callee).unwrap_or(1.0),
                });
            }
        }
        (best, attempts)
    }

    /// Records the rung `cluster` was served at and folds ladder
    /// transitions into the recovery stats.
    fn observe_ladder(&self, cluster: ClusterId, level: DegradationLevel, now_ms: u64) {
        let (down, up) = {
            let mut ladders = self.ladders.lock();
            let ladder = &mut ladders[cluster.0 as usize];
            let (d0, r0) = (ladder.downgrades, ladder.recoveries);
            ladder.observe(level, now_ms);
            (ladder.downgrades - d0, ladder.recoveries - r0)
        };
        if down + up > 0 {
            let mut stats = self.stats.lock();
            stats.recovery.downgrades += down;
            stats.recovery.ladder_recoveries += up;
        }
    }

    /// Places a call (steps 5–10 of Fig. 8): ping the direct route; if it
    /// violates `latT`, walk the service ladder — `select-close-relay()`
    /// over fresh or bounded-stale close sets, then MIX-style random
    /// probing, then the direct path even above `latT`.
    pub fn call(&self, caller: HostId, callee: HostId) -> CallOutcome {
        let now = self.now_ms();
        let mut messages = 2; // direct-route ping + reply (or its timeout)
        self.stats.lock().calls += 1;
        self.scope.record(MessageKind::CallSetup, 2);

        if !self.pair_connected(caller, callee) {
            // The direct ping times out, and no relay can bridge into a
            // partitioned AS either: the call fails outright.
            self.stats.lock().relayed_calls += 1;
            return CallOutcome {
                direct_rtt_ms: None,
                used_direct: false,
                selection: None,
                chosen: None,
                messages,
                degradation: DegradationLevel::FullAsap,
                shed_by_overload: false,
            };
        }

        let direct_rtt_ms = self.scenario.host_rtt_ms(caller, callee);
        let direct_loss = self.scenario.host_loss(caller, callee).unwrap_or(1.0);

        if let Some(rtt) = direct_rtt_ms {
            if rtt < self.config.lat_t_ms {
                self.stats.lock().direct_calls += 1;
                self.call_rtt.record(rtt);
                return CallOutcome {
                    direct_rtt_ms,
                    used_direct: true,
                    selection: None,
                    chosen: Some(ChosenPath {
                        relays: Vec::new(),
                        rtt_ms: rtt,
                        loss: direct_loss,
                    }),
                    messages,
                    degradation: DegradationLevel::FullAsap,
                    shed_by_overload: false,
                };
            }
        }

        let caller_cluster = self.scenario.population.cluster_of(caller);
        let callee_cluster = self.scenario.population.cluster_of(callee);

        // A same-AS pair inside a partition can reach no relay outside:
        // serve the direct path, the last rung.
        let isolated = {
            let partitioned = self.partitioned.lock();
            partitioned.contains(&self.scenario.population.host(caller).asn.0)
                || partitioned.contains(&self.scenario.population.host(callee).asn.0)
        };
        if isolated {
            self.stats.lock().recovery.forced_direct += 1;
            self.observe_ladder(caller_cluster, DegradationLevel::DirectOnly, now);
            self.stats.lock().relayed_calls += 1;
            if let Some(rtt) = direct_rtt_ms {
                self.call_rtt.record(rtt);
            }
            return CallOutcome {
                direct_rtt_ms,
                used_direct: false,
                selection: None,
                chosen: direct_rtt_ms.map(|rtt| ChosenPath {
                    relays: Vec::new(),
                    rtt_ms: rtt,
                    loss: direct_loss,
                }),
                messages,
                degradation: DegradationLevel::DirectOnly,
                shed_by_overload: false,
            };
        }

        let fetch1 = self.fetch_close_set_degraded(caller_cluster, caller);
        let fetch2 = self.fetch_close_set_degraded(callee_cluster, caller);
        messages += fetch1.extra_messages + fetch2.extra_messages;
        let shed_by_overload = fetch1.shed || fetch2.shed;
        let mut level = fetch1.level.max(fetch2.level);
        let mut selection = None;
        let chosen;

        if let (Some(caller_set), Some(callee_set)) = (fetch1.set, fetch2.set) {
            let clustering = self.scenario.population.clustering();
            let cluster_size = |c: ClusterId| clustering.cluster(c).len() as u64;
            let mut fetch = |c: ClusterId| (*self.close_set_of(c)).clone();
            let sel = select_close_relay(
                &caller_set,
                &callee_set,
                &self.config,
                &cluster_size,
                &mut fetch,
            );
            messages += sel.messages;
            // The selection exchange is close-set requests/replies with
            // the two surrogates (2 messages one-hop; §7.3).
            self.scope.record(
                MessageKind::CloseSetRequest,
                sel.messages - sel.messages / 2,
            );
            self.scope
                .record(MessageKind::CloseSetReply, sel.messages / 2);
            // "Comprehensively considering" the candidates: evaluate the
            // top few by true path RTT (their surrogates' measurements
            // are estimates) and keep the best.
            chosen = self.pick_best(caller, callee, &sel, &[]);
            selection = Some(sel);
        } else {
            level = level.max(DegradationLevel::RandomProbe);
            let (best, attempts) = self.probe_relays(caller, callee);
            messages += 2 * attempts;
            self.scope.record(MessageKind::ProbeRequest, attempts);
            self.scope.record(MessageKind::ProbeReply, attempts);
            self.stats.lock().recovery.probe_fallbacks += 1;
            match best {
                Some(path) => chosen = Some(path),
                None => {
                    level = DegradationLevel::DirectOnly;
                    self.stats.lock().recovery.forced_direct += 1;
                    chosen = direct_rtt_ms.map(|rtt| ChosenPath {
                        relays: Vec::new(),
                        rtt_ms: rtt,
                        loss: direct_loss,
                    });
                }
            }
        }

        self.observe_ladder(caller_cluster, level, now);
        self.stats.lock().relayed_calls += 1;
        if let Some(path) = &chosen {
            self.call_rtt.record(path.rtt_ms);
        }

        CallOutcome {
            direct_rtt_ms,
            used_direct: false,
            selection,
            chosen,
            messages,
            degradation: level,
            shed_by_overload,
        }
    }

    /// The capacity verdict on routing one more call through `host`:
    /// [`SlotVerdict::Busy`] when every relay-call slot is occupied (the
    /// typed "try the next candidate" answer), [`SlotVerdict::Granted`]
    /// otherwise or when the capacity model is disabled.
    pub fn relay_admission(&self, host: HostId) -> SlotVerdict {
        match &self.relay_slots {
            Some(slots) if slots.lock().busy(host.0 as usize) => SlotVerdict::Busy,
            _ => SlotVerdict::Granted,
        }
    }

    /// Whether `host` currently answers [`SlotVerdict::Busy`].
    pub fn relay_busy(&self, host: HostId) -> bool {
        self.relay_admission(host) == SlotVerdict::Busy
    }

    /// Occupies one relay-call slot on every host of `relays` (the
    /// event runtime calls this when a call starts using a path).
    /// Returns the hosts now *over* their slot limit — saturated relays
    /// the runtime must treat like crashed ones and fail away from.
    pub fn acquire_relays(&self, relays: &[HostId]) -> Vec<HostId> {
        let Some(slots) = &self.relay_slots else {
            return Vec::new();
        };
        let over: Vec<HostId> = {
            let mut slots = slots.lock();
            relays
                .iter()
                .copied()
                .filter(|&r| slots.force_acquire(r.0 as usize))
                .collect()
        };
        if !over.is_empty() {
            self.stats.lock().overload.saturated_acquires += over.len() as u64;
            self.overload_meters.saturated.add(over.len() as u64);
        }
        over
    }

    /// Releases the relay-call slots [`AsapSystem::acquire_relays`]
    /// took (call teardown, or failover away from the path).
    pub fn release_relays(&self, relays: &[HostId]) {
        if let Some(slots) = &self.relay_slots {
            let mut slots = slots.lock();
            for &r in relays {
                slots.release(r.0 as usize);
            }
        }
    }

    /// The relay-slot occupancy high-water mark across all hosts (0
    /// when the capacity model is disabled).
    pub fn max_relay_slots_in_use(&self) -> u32 {
        self.relay_slots
            .as_ref()
            .map_or(0, |s| s.lock().max_in_use())
    }

    /// Evaluates the top candidates of a selection against the true
    /// network and returns the best concrete path, load-aware: a relay
    /// whose call slots are full answers [`SlotVerdict::Busy`] and the
    /// caller spills over to the next candidate. Only when *every*
    /// candidate is busy does a second, load-blind pass run — the
    /// least-bad saturated relay still beats failing the call, and the
    /// over-limit acquire that follows makes the runtime fail away from
    /// it like it would from a crash.
    fn pick_best(
        &self,
        caller: HostId,
        callee: HostId,
        selection: &CloseRelaySelection,
        dead: &[HostId],
    ) -> Option<ChosenPath> {
        let mut busy_skips = 0u64;
        let best = self.pick_best_filtered(caller, callee, selection, dead, true, &mut busy_skips);
        if busy_skips == 0 {
            return best;
        }
        {
            let mut stats = self.stats.lock();
            stats.overload.relay_busy_skips += busy_skips;
            if best.is_some() {
                stats.overload.relay_spillovers += 1;
            }
        }
        self.overload_meters.busy_skips.add(busy_skips);
        if best.is_some() {
            self.overload_meters.spillovers.inc();
            return best;
        }
        self.pick_best_filtered(caller, callee, selection, dead, false, &mut 0)
    }

    /// One candidate-evaluation pass. Relays that are unusable —
    /// offline, behind a partition (the setup ping would time out),
    /// suspected dead, or explicitly listed in `dead` — are skipped;
    /// with `skip_busy`, slot-saturated relays are skipped too and
    /// counted into `busy_skips`.
    fn pick_best_filtered(
        &self,
        caller: HostId,
        callee: HostId,
        selection: &CloseRelaySelection,
        dead: &[HostId],
        skip_busy: bool,
        busy_skips: &mut u64,
    ) -> Option<ChosenPath> {
        // All one-hop candidates are evaluated (their RTT estimates are
        // already on hand from the close sets, per the paper's
        // "comprehensively considering" step); two-hop pairs are capped —
        // they only matter when the one-hop set is thin anyway.
        let one_hop_scan = selection.one_hop.len();
        const TWO_HOP_SCAN: usize = 64;
        let mut best: Option<ChosenPath> = None;
        let mut consider = |candidate: Option<ChosenPath>| {
            if let Some(c) = candidate {
                let better = match &best {
                    Some(b) => c.rtt_ms < b.rtt_ms,
                    None => true,
                };
                if better {
                    best = Some(c);
                }
            }
        };

        // Unmeasured loss means unusable, not perfect: default to 1.0
        // everywhere, matching the direct-call site.
        for r in selection.one_hop.iter().take(one_hop_scan) {
            let relay = self.surrogate_of(r.cluster);
            if relay == caller
                || relay == callee
                || dead.contains(&relay)
                || !self.host_usable(relay)
            {
                continue;
            }
            if skip_busy && self.relay_busy(relay) {
                *busy_skips += 1;
                continue;
            }
            let path = self
                .scenario
                .one_hop_rtt_ms(caller, relay, callee)
                .map(|rtt| ChosenPath {
                    relays: vec![relay],
                    rtt_ms: rtt,
                    loss: self
                        .scenario
                        .one_hop_loss(caller, relay, callee)
                        .unwrap_or(1.0),
                });
            consider(path);
        }
        for t in selection.two_hop.iter().take(TWO_HOP_SCAN) {
            let (r1, r2) = (self.surrogate_of(t.first), self.surrogate_of(t.second));
            if r1 == r2 || [r1, r2].contains(&caller) || [r1, r2].contains(&callee) {
                continue;
            }
            if dead.contains(&r1)
                || dead.contains(&r2)
                || !self.host_usable(r1)
                || !self.host_usable(r2)
            {
                continue;
            }
            if skip_busy && (self.relay_busy(r1) || self.relay_busy(r2)) {
                *busy_skips += 1;
                continue;
            }
            let path = self
                .scenario
                .two_hop_rtt_ms(caller, r1, r2, callee)
                .map(|rtt| {
                    let loss = {
                        let l1 = self.scenario.host_loss(caller, r1).unwrap_or(1.0);
                        let l2 = self.scenario.host_loss(r1, r2).unwrap_or(1.0);
                        let l3 = self.scenario.host_loss(r2, callee).unwrap_or(1.0);
                        1.0 - (1.0 - l1) * (1.0 - l2) * (1.0 - l3)
                    };
                    ChosenPath {
                        relays: vec![r1, r2],
                        rtt_ms: rtt,
                        loss,
                    }
                });
            consider(path);
        }
        best
    }

    /// Mid-call relay failover: the call's relay died, so re-pick from
    /// the *cached* candidate set (no new `select-close-relay()` run),
    /// skipping `dead` hosts and any cluster whose surrogates are all
    /// unusable. Falls back to a two-hop pair, then to the direct path
    /// even above `latT` — a degraded call beats a dropped one. Returns
    /// `None` only when the pair is truly partitioned.
    pub fn failover_path(
        &self,
        caller: HostId,
        callee: HostId,
        selection: &CloseRelaySelection,
        dead: &[HostId],
    ) -> Option<ChosenPath> {
        // A cluster is only unusable when every surrogate is down — a
        // crash of the primary redirects `surrogate_of` to the promoted
        // standby (or re-elected replacement) automatically.
        let dead_clusters: Vec<ClusterId> = dead
            .iter()
            .map(|&h| self.scenario.population.cluster_of(h))
            .filter(|&c| self.surrogates_of(c).iter().all(|&s| !self.host_usable(s)))
            .collect();
        let filtered = selection.excluding(&dead_clusters);
        let mut best = self.pick_best(caller, callee, &filtered, dead);
        if best.is_none() && self.pair_connected(caller, callee) {
            if let Some(rtt) = self.scenario.host_rtt_ms(caller, callee) {
                best = Some(ChosenPath {
                    relays: Vec::new(),
                    rtt_ms: rtt,
                    loss: self.scenario.host_loss(caller, callee).unwrap_or(1.0),
                });
            }
        }
        let mut stats = self.stats.lock();
        stats.recovery.failovers += 1;
        // Re-ping of the replacement path.
        stats.recovery.recovery_messages += 2;
        drop(stats);
        self.scope.record(MessageKind::CallSetup, 2);
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_workload::{sessions, ScenarioConfig};

    fn scenario() -> Scenario {
        Scenario::build(ScenarioConfig::tiny(), 21)
    }

    /// A cluster with at least `n` members, or a skip.
    fn cluster_with(s: &Scenario, n: usize) -> Option<ClusterId> {
        s.population
            .clustering()
            .clusters()
            .iter()
            .find(|c| c.len() >= n)
            .map(|c| c.id())
    }

    #[test]
    fn bootstrap_elects_most_capable_surrogates() {
        let s = scenario();
        let system = AsapSystem::bootstrap(&s, AsapConfig::default());
        let score = |h: HostId| {
            let host = s.population.host(h);
            host.nodal.capability() - host.access_ms / 100.0
        };
        for c in s.population.clustering().clusters() {
            let surrogate = system.surrogate_of(c.id());
            for m in s.population.cluster_members(c.id()) {
                assert!(
                    score(surrogate) >= score(m) - 1e-12,
                    "surrogate of {:?} is not the best-scoring member",
                    c.id()
                );
            }
        }
    }

    #[test]
    fn bootstrap_keeps_standbys_warm() {
        let s = scenario();
        let system = AsapSystem::bootstrap(&s, AsapConfig::default());
        let want = AsapConfig::default().membership.standbys;
        for c in s.population.clustering().clusters() {
            let rs = system.replica_set_of(c.id());
            assert!(!rs.active.is_empty());
            assert_eq!(rs.epoch, 0);
            // Standbys fill up to the configured count, bounded by the
            // cluster size; none overlaps the active set.
            let expect = want.min(c.len().saturating_sub(rs.active.len()));
            assert_eq!(rs.standbys.len(), expect, "cluster {:?}", c.id());
            for sb in &rs.standbys {
                assert!(!rs.active.contains(sb));
                assert_eq!(system.relay_verdict(*sb), Verdict::Alive);
            }
        }
    }

    #[test]
    fn fast_direct_calls_skip_selection() {
        let s = scenario();
        let system = AsapSystem::bootstrap(&s, AsapConfig::default());
        // Find a fast pair.
        let fast = sessions::generate(&s.population, 200, 1)
            .into_iter()
            .find(|x| s.host_rtt_ms(x.caller, x.callee).is_some_and(|r| r < 150.0))
            .expect("some fast session exists");
        let out = system.call(fast.caller, fast.callee);
        assert!(out.used_direct);
        assert!(out.selection.is_none());
        assert_eq!(out.messages, 2);
        assert_eq!(out.degradation, DegradationLevel::FullAsap);
        assert!(out.chosen.unwrap().relays.is_empty());
    }

    #[test]
    fn slow_calls_run_selection() {
        let s = scenario();
        let system = AsapSystem::bootstrap(&s, AsapConfig::default());
        let slow = sessions::generate(&s.population, 3000, 2)
            .into_iter()
            .find(|x| s.host_rtt_ms(x.caller, x.callee).is_some_and(|r| r > 300.0));
        let Some(slow) = slow else {
            return; // tiny worlds occasionally have no latent session
        };
        let out = system.call(slow.caller, slow.callee);
        assert!(!out.used_direct);
        assert_eq!(out.degradation, DegradationLevel::FullAsap);
        let sel = out.selection.expect("selection ran");
        assert!(out.messages >= 4); // ping + 2 selection messages
        if let Some(chosen) = &out.chosen {
            assert!(!chosen.relays.is_empty());
            // The chosen relay really is a surrogate the selection named.
            let named: Vec<HostId> =
                sel.one_hop
                    .iter()
                    .map(|r| system.surrogate_of(r.cluster))
                    .chain(sel.two_hop.iter().flat_map(|t| {
                        [system.surrogate_of(t.first), system.surrogate_of(t.second)]
                    }))
                    .collect();
            for r in &chosen.relays {
                assert!(named.contains(r));
            }
        }
    }

    #[test]
    fn close_sets_are_cached() {
        let s = scenario();
        let system = AsapSystem::bootstrap(&s, AsapConfig::default());
        let c = s.population.clustering().clusters()[0].id();
        let a = system.close_set_of(c);
        let b = system.close_set_of(c);
        assert!(Arc::ptr_eq(&a, &b));
        let stats = system.stats();
        assert_eq!(stats.close_sets_built, 1);
        // One build (miss) then one memo hit, mirrored into the
        // registry counters.
        assert_eq!(stats.close_set_cache_misses, 1);
        assert_eq!(stats.close_set_cache_hits, 1);
        let registry = system.telemetry().registry();
        assert_eq!(registry.counter("ASAP.cache.close_set.hits").get(), 1);
        assert_eq!(registry.counter("ASAP.cache.close_set.misses").get(), 1);
    }

    #[test]
    fn construction_counter_reconciles_with_ledger_pings() {
        // The amortized construction cost reported on each set must
        // equal the probe messages metered into the construction ledger
        // scope — same events, two views.
        let s = scenario();
        let system = AsapSystem::bootstrap(&s, AsapConfig::default());
        let mut counted = 0u64;
        for c in s.population.clustering().clusters() {
            counted += system.close_set_of(c.id()).construction_messages;
        }
        let scope = system.construction_scope();
        let metered = scope.count(MessageKind::ProbeRequest) + scope.count(MessageKind::ProbeReply);
        assert_eq!(metered, counted, "ledger probes != construction counters");
        // And the request/reply split is balanced.
        assert_eq!(
            scope.count(MessageKind::ProbeRequest),
            scope.count(MessageKind::ProbeReply)
        );
    }

    #[test]
    fn surrogate_loss_with_standby_hands_off_warm() {
        let s = scenario();
        let system = AsapSystem::bootstrap(&s, AsapConfig::default());
        let Some(cluster) = cluster_with(&s, 3) else {
            return;
        };
        let _ = system.close_set_of(cluster);
        let built_before = system.stats().close_sets_built;
        let old = system.surrogate_of(cluster);
        let standby = system.standbys_of(cluster)[0];
        let epoch_before = system.surrogate_epoch(cluster);
        let new = system.fail_surrogate(cluster);
        assert_ne!(old, new, "handoff must pick a different host");
        assert_eq!(new, standby, "the best warm standby is promoted");
        assert_eq!(system.surrogate_epoch(cluster), epoch_before + 1);
        assert!(system.cache_epoch_consistent());
        // Warm handoff refreshes dependent cache entries in place: no
        // rebuild on the next request.
        let _ = system.close_set_of(cluster);
        assert_eq!(system.stats().close_sets_built, built_before);
        let rec = system.stats().recovery;
        assert_eq!(rec.warm_handoffs, 1);
        assert_eq!(rec.re_elections, 0);
        assert_eq!(rec.cache_invalidations, 0);
    }

    #[test]
    fn exhausted_replica_set_cold_elects_and_purges() {
        let s = scenario();
        let system = AsapSystem::bootstrap(&s, AsapConfig::default());
        let Some(cluster) = cluster_with(&s, 2) else {
            return;
        };
        let _ = system.close_set_of(cluster);
        // Kill the acting primary over and over. Backfill keeps topping
        // the standby pool from the cluster, so the pool only runs dry
        // once nearly every member is down — crash up to the whole
        // cluster plus the replica-set margin.
        let limit =
            s.population.cluster_members(cluster).len() + system.replica_set_of(cluster).size() + 1;
        for _ in 0..limit {
            if system.stats().recovery.re_elections > 0 {
                break;
            }
            system.fail_surrogate(cluster);
        }
        let rec = system.stats().recovery;
        assert!(rec.re_elections >= 1, "quorum never failed: {rec:?}");
        assert!(rec.quorum_failures >= 1);
        // Cold election purged dependent entries and the cache stayed
        // epoch-consistent throughout.
        assert!(rec.cache_invalidations >= 1);
        assert!(system.cache_epoch_consistent());
        assert!(!system.surrogates_of(cluster).is_empty());
    }

    #[test]
    fn silent_crash_is_caught_by_membership_ticks() {
        let s = scenario();
        let system = AsapSystem::bootstrap(&s, AsapConfig::default());
        let Some(cluster) = cluster_with(&s, 3) else {
            return;
        };
        let victim = system.surrogate_of(cluster);
        assert!(system.silent_crash(victim));
        // Nothing announced the crash: the role is still held.
        assert_eq!(system.surrogate_of(cluster), victim);
        let interval = system.config().membership.suspicion.heartbeat_interval_ms;
        let mut demoted = false;
        for k in 1..=120 {
            let tick = system.membership_tick(k * interval);
            if tick.demoted.contains(&victim) {
                demoted = true;
                break;
            }
        }
        assert!(demoted, "the detector never declared the victim dead");
        assert_ne!(system.surrogate_of(cluster), victim);
        let rec = system.stats().recovery;
        assert!(rec.suspected_dead >= 1);
        assert!(rec.warm_handoffs + rec.re_elections >= 1);
    }

    #[test]
    fn heartbeating_members_are_never_suspected() {
        let s = scenario();
        let system = AsapSystem::bootstrap(&s, AsapConfig::default());
        let interval = system.config().membership.suspicion.heartbeat_interval_ms;
        for k in 1..=60 {
            let tick = system.membership_tick(k * interval);
            assert!(tick.demoted.is_empty(), "healthy node demoted at tick {k}");
        }
        assert_eq!(system.stats().recovery.suspected_dead, 0);
    }

    #[test]
    fn partition_degrades_fetch_then_heals() {
        let s = scenario();
        let config = AsapConfig::default();
        let system = AsapSystem::bootstrap(&s, config);
        let cluster = s.population.clustering().clusters()[0].id();
        let member = s.population.cluster_members(cluster)[0];
        let asn = s.population.host(member).asn.0;
        // Warm the cache at t=0, then cut the AS off.
        let _ = system.close_set_of(cluster);
        system.partition_as(asn);
        assert!(!system.cluster_control_usable(cluster));
        let fetch = system.fetch_close_set_degraded(cluster, member);
        assert_eq!(fetch.level, DegradationLevel::StaleCloseSet);
        assert!(
            fetch.set.is_some(),
            "bounded-age cache must serve the stale rung"
        );
        assert!(!fetch.shed, "a partition is not an overload shed");
        assert_eq!(system.stats().recovery.stale_sets_served, 1);
        // Once the cached copy ages out, only probing is left.
        system.advance_to(config.membership.stale_set_max_age_ms + 1);
        let fetch = system.fetch_close_set_degraded(cluster, member);
        assert_eq!(fetch.level, DegradationLevel::RandomProbe);
        assert!(fetch.set.is_none());
        // Healing reopens the paths, and the next membership sweep
        // delivers heartbeats again, clearing the Dead verdicts the
        // silent 120 s earned every watched node.
        system.heal_as(asn);
        system.membership_tick(config.membership.stale_set_max_age_ms + 2);
        assert!(system.cluster_control_usable(cluster));
        let fetch = system.fetch_close_set_degraded(cluster, member);
        assert_eq!(fetch.level, DegradationLevel::FullAsap);
        assert!(fetch.set.is_some());
    }

    #[test]
    fn probing_rung_serves_calls_without_any_close_set() {
        let s = scenario();
        let system = AsapSystem::bootstrap(&s, AsapConfig::default());
        // Every control message is eaten and nothing is cached: fetches
        // land on the probing rung.
        system.set_message_faults(Some(asap_netsim::MessageDrops::new(0.999, 5)));
        let slow = sessions::generate(&s.population, 3000, 2)
            .into_iter()
            .find(|x| s.host_rtt_ms(x.caller, x.callee).is_some_and(|r| r > 300.0));
        let Some(slow) = slow else {
            return; // tiny worlds occasionally have no latent session
        };
        let out = system.call(slow.caller, slow.callee);
        assert!(!out.used_direct);
        assert!(out.selection.is_none(), "no close set means no selection");
        assert!(out.degradation >= DegradationLevel::RandomProbe);
        // Either probing found a relay or the call went forced-direct.
        let rec = system.stats().recovery;
        assert_eq!(rec.probe_fallbacks, 1);
        match &out.chosen {
            Some(p) if !p.relays.is_empty() => {
                assert_eq!(out.degradation, DegradationLevel::RandomProbe);
                assert!(system.host_usable(p.relays[0]));
            }
            Some(_) => assert_eq!(out.degradation, DegradationLevel::DirectOnly),
            None => assert_eq!(out.degradation, DegradationLevel::DirectOnly),
        }
        // The ladder recorded the downgrade and recovers on the next
        // healthy call.
        assert!(system
            .ladder_of(s.population.cluster_of(slow.caller))
            .is_degraded());
        system.set_message_faults(None);
        let again = system.call(slow.caller, slow.callee);
        assert_eq!(again.degradation, DegradationLevel::FullAsap);
        assert!(!system
            .ladder_of(s.population.cluster_of(slow.caller))
            .is_degraded());
        assert!(system.stats().recovery.ladder_recoveries >= 1);
    }

    #[test]
    fn partitioned_pairs_cannot_call_across() {
        let s = scenario();
        let system = AsapSystem::bootstrap(&s, AsapConfig::default());
        let hosts = s.population.hosts();
        let a = hosts[0].id;
        let b = hosts
            .iter()
            .find(|h| h.asn != hosts[0].asn)
            .expect("another AS exists")
            .id;
        system.partition_as(s.population.host(a).asn.0);
        let out = system.call(a, b);
        assert!(out.chosen.is_none(), "no path can cross a partition");
        assert!(out.direct_rtt_ms.is_none());
        system.heal_as(s.population.host(a).asn.0);
        let healed = system.call(a, b);
        assert!(healed.direct_rtt_ms.is_some() || healed.chosen.is_none());
    }

    #[test]
    fn join_reports_asn_and_surrogate() {
        let s = scenario();
        let system = AsapSystem::bootstrap(&s, AsapConfig::default());
        let host = s.population.hosts()[5].id;
        let (asn, surrogate) = system.join(host);
        assert_eq!(asn, s.population.host(host).asn);
        let cluster = s.population.cluster_of(host);
        assert!(system.surrogates_of(cluster).contains(&surrogate));
        assert_eq!(system.stats().joins, 1);
        // The 4 join messages (2 round trips) land in the ledger, typed.
        let scope = system.ledger_scope();
        assert_eq!(scope.count(MessageKind::JoinRequest), 1);
        assert_eq!(scope.count(MessageKind::JoinReply), 1);
        assert_eq!(scope.count(MessageKind::CloseSetRequest), 1);
        assert_eq!(scope.count(MessageKind::CloseSetReply), 1);
        assert_eq!(scope.total(), 4);
    }

    #[test]
    fn large_clusters_elect_multiple_surrogates() {
        let s = scenario();
        let config = AsapConfig {
            members_per_surrogate: 3,
            ..Default::default()
        };
        let system = AsapSystem::bootstrap(&s, config);
        let big = s
            .population
            .clustering()
            .clusters()
            .iter()
            .find(|c| c.len() >= 7)
            .expect("some cluster with ≥7 members")
            .id();
        let surrogates = system.surrogates_of(big);
        let want = s.population.cluster_members(big).len().div_ceil(3);
        assert_eq!(surrogates.len(), want);
        // All surrogates are distinct members.
        let members = s.population.cluster_members(big);
        let mut dedup = surrogates.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), surrogates.len());
        assert!(surrogates.iter().all(|h| members.contains(h)));
    }

    #[test]
    fn close_set_requests_are_load_balanced() {
        let s = scenario();
        let config = AsapConfig {
            members_per_surrogate: 2,
            ..Default::default()
        };
        let system = AsapSystem::bootstrap(&s, config);
        let big = s
            .population
            .clustering()
            .clusters()
            .iter()
            .find(|c| c.len() >= 6)
            .expect("some cluster with ≥6 members")
            .id();
        let surrogates = system.surrogates_of(big);
        assert!(surrogates.len() >= 3);
        // Scale requests with the surrogate count so every surrogate is
        // reachable by the requester-hash spread regardless of cluster size.
        let requests = surrogates.len() as u32 * 10;
        for i in 0..requests {
            let _ = system.serving_surrogate(big, HostId(i));
        }
        for &sur in &surrogates {
            let load = system.surrogate_load(big, sur);
            assert!(load > 0, "surrogate {sur} served nothing");
            assert!(
                load <= requests as u64 / surrogates.len() as u64 + 1,
                "surrogate {sur} overloaded: {load}"
            );
        }
    }

    #[test]
    fn message_faults_cause_timeouts_but_calls_still_complete() {
        let s = scenario();
        let system = AsapSystem::bootstrap(&s, AsapConfig::default());
        system.set_message_faults(Some(asap_netsim::MessageDrops::new(0.9, 77)));
        let sessions = sessions::generate(&s.population, 200, 9);
        let mut relayed = 0;
        for sess in &sessions {
            let out = system.call(sess.caller, sess.callee);
            if !out.used_direct {
                relayed += 1;
            }
        }
        if relayed == 0 {
            return; // tiny worlds occasionally have no slow session
        }
        let rec = system.stats().recovery;
        // 90% drop probability over many fetches must hit some timeouts,
        // and every timeout is accounted as retries + messages + waiting.
        assert!(rec.timeouts > 0);
        assert_eq!(rec.retries, rec.timeouts);
        assert_eq!(rec.recovery_messages, rec.timeouts * 2);
        assert!(rec.stabilization_ticks > 0);
    }

    #[test]
    fn failover_avoids_dead_relay_and_offline_hosts() {
        let s = scenario();
        let system = AsapSystem::bootstrap(&s, AsapConfig::default());
        let slow = sessions::generate(&s.population, 3000, 2)
            .into_iter()
            .find(|x| s.host_rtt_ms(x.caller, x.callee).is_some_and(|r| r > 300.0));
        let Some(slow) = slow else {
            return; // tiny worlds occasionally have no latent session
        };
        let out = system.call(slow.caller, slow.callee);
        let Some(selection) = out.selection else {
            return;
        };
        let Some(chosen) = out.chosen else {
            return;
        };
        let Some(&dead_relay) = chosen.relays.first() else {
            return;
        };
        system.crash_host(dead_relay);
        let replacement = system.failover_path(slow.caller, slow.callee, &selection, &[dead_relay]);
        let path = replacement.expect("failover finds some path (direct at worst)");
        assert!(
            !path.relays.contains(&dead_relay),
            "failover re-picked the dead relay"
        );
        for r in &path.relays {
            assert!(system.is_online(*r), "failover picked an offline relay");
        }
        let rec = system.stats().recovery;
        assert_eq!(rec.failovers, 1);
        assert!(rec.recovery_messages >= 2);
    }

    #[test]
    fn crashing_non_surrogate_does_not_re_elect() {
        let s = scenario();
        let system = AsapSystem::bootstrap(&s, AsapConfig::default());
        let cluster = s
            .population
            .clustering()
            .clusters()
            .iter()
            .find(|c| c.len() >= 2)
            .expect("some multi-member cluster")
            .id();
        let surrogate = system.surrogate_of(cluster);
        let bystander = *s
            .population
            .cluster_members(cluster)
            .iter()
            .find(|&&h| h != surrogate)
            .unwrap();
        let epoch_before = system.surrogate_epoch(cluster);
        assert!(!system.crash_host(bystander));
        assert_eq!(system.surrogate_of(cluster), surrogate);
        assert_eq!(system.surrogate_epoch(cluster), epoch_before);
        assert!(!system.is_online(bystander));
        // A crashed standby never lingers in the replica set.
        assert!(!system.standbys_of(cluster).contains(&bystander));
        // Crashing the same host twice is a no-op.
        assert!(!system.crash_host(bystander));
    }

    #[test]
    fn epoch_bump_purges_dependent_cache_entries() {
        let s = scenario();
        let system = AsapSystem::bootstrap(&s, AsapConfig::default());
        let c = s.population.clustering().clusters()[0].id();
        let set = system.close_set_of(c);
        assert!(system.cache_epoch_consistent());
        // Expire some cluster the set references (or the home cluster).
        let target = set.entries().first().map_or(c, |e| e.cluster);
        system.expire_close_set(target);
        assert!(system.cache_epoch_consistent());
        assert!(system.stats().recovery.cache_invalidations >= 1);
        // Rebuild sees the new epoch and is consistent again.
        let _ = system.close_set_of(c);
        assert!(system.cache_epoch_consistent());
    }

    #[test]
    fn burst_fetches_queue_then_shed_into_the_ladder() {
        let s = scenario();
        // A tight budget: 2 requests/s, 4-deep queue, short deadline.
        let mut config = AsapConfig::default();
        config.capacity.surrogate_budget = 2;
        config.capacity.budget_window_ms = 1000;
        config.capacity.queue_limit = 4;
        config.capacity.queue_deadline_ms = 1500;
        config.capacity.hedge_delay_ms = 10_000; // keep hedging out of this test
        let system = AsapSystem::bootstrap(&s, config);
        let cluster = s.population.clustering().clusters()[0].id();
        let member = s.population.cluster_members(cluster)[0];
        // Warm the cache so shed fetches land on the stale rung.
        let _ = system.close_set_of(cluster);
        let mut shed = 0;
        for _ in 0..16 {
            let fetch = system.fetch_close_set_degraded(cluster, member);
            if fetch.shed {
                shed += 1;
                assert_eq!(
                    fetch.level,
                    DegradationLevel::StaleCloseSet,
                    "a shed fetch with a warm cache serves the stale rung"
                );
                assert!(fetch.set.is_some(), "shedding must not lose the call");
            }
        }
        let overload = system.stats().overload;
        assert!(shed > 0, "16 instant fetches must overwhelm a 2/s budget");
        assert!(
            overload.accounted(),
            "admission lost a request: {overload:?}"
        );
        assert_eq!(overload.offered_fetches, 16);
        assert!(u64::from(system.config().capacity.queue_limit) >= overload.max_queue_depth);
        // Load subsides: the same fetch a window later is full service.
        // (A membership sweep keeps the heartbeats flowing across the
        // time jump so liveness does not confound the admission check.)
        system.membership_tick(60_000);
        let fetch = system.fetch_close_set_degraded(cluster, member);
        assert_eq!(fetch.level, DegradationLevel::FullAsap);
        assert!(!fetch.shed);
    }

    #[test]
    fn surrogate_load_only_counts_served_requests() {
        let s = scenario();
        let mut config = AsapConfig::default();
        config.capacity.surrogate_budget = 1;
        config.capacity.budget_window_ms = 1000;
        config.capacity.queue_limit = 2;
        config.capacity.queue_deadline_ms = 1000;
        config.capacity.hedge_delay_ms = 10_000;
        let system = AsapSystem::bootstrap(&s, config);
        let cluster = s.population.clustering().clusters()[0].id();
        let member = s.population.cluster_members(cluster)[0];
        for _ in 0..20 {
            let _ = system.fetch_close_set_degraded(cluster, member);
        }
        let overload = system.stats().overload;
        assert!(overload.shed_fetches() > 0);
        // Served requests — and therefore the hot-surrogate load — are
        // bounded by what admission let through, not by what was offered.
        assert_eq!(
            overload.surrogate_requests,
            overload.admitted_fetches + overload.queued_fetches
        );
        assert!(system.hot_surrogate_load() <= overload.surrogate_requests);
        assert_eq!(overload.hot_surrogate_load, system.hot_surrogate_load());
    }

    #[test]
    fn queue_delay_past_hedge_threshold_fans_out_to_a_standby() {
        let s = scenario();
        // Budget 1/s with a deep queue and a hedge delay of one slot:
        // the second instant fetch waits ≥ 1000 ms and must hedge.
        let mut config = AsapConfig::default();
        config.capacity.surrogate_budget = 1;
        config.capacity.budget_window_ms = 1000;
        config.capacity.queue_limit = 32;
        config.capacity.queue_deadline_ms = 60_000;
        config.capacity.hedge_delay_ms = 1000;
        let system = AsapSystem::bootstrap(&s, config);
        let Some(cluster) = cluster_with(&s, 3) else {
            return; // need a standby to hedge to
        };
        let member = s.population.cluster_members(cluster)[0];
        let first = system.fetch_close_set_degraded(cluster, member);
        assert_eq!(first.level, DegradationLevel::FullAsap);
        let second = system.fetch_close_set_degraded(cluster, member);
        assert_eq!(second.level, DegradationLevel::FullAsap);
        assert!(second.set.is_some());
        let overload = system.stats().overload;
        assert_eq!(overload.hedged_fetches, 1, "the queued fetch must hedge");
        assert_eq!(overload.hedge_wins, 1, "no faults: the hedge answer wins");
        assert_eq!(
            second.extra_messages, 2,
            "the hedge leg is exactly one request/reply pair"
        );
        // Both legs are in the ledger under the hedge kinds, attributed
        // to the standby that served them.
        let scope = system.ledger_scope();
        assert_eq!(scope.count(MessageKind::HedgeRequest), 1);
        assert_eq!(scope.count(MessageKind::HedgeReply), 1);
        // A completed hedged fetch is served exactly once: one win, and
        // the primary leg's close set was never rebuilt a second time.
        assert!(overload.hedge_wins <= overload.hedged_fetches);
    }

    #[test]
    fn busy_relays_are_skipped_until_all_are_saturated() {
        let s = scenario();
        let system = AsapSystem::bootstrap(&s, AsapConfig::default());
        let slow = sessions::generate(&s.population, 3000, 2)
            .into_iter()
            .find(|x| s.host_rtt_ms(x.caller, x.callee).is_some_and(|r| r > 300.0));
        let Some(slow) = slow else {
            return; // tiny worlds occasionally have no latent session
        };
        let out = system.call(slow.caller, slow.callee);
        let (Some(selection), Some(chosen)) = (out.selection, out.chosen) else {
            return;
        };
        if chosen.relays.is_empty() {
            return;
        }
        // Saturate the winning relay's slots; the re-pick must spill
        // over to a different relay (or go direct via failover), never
        // re-choose the busy one while alternatives exist.
        let winner = chosen.relays[0];
        let limit = {
            let occupy: Vec<HostId> = vec![winner];
            let mut acquired = 0u32;
            while system.acquire_relays(&occupy).is_empty() {
                acquired += 1;
                assert!(acquired < 10_000, "relay slot limit must be finite");
            }
            acquired
        };
        assert!(limit >= 1, "every host has at least the base slot count");
        assert!(system.relay_busy(winner));
        assert_eq!(system.relay_admission(winner), SlotVerdict::Busy);
        let repick = system.failover_path(slow.caller, slow.callee, &selection, &[]);
        let overload = system.stats().overload;
        assert!(
            overload.relay_busy_skips >= 1,
            "the busy winner was skipped"
        );
        if let Some(path) = repick {
            assert!(
                !path.relays.contains(&winner) || overload.relay_spillovers == 0,
                "spillover re-picked the saturated relay while counting a spillover"
            );
        }
        // Releasing the slots clears the verdict.
        for _ in 0..=limit {
            system.release_relays(&[winner]);
        }
        assert!(!system.relay_busy(winner));
    }

    #[test]
    fn stats_accumulate() {
        let s = scenario();
        let system = AsapSystem::bootstrap(&s, AsapConfig::default());
        let sessions = sessions::generate(&s.population, 10, 3);
        for sess in &sessions {
            system.call(sess.caller, sess.callee);
        }
        let stats = system.stats();
        assert_eq!(stats.calls, 10);
        assert_eq!(stats.direct_calls + stats.relayed_calls, 10);
        // Every call records at least its 2 setup pings in the ledger.
        assert!(system.ledger_scope().count(MessageKind::CallSetup) >= 20);
        assert!(system.ledger_scope().total() >= 20);
    }
}
