//! Property-based tests for AS-graph invariants, valley-free search, and
//! BGP policy routing.

use asap_cluster::Asn;
use asap_topology::routing::BgpRouter;
use asap_topology::{valley, AsGraph, EdgeKind};
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = EdgeKind> {
    prop_oneof![
        3 => Just(EdgeKind::ProviderToCustomer),
        1 => Just(EdgeKind::PeerToPeer),
        1 => Just(EdgeKind::SiblingToSibling),
    ]
}

/// Random annotated graphs over up to 24 ASes.
fn arb_graph() -> impl Strategy<Value = AsGraph> {
    proptest::collection::vec((0u32..24, 0u32..24, arb_kind()), 1..80).prop_map(|edges| {
        let mut g = AsGraph::new();
        for (a, b, k) in edges {
            g.add_edge(Asn(a), Asn(b), k);
        }
        g
    })
}

proptest! {
    #[test]
    fn edge_annotations_are_mirrored(g in arb_graph()) {
        for (a, b, k) in g.edges() {
            prop_assert_eq!(g.edge_kind(b, a), Some(k.reverse()));
        }
    }

    #[test]
    fn degree_equals_neighbor_count_and_edges_sum(g in arb_graph()) {
        let total: usize = g.asns().iter().map(|&a| g.degree(a)).sum();
        prop_assert_eq!(total, 2 * g.edge_count());
    }

    #[test]
    fn bounded_search_hops_agree_with_valley_free_hops(g in arb_graph(), k in 1usize..5) {
        let Some(&origin) = g.asns().first() else { return Ok(()) };
        let reached = valley::bounded_search(&g, origin, k, |_| valley::Expand::Continue);
        for r in &reached {
            prop_assert!(r.hops <= k);
            prop_assert_eq!(valley::valley_free_hops(&g, origin, r.asn, k), Some(r.hops));
        }
        // Completeness: anything with a valley-free distance ≤ k is reached.
        for &dst in g.asns() {
            if dst == origin { continue; }
            if let Some(h) = valley::valley_free_hops(&g, origin, dst, k) {
                prop_assert!(reached.iter().any(|r| r.asn == dst && r.hops == h),
                    "{dst} at {h} hops missing from bounded_search");
            }
        }
    }

    #[test]
    fn policy_routes_are_valley_free_and_loop_free(g in arb_graph()) {
        let mut router = BgpRouter::new();
        let asns: Vec<Asn> = g.asns().to_vec();
        for &d in asns.iter().take(6) {
            for &s in asns.iter().take(12) {
                if let Some(path) = router.path(&g, s, d) {
                    prop_assert!(valley::is_valley_free(&g, &path),
                        "route {:?} has a valley", path);
                    let mut sorted = path.clone();
                    sorted.sort();
                    sorted.dedup();
                    prop_assert_eq!(sorted.len(), path.len(), "route has a loop");
                    prop_assert_eq!(*path.first().unwrap(), s);
                    prop_assert_eq!(*path.last().unwrap(), d);
                }
            }
        }
    }

    #[test]
    fn policy_route_exists_whenever_any_valley_free_path_exists(g in arb_graph()) {
        // BGP with customer/peer/provider export rules finds a route iff a
        // valley-free path exists at all (our propagation is complete).
        let mut router = BgpRouter::new();
        let asns: Vec<Asn> = g.asns().to_vec();
        let n = asns.len();
        for &d in asns.iter().take(4) {
            for &s in asns.iter().take(8) {
                let policy = router.path(&g, s, d).is_some();
                let any = valley::valley_free_hops(&g, s, d, n).is_some();
                prop_assert_eq!(policy, any, "policy route {} vs valley-free path {} for {}->{}", policy, any, s, d);
            }
        }
    }

    #[test]
    fn gao_inference_covers_exactly_observed_adjacencies(
        paths in proptest::collection::vec(
            proptest::collection::vec(0u32..16, 2..6).prop_map(|v| {
                let mut seen = std::collections::HashSet::new();
                v.into_iter().map(Asn).filter(|a| seen.insert(*a)).collect::<Vec<_>>()
            }),
            1..20,
        )
    ) {
        let inf = asap_topology::gao::infer(&paths, &Default::default());
        // Every inferred edge appears on some path, and vice versa.
        let mut observed = std::collections::HashSet::new();
        for p in &paths {
            for w in p.windows(2) {
                let key = if w[0] <= w[1] { (w[0], w[1]) } else { (w[1], w[0]) };
                observed.insert(key);
            }
        }
        let inferred: std::collections::HashSet<(Asn, Asn)> = inf
            .graph
            .edges()
            .map(|(a, b, _)| if a <= b { (a, b) } else { (b, a) })
            .collect();
        prop_assert_eq!(inferred, observed);
    }
}
