//! The valley-free path automaton and bounded valley-free searches.
//!
//! An AS-level route is *valley-free* when it climbs through zero or more
//! customer→provider (or sibling) links, optionally crosses a single
//! peer–peer link, and then descends through provider→customer (or
//! sibling) links. Any other shape would require some AS to transit
//! traffic it is not paid to carry. ASAP's close-cluster-set construction
//! (paper Fig. 9) is a breadth-first search constrained to valley-free
//! extensions, so this module is the heart of the protocol substrate.

use std::collections::{HashMap, VecDeque};

use asap_cluster::Asn;

use crate::graph::{AsGraph, EdgeKind};

/// The state of the valley-free automaton while walking a path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// Still climbing: customer→provider and sibling links allowed; a
    /// peer link or a provider→customer link switches to [`Phase::Down`].
    Up,
    /// Descending: only provider→customer and sibling links allowed.
    Down,
}

impl Phase {
    /// Advances the automaton across one link, returning the new phase or
    /// `None` if the extension would create a valley (or a second peering
    /// link).
    pub fn step(self, kind: EdgeKind) -> Option<Phase> {
        match (self, kind) {
            (Phase::Up, EdgeKind::CustomerToProvider) => Some(Phase::Up),
            (Phase::Up, EdgeKind::SiblingToSibling) => Some(Phase::Up),
            (Phase::Up, EdgeKind::PeerToPeer) => Some(Phase::Down),
            (Phase::Up, EdgeKind::ProviderToCustomer) => Some(Phase::Down),
            (Phase::Down, EdgeKind::ProviderToCustomer) => Some(Phase::Down),
            (Phase::Down, EdgeKind::SiblingToSibling) => Some(Phase::Down),
            (Phase::Down, _) => None,
        }
    }
}

/// Tests whether `path` (a sequence of ASes, each adjacent to the next in
/// `graph`) is a valley-free route. Paths with a missing adjacency are not
/// valley-free. Single-AS and empty paths are trivially valley-free.
pub fn is_valley_free(graph: &AsGraph, path: &[Asn]) -> bool {
    let mut phase = Phase::Up;
    for w in path.windows(2) {
        let Some(kind) = graph.edge_kind(w[0], w[1]) else {
            return false;
        };
        match phase.step(kind) {
            Some(next) => phase = next,
            None => return false,
        }
    }
    true
}

/// An AS reached by [`bounded_search`], with the hop count at which it was
/// first reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reached {
    /// The AS reached.
    pub asn: Asn,
    /// Valley-free AS hops from the search origin.
    pub hops: usize,
}

/// Whether the bounded search should keep extending paths *through* an AS
/// it has just reached. Returned by the visitor passed to
/// [`bounded_search`]; pruning models Fig. 9's latency / loss-rate
/// thresholds (`lat() > latT` stops path expansion without discarding the
/// node itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expand {
    /// Keep extending valley-free paths through this AS.
    Continue,
    /// Record the AS but do not extend paths through it.
    Prune,
}

/// Breadth-first search from `origin` over valley-free paths of at most
/// `max_hops` AS links, invoking `visit` the first time each AS is reached
/// (at its minimal valley-free hop count). `visit` may prune expansion
/// per-AS. The origin itself is not visited.
///
/// The search runs on the product of the graph and the two-phase
/// valley-free automaton, so an AS reachable both on an uphill and a
/// downhill prefix is explored through whichever arrives first — and, at
/// equal hops, through the uphill state, which permits strictly more
/// extensions.
///
/// Returns all reached ASes in visit order.
pub fn bounded_search(
    graph: &AsGraph,
    origin: Asn,
    max_hops: usize,
    mut visit: impl FnMut(Reached) -> Expand,
) -> Vec<Reached> {
    let Some(origin_idx) = graph.index_of(origin) else {
        return Vec::new();
    };
    let n = graph.node_count();
    // seen[phase][node]: already enqueued in this automaton state.
    let mut seen = vec![[false; 2]; n];
    // reported[node]: visitor already invoked for this AS.
    let mut reported = vec![false; n];
    // pruned[node]: visitor asked not to expand through this AS.
    let mut pruned = vec![false; n];
    let mut out = Vec::new();

    let phase_ix = |p: Phase| match p {
        Phase::Up => 0usize,
        Phase::Down => 1,
    };

    let mut queue: VecDeque<(u32, Phase, usize)> = VecDeque::new();
    // Order matters at hop 0 only conceptually; Up is the start state.
    seen[origin_idx as usize][0] = true;
    queue.push_back((origin_idx, Phase::Up, 0));

    while let Some((idx, phase, hops)) = queue.pop_front() {
        if idx != origin_idx && !reported[idx as usize] {
            reported[idx as usize] = true;
            let reached = Reached {
                asn: graph.asn_at(idx),
                hops,
            };
            if visit(reached) == Expand::Prune {
                pruned[idx as usize] = true;
            }
            out.push(reached);
        }
        if hops == max_hops || (idx != origin_idx && pruned[idx as usize]) {
            continue;
        }
        for &(next, kind) in graph.neighbors_idx(idx) {
            let Some(next_phase) = phase.step(kind) else {
                continue;
            };
            let slot = &mut seen[next as usize][phase_ix(next_phase)];
            if !*slot {
                *slot = true;
                queue.push_back((next, next_phase, hops + 1));
            }
        }
    }
    out
}

/// Like [`bounded_search`], but ignoring the valley-free constraint: a
/// plain breadth-first search over the undirected AS graph. Used by
/// ablation experiments to quantify what policy-awareness buys — the
/// unconstrained ball is larger, but the extra ASes are reached over
/// paths BGP would never realize.
pub fn bounded_search_unconstrained(
    graph: &AsGraph,
    origin: Asn,
    max_hops: usize,
    mut visit: impl FnMut(Reached) -> Expand,
) -> Vec<Reached> {
    let Some(origin_idx) = graph.index_of(origin) else {
        return Vec::new();
    };
    let n = graph.node_count();
    let mut seen = vec![false; n];
    let mut pruned = vec![false; n];
    let mut out = Vec::new();
    let mut queue: VecDeque<(u32, usize)> = VecDeque::new();
    seen[origin_idx as usize] = true;
    queue.push_back((origin_idx, 0));
    while let Some((idx, hops)) = queue.pop_front() {
        if idx != origin_idx {
            let reached = Reached {
                asn: graph.asn_at(idx),
                hops,
            };
            if visit(reached) == Expand::Prune {
                pruned[idx as usize] = true;
            }
            out.push(reached);
        }
        if hops == max_hops || (idx != origin_idx && pruned[idx as usize]) {
            continue;
        }
        for &(next, _) in graph.neighbors_idx(idx) {
            if !seen[next as usize] {
                seen[next as usize] = true;
                queue.push_back((next, hops + 1));
            }
        }
    }
    out
}

/// The minimal number of AS links on a valley-free path from `src` to
/// `dst`, if one of at most `max_hops` links exists.
///
/// The paper (citing Mao et al., SIGMETRICS'05) uses shortest valley-free
/// AS-hop paths as a reasonably accurate stand-in for actual BGP paths,
/// and observes that >90% of sessions with direct RTT below 300 ms cross
/// no more than 4 AS hops — the justification for `k = 4` in
/// `construct-close-cluster-set()`.
pub fn valley_free_hops(graph: &AsGraph, src: Asn, dst: Asn, max_hops: usize) -> Option<usize> {
    if src == dst {
        return Some(0);
    }
    let mut found = None;
    bounded_search(graph, src, max_hops, |r| {
        if r.asn == dst && found.is_none() {
            found = Some(r.hops);
        }
        Expand::Continue
    });
    found
}

/// All valley-free hop distances from `src` within `max_hops` links, as
/// a map from destination AS to its minimal hop count (the origin is
/// included at 0 hops). One bounded search answers every destination —
/// the precomputation [`ValleyHopsCache`] memoizes.
pub fn valley_free_hops_from(
    graph: &AsGraph,
    src: Asn,
    max_hops: usize,
) -> std::collections::BTreeMap<Asn, usize> {
    let mut dist = std::collections::BTreeMap::new();
    if graph.index_of(src).is_some() {
        dist.insert(src, 0);
    }
    bounded_search(graph, src, max_hops, |r| {
        dist.entry(r.asn).or_insert(r.hops);
        Expand::Continue
    });
    dist
}

/// Memoized valley-free hop distances, keyed by `(origin, max_hops)`.
///
/// `construct-close-cluster-set()` and the evaluation figures ask for
/// `valley_free_hops(src, dst)` for many destinations per source; each
/// uncached query walks a full bounded search. The cache runs the
/// search once per origin and answers every later `(src, *, max_hops)`
/// query from the stored distance vector in O(log n). Hit/miss counters
/// make cache effectiveness observable from benchmarks.
///
/// The cache holds distances for one immutable graph; rebuild it (or
/// drop it) whenever the topology changes.
#[derive(Debug, Default)]
pub struct ValleyHopsCache {
    vectors: std::sync::Mutex<HashMap<(Asn, usize), std::collections::BTreeMap<Asn, usize>>>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

impl ValleyHopsCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// [`valley_free_hops`] through the cache: the first query for an
    /// `(src, max_hops)` origin runs the bounded search; repeats are
    /// answered from the memoized distance vector.
    pub fn hops(&self, graph: &AsGraph, src: Asn, dst: Asn, max_hops: usize) -> Option<usize> {
        use std::sync::atomic::Ordering;
        let mut vectors = self.vectors.lock().expect("valley cache lock");
        if let Some(dist) = vectors.get(&(src, max_hops)) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return dist.get(&dst).copied();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let dist = valley_free_hops_from(graph, src, max_hops);
        let answer = dist.get(&dst).copied();
        vectors.insert((src, max_hops), dist);
        answer
    }

    /// `(hits, misses)` recorded so far.
    pub fn stats(&self) -> (u64, u64) {
        use std::sync::atomic::Ordering;
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of memoized origin vectors.
    pub fn len(&self) -> usize {
        self.vectors.lock().expect("valley cache lock").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every memoized vector (keeps the hit/miss counters).
    pub fn clear(&self) {
        self.vectors.lock().expect("valley cache lock").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the annotated graph from the paper's Fig. 4 (right):
    /// a multi-homed stub B under providers D and E shortens the path
    /// between stubs A (under D) and C (under E).
    fn multihomed_fixture() -> AsGraph {
        let mut g = AsGraph::new();
        let p2c = EdgeKind::ProviderToCustomer;
        // Core chain D - F - H - I - G - E (peers at the top).
        g.add_edge(Asn(4), Asn(6), EdgeKind::PeerToPeer); // D-F
        g.add_edge(Asn(6), Asn(8), EdgeKind::CustomerToProvider); // F-H
        g.add_edge(Asn(8), Asn(9), EdgeKind::PeerToPeer); // H-I
        g.add_edge(Asn(9), Asn(7), EdgeKind::ProviderToCustomer); // I-G
        g.add_edge(Asn(7), Asn(5), EdgeKind::PeerToPeer); // G-E
                                                          // Stubs.
        g.add_edge(Asn(4), Asn(1), p2c); // D -> A
        g.add_edge(Asn(5), Asn(3), p2c); // E -> C
                                         // Multi-homed B under both D and E.
        g.add_edge(Asn(4), Asn(2), p2c); // D -> B
        g.add_edge(Asn(5), Asn(2), p2c); // E -> B
        g
    }

    #[test]
    fn phase_automaton_truth_table() {
        use EdgeKind::*;
        assert_eq!(Phase::Up.step(CustomerToProvider), Some(Phase::Up));
        assert_eq!(Phase::Up.step(SiblingToSibling), Some(Phase::Up));
        assert_eq!(Phase::Up.step(PeerToPeer), Some(Phase::Down));
        assert_eq!(Phase::Up.step(ProviderToCustomer), Some(Phase::Down));
        assert_eq!(Phase::Down.step(ProviderToCustomer), Some(Phase::Down));
        assert_eq!(Phase::Down.step(SiblingToSibling), Some(Phase::Down));
        assert_eq!(Phase::Down.step(CustomerToProvider), None);
        assert_eq!(Phase::Down.step(PeerToPeer), None);
    }

    #[test]
    fn up_peer_down_is_valley_free() {
        let g = multihomed_fixture();
        // A -> D -> F: climb then peer: ok.
        assert!(is_valley_free(&g, &[Asn(1), Asn(4), Asn(6)]));
        // A -> D -> B -> E -> C: the multi-homed shortcut is NOT valley-free
        // (B would transit for its providers)...
        assert!(!is_valley_free(
            &g,
            &[Asn(1), Asn(4), Asn(2), Asn(5), Asn(3)]
        ));
        // ...which is exactly why B must act as an *application-layer relay*
        // (the overlay hop restarts the automaton at B).
        assert!(is_valley_free(&g, &[Asn(1), Asn(4), Asn(2)]));
        assert!(is_valley_free(&g, &[Asn(2), Asn(5), Asn(3)]));
    }

    #[test]
    fn two_peer_links_are_rejected() {
        let mut g = AsGraph::new();
        g.add_edge(Asn(1), Asn(2), EdgeKind::PeerToPeer);
        g.add_edge(Asn(2), Asn(3), EdgeKind::PeerToPeer);
        assert!(!is_valley_free(&g, &[Asn(1), Asn(2), Asn(3)]));
    }

    #[test]
    fn missing_adjacency_is_not_valley_free() {
        let g = multihomed_fixture();
        assert!(!is_valley_free(&g, &[Asn(1), Asn(3)]));
    }

    #[test]
    fn trivial_paths_are_valley_free() {
        let g = multihomed_fixture();
        assert!(is_valley_free(&g, &[]));
        assert!(is_valley_free(&g, &[Asn(1)]));
    }

    #[test]
    fn bounded_search_respects_hop_limit() {
        let g = multihomed_fixture();
        let reached = bounded_search(&g, Asn(1), 1, |_| Expand::Continue);
        assert_eq!(reached.len(), 1);
        assert_eq!(
            reached[0],
            Reached {
                asn: Asn(4),
                hops: 1
            }
        );
    }

    #[test]
    fn bounded_search_reports_minimal_hops() {
        let g = multihomed_fixture();
        let reached = bounded_search(&g, Asn(1), 4, |_| Expand::Continue);
        let hops_of = |a: u32| reached.iter().find(|r| r.asn == Asn(a)).map(|r| r.hops);
        assert_eq!(hops_of(4), Some(1)); // D
        assert_eq!(hops_of(2), Some(2)); // B via D
        assert_eq!(hops_of(6), Some(2)); // F via D (peer)
                                         // C is NOT reachable valley-free from A within 4 hops: the only
                                         // policy-compliant route climbs A-D, peers D-F... but F-H is c2p
                                         // after a peer link — invalid. The uphill route A-D is peer-limited.
        assert_eq!(hops_of(3), None);
    }

    #[test]
    fn pruning_stops_expansion_but_keeps_node() {
        let g = multihomed_fixture();
        // Prune at D: B and F should become unreachable.
        let reached = bounded_search(&g, Asn(1), 4, |r| {
            if r.asn == Asn(4) {
                Expand::Prune
            } else {
                Expand::Continue
            }
        });
        assert_eq!(reached.len(), 1);
        assert_eq!(reached[0].asn, Asn(4));
    }

    #[test]
    fn unconstrained_search_supersets_valley_free() {
        let g = multihomed_fixture();
        let vf = bounded_search(&g, Asn(1), 4, |_| Expand::Continue);
        let un = bounded_search_unconstrained(&g, Asn(1), 4, |_| Expand::Continue);
        assert!(un.len() >= vf.len());
        for r in &vf {
            let u = un
                .iter()
                .find(|x| x.asn == r.asn)
                .expect("vf-reachable is plain-reachable");
            assert!(u.hops <= r.hops);
        }
        // C (AS 3) is plain-reachable but not valley-free-reachable.
        assert!(un.iter().any(|r| r.asn == Asn(3)));
        assert!(!vf.iter().any(|r| r.asn == Asn(3)));
    }

    #[test]
    fn valley_free_hops_basics() {
        let g = multihomed_fixture();
        assert_eq!(valley_free_hops(&g, Asn(1), Asn(1), 4), Some(0));
        assert_eq!(valley_free_hops(&g, Asn(1), Asn(2), 4), Some(2));
        assert_eq!(valley_free_hops(&g, Asn(1), Asn(3), 6), None);
        assert_eq!(valley_free_hops(&g, Asn(2), Asn(3), 4), Some(2));
    }

    #[test]
    fn search_from_absent_origin_is_empty() {
        let g = multihomed_fixture();
        assert!(bounded_search(&g, Asn(999), 4, |_| Expand::Continue).is_empty());
    }

    #[test]
    fn uphill_state_preferred_at_equal_hops() {
        // Diamond where X is reachable at 2 hops both downhill (via P) and
        // uphill (via Q); continuing past X must still be possible uphill.
        let mut g = AsGraph::new();
        let c2p = EdgeKind::CustomerToProvider;
        g.add_edge(Asn(0), Asn(1), c2p); // origin -> Q (up)
        g.add_edge(Asn(1), Asn(2), c2p); // Q -> X (up)
        g.add_edge(Asn(0), Asn(3), EdgeKind::PeerToPeer); // origin - P
        g.add_edge(Asn(3), Asn(2), EdgeKind::ProviderToCustomer); // P -> X (down)
        g.add_edge(Asn(2), Asn(4), c2p); // X -> top (only valid uphill)
        let reached = bounded_search(&g, Asn(0), 3, |_| Expand::Continue);
        assert!(
            reached.iter().any(|r| r.asn == Asn(4)),
            "must keep climbing through X"
        );
    }

    #[test]
    fn hops_from_matches_pointwise_queries() {
        let g = multihomed_fixture();
        for max_hops in [1, 2, 4, 6] {
            let dist = valley_free_hops_from(&g, Asn(1), max_hops);
            for &dst in g.asns() {
                assert_eq!(
                    dist.get(&dst).copied(),
                    valley_free_hops(&g, Asn(1), dst, max_hops),
                    "origin 1 -> {dst} at max {max_hops}"
                );
            }
        }
    }

    #[test]
    fn cache_answers_match_uncached_and_hits_accumulate() {
        let g = multihomed_fixture();
        let cache = ValleyHopsCache::new();
        let asns: Vec<Asn> = g.asns().to_vec();
        for &src in &asns {
            for &dst in &asns {
                assert_eq!(
                    cache.hops(&g, src, dst, 4),
                    valley_free_hops(&g, src, dst, 4),
                    "{src} -> {dst}"
                );
            }
        }
        let (hits, misses) = cache.stats();
        // One miss per origin, everything else served from the vector.
        assert_eq!(misses, asns.len() as u64);
        assert_eq!(hits, (asns.len() * asns.len()) as u64 - misses);
        assert_eq!(cache.len(), asns.len());
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn cache_keys_include_hop_bound() {
        let g = multihomed_fixture();
        let cache = ValleyHopsCache::new();
        // A tight bound must not poison queries with a looser one.
        assert_eq!(cache.hops(&g, Asn(1), Asn(2), 1), None);
        assert_eq!(cache.hops(&g, Asn(1), Asn(2), 4), Some(2));
    }
}
