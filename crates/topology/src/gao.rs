//! Gao's AS-relationship inference algorithm.
//!
//! The paper annotates its AS graph "using the inferring AS relationships
//! algorithm in \[9\]" — L. Gao, *On inferring autonomous system
//! relationships in the Internet*, IEEE/ACM ToN 2001. Gao's insight is
//! that BGP AS paths are valley-free, so each path has a single *top
//! provider* (heuristically, the AS of highest degree on the path): every
//! link before it goes customer→provider, every link after it goes
//! provider→customer, and links where both directions are observed
//! belong to sibling ASes. Peering links can only appear adjacent to the
//! top provider and connect ASes of comparable size.
//!
//! This module implements the three phases on a set of AS paths (from
//! [`crate::rib`]) and reports inference accuracy against a ground-truth
//! graph where one is available.

use std::collections::HashMap;

use asap_cluster::Asn;

use crate::graph::{AsGraph, EdgeKind};

/// Tunables of the inference.
#[derive(Debug, Clone)]
pub struct GaoConfig {
    /// Degree ratio below which a non-transit top link is classified as a
    /// peering link (Gao's `R`; she evaluates R ∈ [1, 60]).
    pub peering_degree_ratio: f64,
    /// Minimum number of path observations before a transit claim is
    /// trusted (Gao's `L` threshold separating sibling misclassification
    /// from noise).
    pub transit_threshold: usize,
}

impl Default for GaoConfig {
    fn default() -> Self {
        GaoConfig {
            peering_degree_ratio: 60.0,
            transit_threshold: 2,
        }
    }
}

/// The outcome of running the inference.
#[derive(Debug, Clone)]
pub struct Inference {
    /// The inferred annotated AS graph (contains exactly the adjacencies
    /// observed on the input paths).
    pub graph: AsGraph,
    /// Degree of each AS as observed on the input paths (Gao uses this to
    /// locate top providers; it underestimates true degree when the RIB
    /// view is partial).
    pub observed_degree: HashMap<Asn, usize>,
}

/// Runs Gao's inference over `paths` (each a loop-free AS path as recorded
/// in a RIB).
pub fn infer(paths: &[Vec<Asn>], config: &GaoConfig) -> Inference {
    // Phase 0: observed degrees from path adjacencies.
    let mut neighbors: HashMap<Asn, Vec<Asn>> = HashMap::new();
    for path in paths {
        for w in path.windows(2) {
            if w[0] == w[1] {
                continue;
            }
            let e = neighbors.entry(w[0]).or_default();
            if !e.contains(&w[1]) {
                e.push(w[1]);
            }
            let e = neighbors.entry(w[1]).or_default();
            if !e.contains(&w[0]) {
                e.push(w[0]);
            }
        }
    }
    let degree: HashMap<Asn, usize> = neighbors.iter().map(|(&a, n)| (a, n.len())).collect();
    let deg = |a: Asn| degree.get(&a).copied().unwrap_or(0);

    // Phase 1: for every path, the highest-degree AS is the top provider.
    // Count transit observations: transit[(u, v)] = number of paths
    // showing u providing transit *to* v (the pair appears on the uphill
    // side as (v, u) or on the downhill side as (u, v)).
    let mut transit: HashMap<(Asn, Asn), usize> = HashMap::new();
    // Phase 3 bookkeeping: edges ruled out as peering. An edge can only be
    // a peering link if, in *every* path it appears on, it is adjacent to
    // the top provider — and of the two top-adjacent edges, only the one
    // whose outer endpoint has the larger degree can be the peering link
    // (peers have comparable size; the other side is a customer).
    let mut seen_edges: Vec<(Asn, Asn)> = Vec::new();
    let mut not_peering: HashMap<(Asn, Asn), bool> = HashMap::new();
    let key = |a: Asn, b: Asn| if a <= b { (a, b) } else { (b, a) };
    for path in paths {
        if path.len() < 2 {
            continue;
        }
        let top = (0..path.len())
            .max_by(|&i, &j| {
                deg(path[i])
                    .cmp(&deg(path[j]))
                    .then_with(|| path[j].cmp(&path[i]))
            })
            .expect("non-empty path");
        for i in 0..path.len() - 1 {
            let (a, b) = (path[i], path[i + 1]);
            let k = key(a, b);
            if let std::collections::hash_map::Entry::Vacant(e) = not_peering.entry(k) {
                seen_edges.push(k);
                e.insert(false);
            }
            if i + 1 < top || i > top {
                // Not adjacent to the top provider: cannot be peering.
                not_peering.insert(k, true);
            }
            if i < top {
                // Uphill: b provides transit to a.
                *transit.entry((b, a)).or_insert(0) += 1;
            } else {
                // Downhill: a provides transit to b.
                *transit.entry((a, b)).or_insert(0) += 1;
            }
        }
        // Of the two edges adjacent to the top, rule out the one whose
        // outer endpoint is smaller (ties rule out both).
        if top > 0 && top + 1 < path.len() {
            let (left_outer, right_outer) = (path[top - 1], path[top + 1]);
            if deg(left_outer) <= deg(right_outer) {
                not_peering.insert(key(left_outer, path[top]), true);
            }
            if deg(right_outer) <= deg(left_outer) {
                not_peering.insert(key(path[top], right_outer), true);
            }
        }
    }

    // Phases 2+3: classify every observed adjacency. Mutual transit ⇒
    // sibling; surviving peering candidates with comparable degree ⇒ peer
    // (overriding a transit-based assignment, per Gao's phase 3); otherwise
    // the transit direction (or, lacking one, relative degree) decides the
    // provider.
    let mut graph = AsGraph::new();
    let l = |n: Option<&usize>| n.copied().unwrap_or(0);
    for &(a, b) in &seen_edges {
        let t_ab = l(transit.get(&(a, b))); // a transits for b → a provider of b
        let t_ba = l(transit.get(&(b, a)));
        let (da, db) = (deg(a).max(1) as f64, deg(b).max(1) as f64);
        let ratio = if da > db { da / db } else { db / da };
        let peer_candidate = !not_peering[&(a, b)] && ratio <= config.peering_degree_ratio;
        let kind_from_a = if t_ab >= config.transit_threshold && t_ba >= config.transit_threshold {
            EdgeKind::SiblingToSibling
        } else if peer_candidate {
            EdgeKind::PeerToPeer
        } else if t_ab > t_ba {
            EdgeKind::ProviderToCustomer
        } else if t_ba > t_ab {
            EdgeKind::CustomerToProvider
        } else if da >= db {
            EdgeKind::ProviderToCustomer
        } else {
            EdgeKind::CustomerToProvider
        };
        graph.add_edge(a, b, kind_from_a);
    }

    Inference {
        graph,
        observed_degree: degree,
    }
}

/// Per-kind confusion summary of an inference against ground truth.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Accuracy {
    /// Adjacencies present in both graphs.
    pub compared: usize,
    /// Of those, annotated identically.
    pub correct: usize,
}

impl Accuracy {
    /// Fraction of compared adjacencies annotated correctly (1.0 when
    /// nothing was compared).
    pub fn ratio(&self) -> f64 {
        if self.compared == 0 {
            1.0
        } else {
            self.correct as f64 / self.compared as f64
        }
    }
}

/// Compares an inferred graph against ground truth over their common
/// adjacencies.
pub fn accuracy(inferred: &AsGraph, truth: &AsGraph) -> Accuracy {
    let mut acc = Accuracy::default();
    for (a, b, kind) in inferred.edges() {
        if let Some(true_kind) = truth.edge_kind(a, b) {
            acc.compared += 1;
            if true_kind == kind {
                acc.correct += 1;
            }
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{InternetConfig, InternetGenerator};
    use crate::rib::{collect_rib, RibConfig};
    use asap_cluster::{Ip, Prefix};

    #[test]
    fn infers_chain_relationships() {
        // Ground truth: core AS 0 (degree boosted by extra stubs) provides
        // to 1, 1 provides to 2, 2 provides to 3. Provider links appear in
        // the middle of paths whose top is the core AS, so Gao's phase 3
        // rules them out as peering candidates.
        let paths = vec![
            vec![Asn(3), Asn(2), Asn(1), Asn(0)], // uphill all the way
            vec![Asn(3), Asn(2), Asn(1), Asn(0), Asn(10)], // down to stub 10
            vec![Asn(10), Asn(0), Asn(11)],       // 0's degree grows
            vec![Asn(10), Asn(0), Asn(12)],
            vec![Asn(10), Asn(0), Asn(13)],
            // A path crossing 0's even bigger peer 9 puts the 0–1 link in
            // the middle (past the top), ruling it out as peering.
            vec![Asn(21), Asn(9), Asn(0), Asn(1), Asn(2)],
            vec![Asn(30), Asn(9), Asn(31)],
            vec![Asn(32), Asn(9), Asn(33)],
            vec![Asn(34), Asn(9), Asn(35)],
            vec![Asn(36), Asn(9), Asn(37)],
        ];
        let inf = infer(&paths, &GaoConfig::default());
        assert_eq!(
            inf.graph.edge_kind(Asn(0), Asn(1)),
            Some(EdgeKind::ProviderToCustomer)
        );
        assert_eq!(
            inf.graph.edge_kind(Asn(1), Asn(2)),
            Some(EdgeKind::ProviderToCustomer)
        );
        assert_eq!(
            inf.graph.edge_kind(Asn(2), Asn(3)),
            Some(EdgeKind::ProviderToCustomer)
        );
        assert_eq!(
            inf.graph.edge_kind(Asn(0), Asn(10)),
            Some(EdgeKind::ProviderToCustomer)
        );
    }

    #[test]
    fn infers_siblings_from_mutual_transit() {
        // 5 and 6 transit for each other (each appears providing transit
        // to the other across different paths).
        let paths = vec![
            // Path stub→5→6→1: top is 1 (highest degree), so the 5–6 link
            // is uphill: 6 transits for 5. Two observations each way so the
            // default transit threshold is met.
            vec![Asn(20), Asn(5), Asn(6), Asn(1)],
            vec![Asn(22), Asn(5), Asn(6), Asn(1)],
            // Path stub→6→5→1: 5 transits for 6.
            vec![Asn(21), Asn(6), Asn(5), Asn(1)],
            vec![Asn(23), Asn(6), Asn(5), Asn(1)],
            // Give AS 1 a big degree.
            vec![Asn(30), Asn(1), Asn(31)],
            vec![Asn(32), Asn(1), Asn(33)],
            vec![Asn(34), Asn(1), Asn(35)],
        ];
        let inf = infer(&paths, &GaoConfig::default());
        assert_eq!(
            inf.graph.edge_kind(Asn(5), Asn(6)),
            Some(EdgeKind::SiblingToSibling)
        );
    }

    #[test]
    fn infers_peering_at_the_top() {
        // Two providers 1 and 2 of equal degree exchanging customer routes:
        // path stub(10)→1→2→stub(20). Top link 1-2 carries no transit in
        // either direction across paths (1 never above 2 or vice versa
        // beyond the top), so it is classified peering.
        let paths = vec![
            vec![Asn(10), Asn(1), Asn(2), Asn(20)],
            vec![Asn(20), Asn(2), Asn(1), Asn(10)],
            vec![Asn(11), Asn(1), Asn(12)],
            vec![Asn(21), Asn(2), Asn(22)],
        ];
        let inf = infer(&paths, &GaoConfig::default());
        assert_eq!(
            inf.graph.edge_kind(Asn(1), Asn(2)),
            Some(EdgeKind::PeerToPeer)
        );
    }

    #[test]
    fn empty_and_single_as_paths_are_ignored() {
        let inf = infer(&[vec![], vec![Asn(1)]], &GaoConfig::default());
        assert_eq!(inf.graph.node_count(), 0);
    }

    #[test]
    fn end_to_end_inference_on_synthetic_internet_is_accurate() {
        let net = InternetGenerator::new(InternetConfig::tiny(), 21).generate();
        let stubs = net.stub_asns();
        let announcements: Vec<(Prefix, Asn)> = stubs
            .iter()
            .enumerate()
            .map(|(i, &asn)| (Prefix::new(Ip::from_octets([10, 0, i as u8, 0]), 24), asn))
            .collect();
        let rib = collect_rib(
            &net.graph,
            &announcements,
            &RibConfig {
                vantage_points: 25,
                seed: 2,
            },
        );
        let paths: Vec<Vec<Asn>> = rib.iter().map(|e| e.as_path.clone()).collect();
        let inf = infer(&paths, &GaoConfig::default());
        let acc = accuracy(&inf.graph, &net.graph);
        assert!(
            acc.compared > 50,
            "too few comparable edges: {}",
            acc.compared
        );
        assert!(
            acc.ratio() > 0.85,
            "inference accuracy {:.2} below 0.85 over {} edges",
            acc.ratio(),
            acc.compared
        );
    }

    #[test]
    fn accuracy_of_identical_graphs_is_one() {
        let mut g = AsGraph::new();
        g.add_edge(Asn(1), Asn(2), EdgeKind::ProviderToCustomer);
        let acc = accuracy(&g, &g);
        assert_eq!(acc.compared, 1);
        assert_eq!(acc.ratio(), 1.0);
    }
}
