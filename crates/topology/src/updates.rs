//! BGP update streams and incremental table maintenance.
//!
//! The paper's bootstrap nodes build their tables "from BGP routing table
//! entries and BGP updates" and keep the AS graph "up-to-date"; §6.3 then
//! argues the load is low because "BGP routing tables do not change
//! frequently". This module provides both halves of that story:
//!
//! * [`UpdateGenerator`] synthesizes a realistic update stream over a
//!   synthetic Internet — route flaps (withdraw + re-announce), path
//!   changes, and occasional origin changes;
//! * [`RibMirror`] is what a bootstrap runs: it applies updates
//!   incrementally, keeping the prefix→origin table and the observed
//!   adjacency set current without rebuilding anything.

use std::collections::HashMap;

use asap_cluster::{Asn, Prefix, PrefixTable};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::graph::AsGraph;
use crate::rib::RibEntry;
use crate::routing::BgpRouter;

/// One BGP update message with its (virtual) timestamp in seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct BgpUpdate {
    /// Seconds since the start of the collection window.
    pub at_secs: u64,
    /// The update body.
    pub kind: UpdateKind,
}

/// The body of a BGP update.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateKind {
    /// A (re-)announcement of `prefix` with a full AS path (origin last).
    Announce {
        /// The announced prefix.
        prefix: Prefix,
        /// AS path from the vantage point to the origin.
        as_path: Vec<Asn>,
    },
    /// A withdrawal of `prefix`.
    Withdraw {
        /// The withdrawn prefix.
        prefix: Prefix,
    },
}

/// Configuration of the synthetic update stream.
#[derive(Debug, Clone)]
pub struct UpdateConfig {
    /// Length of the collection window in seconds.
    pub window_secs: u64,
    /// Expected number of route flaps (withdraw, then re-announce ~30 s
    /// later) per prefix over the window.
    pub flaps_per_prefix: f64,
    /// Expected number of path-change re-announcements per prefix.
    pub path_changes_per_prefix: f64,
    /// Probability that a prefix changes origin once during the window
    /// (acquisitions, address transfers — rare).
    pub origin_change_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for UpdateConfig {
    fn default() -> Self {
        UpdateConfig {
            window_secs: 86_400,
            flaps_per_prefix: 0.05,
            path_changes_per_prefix: 0.2,
            origin_change_prob: 0.002,
            seed: 0,
        }
    }
}

/// Synthesizes BGP update streams from an initial RIB.
#[derive(Debug)]
pub struct UpdateGenerator<'a> {
    graph: &'a AsGraph,
    config: UpdateConfig,
}

impl<'a> UpdateGenerator<'a> {
    /// Creates a generator over `graph`.
    pub fn new(graph: &'a AsGraph, config: UpdateConfig) -> Self {
        UpdateGenerator { graph, config }
    }

    /// Generates a time-sorted update stream for the prefixes of an
    /// initial RIB (single-vantage view: the first path per prefix wins).
    pub fn generate(&self, initial: &[RibEntry]) -> Vec<BgpUpdate> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut router = BgpRouter::new();
        let mut updates = Vec::new();
        let mut seen: HashMap<Prefix, &RibEntry> = HashMap::new();
        for e in initial {
            seen.entry(e.prefix).or_insert(e);
        }

        for (&prefix, entry) in &seen {
            let vantage = entry.as_path[0];
            // Route flaps: withdraw, re-announce half a minute later.
            let flaps = poissonish(&mut rng, self.config.flaps_per_prefix);
            for _ in 0..flaps {
                let at = rng.gen_range(0..self.config.window_secs.saturating_sub(60).max(1));
                updates.push(BgpUpdate {
                    at_secs: at,
                    kind: UpdateKind::Withdraw { prefix },
                });
                updates.push(BgpUpdate {
                    at_secs: at + rng.gen_range(10..60),
                    kind: UpdateKind::Announce {
                        prefix,
                        as_path: entry.as_path.clone(),
                    },
                });
            }
            // Path changes: re-announce with a perturbed path (the vantage
            // hears the route through a different neighbor). We emulate by
            // recomputing the path from a random other vantage.
            let changes = poissonish(&mut rng, self.config.path_changes_per_prefix);
            for _ in 0..changes {
                let alt_vantage = *self.graph.asns().choose(&mut rng).expect("graph has nodes");
                if let Some(path) = router.path(self.graph, alt_vantage, entry.origin()) {
                    updates.push(BgpUpdate {
                        at_secs: rng.gen_range(0..self.config.window_secs.max(1)),
                        kind: UpdateKind::Announce {
                            prefix,
                            as_path: path,
                        },
                    });
                }
            }
            // Rare origin change: the prefix moves to a random other AS.
            if rng.gen_bool(self.config.origin_change_prob) {
                let new_origin = *self.graph.asns().choose(&mut rng).unwrap();
                if let Some(path) = router.path(self.graph, vantage, new_origin) {
                    updates.push(BgpUpdate {
                        at_secs: rng.gen_range(0..self.config.window_secs.max(1)),
                        kind: UpdateKind::Announce {
                            prefix,
                            as_path: path,
                        },
                    });
                }
            }
        }
        updates.sort_by_key(|u| u.at_secs);
        updates
    }
}

/// Approximate Poisson sampling good enough for small rates.
fn poissonish(rng: &mut StdRng, rate: f64) -> usize {
    let mut n = rate.floor() as usize;
    if rng.gen_bool(rate.fract().clamp(0.0, 1.0)) {
        n += 1;
    }
    n
}

/// A bootstrap's live mirror of the routing table: the prefix→origin
/// mapping plus the adjacency set observed on AS paths, maintained
/// incrementally from updates.
#[derive(Debug, Default)]
pub struct RibMirror {
    table: PrefixTable,
    paths: HashMap<Prefix, Vec<Asn>>,
    /// Counters for the §6.3 load story.
    pub announcements_applied: u64,
    /// Withdrawals applied.
    pub withdrawals_applied: u64,
}

impl RibMirror {
    /// Starts from an initial RIB (first entry per prefix wins, matching
    /// a single-vantage bootstrap).
    pub fn from_rib(initial: &[RibEntry]) -> Self {
        let mut mirror = RibMirror::default();
        for e in initial {
            if !mirror.paths.contains_key(&e.prefix) {
                mirror.table.insert(e.prefix, e.origin());
                mirror.paths.insert(e.prefix, e.as_path.clone());
            }
        }
        mirror
    }

    /// Applies one update.
    pub fn apply(&mut self, update: &BgpUpdate) {
        match &update.kind {
            UpdateKind::Announce { prefix, as_path } => {
                let origin = *as_path.last().expect("announcement with empty path");
                self.table.insert(*prefix, origin);
                self.paths.insert(*prefix, as_path.clone());
                self.announcements_applied += 1;
            }
            UpdateKind::Withdraw { prefix } => {
                self.table.remove(*prefix);
                self.paths.remove(prefix);
                self.withdrawals_applied += 1;
            }
        }
    }

    /// The current prefix → origin-AS table.
    pub fn table(&self) -> &PrefixTable {
        &self.table
    }

    /// The current AS path towards `prefix`, if announced.
    pub fn path_of(&self, prefix: Prefix) -> Option<&[Asn]> {
        self.paths.get(&prefix).map(Vec::as_slice)
    }

    /// The set of AS adjacencies currently observed on announced paths —
    /// the raw material for keeping the annotated AS graph up to date.
    pub fn current_adjacencies(&self) -> Vec<(Asn, Asn)> {
        let mut edges: Vec<(Asn, Asn)> = self
            .paths
            .values()
            .flat_map(|p| p.windows(2))
            .map(|w| {
                if w[0] <= w[1] {
                    (w[0], w[1])
                } else {
                    (w[1], w[0])
                }
            })
            .collect();
        edges.sort_unstable();
        edges.dedup();
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{InternetConfig, InternetGenerator};
    use crate::rib::{collect_rib, RibConfig};
    use asap_cluster::Ip;

    fn setup() -> (crate::gen::SyntheticInternet, Vec<RibEntry>) {
        let net = InternetGenerator::new(InternetConfig::tiny(), 8).generate();
        let stubs = net.stub_asns();
        let announcements: Vec<(Prefix, Asn)> = stubs
            .iter()
            .enumerate()
            .map(|(i, &a)| (Prefix::new(Ip::from_octets([10, 0, i as u8, 0]), 24), a))
            .collect();
        let rib = collect_rib(
            &net.graph,
            &announcements,
            &RibConfig {
                vantage_points: 6,
                seed: 3,
            },
        );
        (net, rib)
    }

    #[test]
    fn mirror_tracks_announce_and_withdraw() {
        let (_, rib) = setup();
        let mut mirror = RibMirror::from_rib(&rib);
        let prefix = rib[0].prefix;
        let origin = rib[0].origin();
        assert_eq!(mirror.table().origin_of_prefix(prefix), Some(origin));

        mirror.apply(&BgpUpdate {
            at_secs: 1,
            kind: UpdateKind::Withdraw { prefix },
        });
        assert_eq!(mirror.table().origin_of_prefix(prefix), None);
        assert_eq!(mirror.path_of(prefix), None);

        mirror.apply(&BgpUpdate {
            at_secs: 2,
            kind: UpdateKind::Announce {
                prefix,
                as_path: rib[0].as_path.clone(),
            },
        });
        assert_eq!(mirror.table().origin_of_prefix(prefix), Some(origin));
        assert_eq!(mirror.withdrawals_applied, 1);
        assert_eq!(mirror.announcements_applied, 1);
    }

    #[test]
    fn generated_stream_is_time_sorted_and_flaps_recover() {
        let (net, rib) = setup();
        let config = UpdateConfig {
            flaps_per_prefix: 1.0,
            seed: 5,
            ..Default::default()
        };
        let updates = UpdateGenerator::new(&net.graph, config).generate(&rib);
        assert!(!updates.is_empty());
        for w in updates.windows(2) {
            assert!(w[0].at_secs <= w[1].at_secs);
        }
        // Replaying the whole stream leaves every flapped prefix announced
        // again (withdrawals precede their re-announcements).
        let mut mirror = RibMirror::from_rib(&rib);
        let before = mirror.table().len();
        for u in &updates {
            mirror.apply(u);
        }
        assert_eq!(mirror.table().len(), before);
    }

    #[test]
    fn path_changes_keep_origin_unless_origin_change() {
        let (net, rib) = setup();
        let config = UpdateConfig {
            flaps_per_prefix: 0.0,
            path_changes_per_prefix: 1.0,
            origin_change_prob: 0.0,
            seed: 7,
            ..Default::default()
        };
        let updates = UpdateGenerator::new(&net.graph, config).generate(&rib);
        let mut mirror = RibMirror::from_rib(&rib);
        let origins: Vec<(Prefix, Option<Asn>)> = rib
            .iter()
            .map(|e| (e.prefix, mirror.table().origin_of_prefix(e.prefix)))
            .collect();
        for u in &updates {
            mirror.apply(u);
        }
        for (prefix, origin) in origins {
            assert_eq!(
                mirror.table().origin_of_prefix(prefix),
                origin,
                "{prefix} changed origin"
            );
        }
    }

    #[test]
    fn adjacencies_stay_real_edges() {
        let (net, rib) = setup();
        let updates = UpdateGenerator::new(
            &net.graph,
            UpdateConfig {
                seed: 9,
                ..Default::default()
            },
        )
        .generate(&rib);
        let mut mirror = RibMirror::from_rib(&rib);
        for u in &updates {
            mirror.apply(u);
        }
        for (a, b) in mirror.current_adjacencies() {
            assert!(
                net.graph.edge_kind(a, b).is_some(),
                "{a}-{b} not a real link"
            );
        }
    }

    #[test]
    fn update_rate_is_modest() {
        // §6.3: "BGP routing tables do not change frequently" — the
        // default stream averages well under one update per prefix per
        // hour.
        let (net, rib) = setup();
        let updates = UpdateGenerator::new(
            &net.graph,
            UpdateConfig {
                seed: 1,
                ..Default::default()
            },
        )
        .generate(&rib);
        let prefixes: std::collections::HashSet<Prefix> = rib.iter().map(|e| e.prefix).collect();
        let per_prefix_per_hour =
            updates.len() as f64 / prefixes.len() as f64 / (86_400.0 / 3_600.0);
        assert!(
            per_prefix_per_hour < 1.0,
            "update rate {per_prefix_per_hour:.2}/prefix/hour"
        );
    }
}
