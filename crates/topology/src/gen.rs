//! Synthetic Internet-like AS topology generation.
//!
//! The paper annotates a real 2005 AS graph (20,955 ASes / 56,907 links)
//! inferred from BGP dumps. Those dumps are not available here, so this
//! module grows a synthetic topology with the structural properties ASAP
//! exploits:
//!
//! * a **tier-1 clique** of mutually peering transit-free providers;
//! * **transit (tier-2) ASes** attaching to providers by preferential
//!   attachment (yielding a heavy-tailed degree distribution) and peering
//!   with each other regionally;
//! * **stub ASes**, a configurable fraction of them **multi-homed** — the
//!   Fig. 4 ingredient that makes one-hop relays beat direct routes;
//! * occasional **sibling** links;
//! * per-AS **geographic coordinates** (tier-1 spread globally, customers
//!   placed near their first provider) so that link latency can correlate
//!   with distance in `asap-netsim`.

use asap_cluster::Asn;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::graph::{AsGraph, EdgeKind};

/// The hierarchy tier an AS was generated in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AsTier {
    /// Transit-free core provider (member of the peering clique).
    Tier1,
    /// Regional/national transit provider.
    Transit,
    /// Edge network originating end-host prefixes.
    Stub,
}

/// Parameters for [`InternetGenerator`].
///
/// The defaults produce a ~4,000-AS Internet, a scale at which the full
/// evaluation pipeline runs in seconds; `InternetConfig::paper_scale()`
/// approximates the 20,955-AS graph of the paper.
#[derive(Debug, Clone)]
pub struct InternetConfig {
    /// Number of tier-1 core ASes (fully meshed with peering links).
    pub tier1: usize,
    /// Number of transit ASes.
    pub transit: usize,
    /// Number of stub ASes.
    pub stubs: usize,
    /// Probability that a stub AS is multi-homed (two or more providers).
    pub multihome_prob: f64,
    /// Expected number of extra peering links per transit AS.
    pub transit_peering: f64,
    /// Probability that a stub has a sibling AS.
    pub sibling_prob: f64,
    /// Side length of the square world the coordinates live in,
    /// in milliseconds of one-way propagation delay corner-to-corner scale.
    pub world_size: f64,
}

impl Default for InternetConfig {
    fn default() -> Self {
        InternetConfig {
            tier1: 10,
            transit: 500,
            stubs: 3500,
            multihome_prob: 0.5,
            transit_peering: 4.0,
            sibling_prob: 0.01,
            world_size: 100.0,
        }
    }
}

impl InternetConfig {
    /// A configuration approximating the scale of the paper's 2005-09-26
    /// graph (20,955 ASes, 56,907 links).
    pub fn paper_scale() -> Self {
        InternetConfig {
            tier1: 12,
            transit: 2400,
            stubs: 18500,
            ..InternetConfig::default()
        }
    }

    /// A small configuration for fast unit tests.
    pub fn tiny() -> Self {
        InternetConfig {
            tier1: 3,
            transit: 20,
            stubs: 120,
            ..InternetConfig::default()
        }
    }
}

/// Error from [`InternetGenerator::try_generate`]: the configuration
/// left an attachment step with no candidate provider (e.g. `tier1: 0`,
/// where neither a transit nor a stub AS has anything to buy transit
/// from).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenError {
    /// An AS of the given tier had no provider pool to attach to.
    EmptyProviderPool {
        /// The tier being attached when the pool came up empty.
        tier: AsTier,
    },
}

impl std::fmt::Display for GenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenError::EmptyProviderPool { tier } => write!(
                f,
                "no provider available to attach a {tier:?} AS \
                 (configure at least one tier-1 AS)"
            ),
        }
    }
}

impl std::error::Error for GenError {}

/// A generated Internet: the annotated AS graph plus per-AS metadata.
#[derive(Debug, Clone)]
pub struct SyntheticInternet {
    /// The annotated AS graph.
    pub graph: AsGraph,
    /// Tier of every AS, indexed by the graph's dense node index.
    pub tiers: Vec<AsTier>,
    /// Planar coordinates of every AS (same indexing), used by the latency
    /// model. Units are milliseconds of one-way propagation per unit
    /// distance as configured by [`InternetConfig::world_size`].
    pub coords: Vec<(f64, f64)>,
}

impl SyntheticInternet {
    /// Tier of `asn`, if the AS exists.
    pub fn tier(&self, asn: Asn) -> Option<AsTier> {
        self.graph.index_of(asn).map(|i| self.tiers[i as usize])
    }

    /// Coordinates of `asn`, if the AS exists.
    pub fn coord(&self, asn: Asn) -> Option<(f64, f64)> {
        self.graph.index_of(asn).map(|i| self.coords[i as usize])
    }

    /// All stub ASes (the ones that host end users / VoIP peers).
    pub fn stub_asns(&self) -> Vec<Asn> {
        self.graph
            .asns()
            .iter()
            .enumerate()
            .filter(|(i, _)| self.tiers[*i] == AsTier::Stub)
            .map(|(_, &a)| a)
            .collect()
    }

    /// Euclidean distance between two ASes' coordinates.
    ///
    /// # Panics
    ///
    /// Panics if either AS is absent from the graph.
    pub fn distance(&self, a: Asn, b: Asn) -> f64 {
        let (ax, ay) = self.coord(a).expect("AS not in the generated graph");
        let (bx, by) = self.coord(b).expect("AS not in the generated graph");
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
    }
}

/// Grows [`SyntheticInternet`]s from an [`InternetConfig`] and a seed.
///
/// ```
/// use asap_topology::{InternetConfig, InternetGenerator};
///
/// let internet = InternetGenerator::new(InternetConfig::tiny(), 42).generate();
/// assert!(internet.graph.node_count() >= 143);
/// // Deterministic: the same seed yields the same topology.
/// let again = InternetGenerator::new(InternetConfig::tiny(), 42).generate();
/// assert_eq!(internet.graph.edge_count(), again.graph.edge_count());
/// ```
#[derive(Debug)]
pub struct InternetGenerator {
    config: InternetConfig,
    rng: StdRng,
}

impl InternetGenerator {
    /// Creates a generator with the given configuration and RNG seed.
    pub fn new(config: InternetConfig, seed: u64) -> Self {
        InternetGenerator {
            config,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Generates the topology.
    ///
    /// # Panics
    ///
    /// Panics if the configuration leaves an AS with no possible
    /// provider (see [`InternetGenerator::try_generate`] for the
    /// non-panicking form).
    pub fn generate(self) -> SyntheticInternet {
        self.try_generate()
            .expect("topology generation failed: invalid InternetConfig")
    }

    /// Generates the topology, reporting degenerate configurations as
    /// [`GenError`] instead of panicking. For every config `generate`
    /// accepts, this produces the identical topology (same seed, same
    /// RNG draw sequence).
    pub fn try_generate(mut self) -> Result<SyntheticInternet, GenError> {
        let cfg = self.config.clone();
        let mut graph = AsGraph::new();
        let mut tiers = Vec::new();
        let mut coords: Vec<(f64, f64)> = Vec::new();
        let mut next_asn = 1u32;
        let w = cfg.world_size;

        let mut alloc = |graph: &mut AsGraph,
                         tiers: &mut Vec<AsTier>,
                         coords: &mut Vec<(f64, f64)>,
                         tier: AsTier,
                         xy: (f64, f64)| {
            let asn = Asn(next_asn);
            next_asn += 1;
            let idx = graph.add_node(asn) as usize;
            debug_assert_eq!(idx, tiers.len());
            tiers.push(tier);
            coords.push(xy);
            asn
        };

        // --- Tier-1 clique, spread around the world. ---
        let mut tier1 = Vec::new();
        for i in 0..cfg.tier1 {
            let angle = i as f64 / cfg.tier1 as f64 * std::f64::consts::TAU;
            let xy = (
                w / 2.0 + w / 3.0 * angle.cos() + self.rng.gen_range(-w / 20.0..w / 20.0),
                w / 2.0 + w / 3.0 * angle.sin() + self.rng.gen_range(-w / 20.0..w / 20.0),
            );
            tier1.push(alloc(
                &mut graph,
                &mut tiers,
                &mut coords,
                AsTier::Tier1,
                xy,
            ));
        }
        for i in 0..tier1.len() {
            for j in (i + 1)..tier1.len() {
                graph.add_edge(tier1[i], tier1[j], EdgeKind::PeerToPeer);
            }
        }

        // --- Transit ASes. The real Internet's AS hierarchy is shallow
        // (mean AS-path length ≈ 4), so transit ASes overwhelmingly buy
        // transit from the tier-1 clique directly, and are multi-homed
        // across several tier-1s; only a minority sit under another
        // transit AS. ---
        let mut transits: Vec<Asn> = Vec::new();
        for _ in 0..cfg.transit {
            // Prefer a tier-1 provider; if the clique is empty (a
            // degenerate config), fall back to the combined provider
            // tier before giving up.
            let provider = if transits.is_empty() || self.rng.gen_bool(0.75) {
                self.weighted_provider(&graph, tier1.iter())
                    .or_else(|| self.weighted_provider(&graph, tier1.iter().chain(&transits)))
            } else {
                self.weighted_provider(&graph, tier1.iter().chain(&transits))
            }
            .ok_or(GenError::EmptyProviderPool {
                tier: AsTier::Transit,
            })?;
            let (px, py) = coords[graph.index_of(provider).unwrap() as usize];
            let xy = (
                clamp((px + self.rng.gen_range(-w / 6.0..w / 6.0)).abs(), w),
                clamp((py + self.rng.gen_range(-w / 6.0..w / 6.0)).abs(), w),
            );
            let asn = alloc(&mut graph, &mut tiers, &mut coords, AsTier::Transit, xy);
            graph.add_edge(provider, asn, EdgeKind::ProviderToCustomer);
            // Transit ASes are multi-homed across additional tier-1s
            // (skipped when the clique is empty — the fallback provider
            // above already attached the AS).
            for _ in 0..self.rng.gen_range(2..=3) {
                let Some(second) = self.weighted_provider(&graph, tier1.iter()) else {
                    break;
                };
                if second != asn && graph.edge_kind(second, asn).is_none() {
                    graph.add_edge(second, asn, EdgeKind::ProviderToCustomer);
                }
            }
            transits.push(asn);
        }

        // --- Peering among transit ASes, preferring nearby ones. ---
        let peer_links = (cfg.transit as f64 * cfg.transit_peering / 2.0) as usize;
        for _ in 0..peer_links {
            if transits.len() < 2 {
                break;
            }
            let a = *transits.choose(&mut self.rng).unwrap();
            // Pick the geographically closest of a few random candidates:
            // peering is regional.
            let ai = graph.index_of(a).unwrap() as usize;
            let best = (0..4)
                .map(|_| *transits.choose(&mut self.rng).unwrap())
                .filter(|&b| b != a && graph.edge_kind(a, b).is_none())
                .min_by(|&x, &y| {
                    let d = |b: Asn| {
                        let bi = graph.index_of(b).unwrap() as usize;
                        dist(coords[ai], coords[bi])
                    };
                    d(x).total_cmp(&d(y))
                });
            if let Some(b) = best {
                graph.add_edge(a, b, EdgeKind::PeerToPeer);
            }
        }

        // --- Stub ASes. ---
        for _ in 0..cfg.stubs {
            let provider = self
                .weighted_provider(&graph, tier1.iter().chain(&transits))
                .ok_or(GenError::EmptyProviderPool { tier: AsTier::Stub })?;
            let (px, py) = coords[graph.index_of(provider).unwrap() as usize];
            let xy = (
                clamp((px + self.rng.gen_range(-w / 10.0..w / 10.0)).abs(), w),
                clamp((py + self.rng.gen_range(-w / 10.0..w / 10.0)).abs(), w),
            );
            let asn = alloc(&mut graph, &mut tiers, &mut coords, AsTier::Stub, xy);
            graph.add_edge(provider, asn, EdgeKind::ProviderToCustomer);
            if self.rng.gen_bool(cfg.multihome_prob) {
                // Second (occasionally third) provider — possibly far away,
                // which is what creates useful relay shortcuts.
                let extra = if self.rng.gen_bool(0.2) { 2 } else { 1 };
                for _ in 0..extra {
                    let Some(p) = self.weighted_provider(&graph, tier1.iter().chain(&transits))
                    else {
                        break;
                    };
                    if p != asn {
                        graph.add_edge(p, asn, EdgeKind::ProviderToCustomer);
                    }
                }
            }
            if self.rng.gen_bool(cfg.sibling_prob) {
                let xy2 = (
                    clamp((xy.0 + self.rng.gen_range(-1.0..1.0)).abs(), w),
                    clamp((xy.1 + self.rng.gen_range(-1.0..1.0)).abs(), w),
                );
                let sib = alloc(&mut graph, &mut tiers, &mut coords, AsTier::Stub, xy2);
                graph.add_edge(asn, sib, EdgeKind::SiblingToSibling);
                graph.add_edge(provider, sib, EdgeKind::ProviderToCustomer);
            }
        }

        Ok(SyntheticInternet {
            graph,
            tiers,
            coords,
        })
    }

    /// Picks a provider among `candidates` with probability proportional to
    /// degree + 1 (preferential attachment). `None` when the pool is
    /// empty; no RNG draw happens in that case, so fallback pools keep
    /// the draw sequence of configs that never hit the empty branch.
    fn weighted_provider<'a>(
        &mut self,
        graph: &AsGraph,
        candidates: impl Iterator<Item = &'a Asn>,
    ) -> Option<Asn> {
        let pool: Vec<Asn> = candidates.copied().collect();
        if pool.is_empty() {
            return None;
        }
        let total: usize = pool.iter().map(|&a| graph.degree(a) + 1).sum();
        let mut pick = self.rng.gen_range(0..total);
        for &a in &pool {
            let wgt = graph.degree(a) + 1;
            if pick < wgt {
                return Some(a);
            }
            pick -= wgt;
        }
        pool.last().copied()
    }
}

fn clamp(v: f64, max: f64) -> f64 {
    v.min(max).max(0.0)
}

fn dist(a: (f64, f64), b: (f64, f64)) -> f64 {
    ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::valley;

    fn internet() -> SyntheticInternet {
        InternetGenerator::new(InternetConfig::tiny(), 7).generate()
    }

    #[test]
    fn generates_requested_counts() {
        let net = internet();
        let cfg = InternetConfig::tiny();
        // Siblings may add a few extra stubs.
        assert!(net.graph.node_count() >= cfg.tier1 + cfg.transit + cfg.stubs);
        assert_eq!(net.tiers.len(), net.graph.node_count());
        assert_eq!(net.coords.len(), net.graph.node_count());
    }

    #[test]
    fn tier1_is_a_peering_clique() {
        let net = internet();
        let t1: Vec<Asn> = net
            .graph
            .asns()
            .iter()
            .enumerate()
            .filter(|(i, _)| net.tiers[*i] == AsTier::Tier1)
            .map(|(_, &a)| a)
            .collect();
        for i in 0..t1.len() {
            for j in (i + 1)..t1.len() {
                assert_eq!(
                    net.graph.edge_kind(t1[i], t1[j]),
                    Some(EdgeKind::PeerToPeer)
                );
            }
        }
    }

    #[test]
    fn every_non_tier1_as_has_a_provider_path_to_the_core() {
        let net = internet();
        for (i, &asn) in net.graph.asns().iter().enumerate() {
            if net.tiers[i] == AsTier::Tier1 {
                continue;
            }
            // Walk up providers; must reach tier-1 within a bounded number
            // of steps (no provider cycles).
            let mut current = asn;
            let mut steps = 0;
            loop {
                let Some(p) = net.graph.providers(current).next() else {
                    // Sibling stubs may rely on their sibling's provider.
                    let has_sibling_with_provider = net
                        .graph
                        .neighbors(current)
                        .iter()
                        .any(|(_, k)| *k == EdgeKind::SiblingToSibling);
                    assert!(has_sibling_with_provider, "{asn} has no upstream at all");
                    break;
                };
                current = p;
                steps += 1;
                assert!(steps < 64, "provider chain from {asn} does not terminate");
                if net.tier(current) == Some(AsTier::Tier1) {
                    break;
                }
            }
        }
    }

    #[test]
    fn stubs_never_have_customers() {
        let net = internet();
        for (i, &asn) in net.graph.asns().iter().enumerate() {
            if net.tiers[i] == AsTier::Stub {
                assert_eq!(
                    net.graph.customers(asn).count(),
                    0,
                    "{asn} is a stub with customers"
                );
            }
        }
    }

    #[test]
    fn multihomed_stubs_exist() {
        let net = internet();
        let stubs = net.stub_asns();
        let multihomed = stubs
            .iter()
            .filter(|&&a| net.graph.is_multi_homed(a))
            .count();
        assert!(multihomed > 0, "expected some multi-homed stubs");
        assert!(
            multihomed < stubs.len(),
            "not every stub should be multi-homed"
        );
    }

    #[test]
    fn any_two_ases_connected_valley_free_through_the_core() {
        // Valley-free reachability: a stub can reach the core uphill and any
        // other AS lies downhill of the core, so generous hop bounds must
        // connect random pairs.
        let net = internet();
        let stubs = net.stub_asns();
        let (a, b) = (stubs[0], stubs[stubs.len() / 2]);
        assert!(valley::valley_free_hops(&net.graph, a, b, 10).is_some());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = InternetGenerator::new(InternetConfig::tiny(), 99).generate();
        let b = InternetGenerator::new(InternetConfig::tiny(), 99).generate();
        assert_eq!(a.graph.node_count(), b.graph.node_count());
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        let ea: Vec<_> = a.graph.edges().collect();
        let eb: Vec<_> = b.graph.edges().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = InternetGenerator::new(InternetConfig::tiny(), 1).generate();
        let b = InternetGenerator::new(InternetConfig::tiny(), 2).generate();
        let ea: Vec<_> = a.graph.edges().collect();
        let eb: Vec<_> = b.graph.edges().collect();
        assert_ne!(ea, eb);
    }

    #[test]
    fn empty_tier1_is_an_error_not_a_panic() {
        // Regression: this configuration used to trip the
        // "provider pool must not be empty" assertion inside
        // weighted_provider with ~75% probability per transit AS.
        let cfg = InternetConfig {
            tier1: 0,
            transit: 5,
            stubs: 10,
            ..InternetConfig::default()
        };
        let err = InternetGenerator::new(cfg, 1).try_generate().unwrap_err();
        assert_eq!(
            err,
            GenError::EmptyProviderPool {
                tier: AsTier::Transit
            }
        );

        // Stubs with nothing upstream fail the same way.
        let cfg = InternetConfig {
            tier1: 0,
            transit: 0,
            stubs: 3,
            ..InternetConfig::default()
        };
        let err = InternetGenerator::new(cfg, 1).try_generate().unwrap_err();
        assert_eq!(err, GenError::EmptyProviderPool { tier: AsTier::Stub });
    }

    #[test]
    fn minimal_topologies_generate() {
        // The smallest useful worlds: one core AS and a handful of
        // customers must come out whole, across several seeds (the
        // 75%/25% provider-branch coin means a single seed would not
        // exercise both paths on a one-transit config).
        for seed in 0..8 {
            let cfg = InternetConfig {
                tier1: 1,
                transit: 1,
                stubs: 1,
                ..InternetConfig::default()
            };
            let net = InternetGenerator::new(cfg, seed)
                .try_generate()
                .expect("minimal topology generates");
            assert!(net.graph.node_count() >= 3);
            assert!(!net.stub_asns().is_empty());

            let cfg = InternetConfig {
                tier1: 1,
                transit: 0,
                stubs: 2,
                ..InternetConfig::default()
            };
            let net = InternetGenerator::new(cfg, seed)
                .try_generate()
                .expect("transit-free topology generates");
            assert!(net.graph.node_count() >= 3);
        }
    }

    #[test]
    fn try_generate_matches_generate_for_valid_configs() {
        let a = InternetGenerator::new(InternetConfig::tiny(), 42).generate();
        let b = InternetGenerator::new(InternetConfig::tiny(), 42)
            .try_generate()
            .unwrap();
        let ea: Vec<_> = a.graph.edges().collect();
        let eb: Vec<_> = b.graph.edges().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn coordinates_inside_world() {
        let net = internet();
        let w = InternetConfig::tiny().world_size;
        for &(x, y) in &net.coords {
            assert!((0.0..=w).contains(&x) && (0.0..=w).contains(&y));
        }
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let net = InternetGenerator::new(InternetConfig::default(), 3).generate();
        let mut degrees: Vec<usize> = net
            .graph
            .asns()
            .iter()
            .map(|&a| net.graph.degree(a))
            .collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        // Top node should dominate the median by an order of magnitude.
        let median = degrees[degrees.len() / 2];
        assert!(
            degrees[0] >= median * 10,
            "max {} vs median {}",
            degrees[0],
            median
        );
    }
}
