//! The annotated AS graph.

use std::collections::HashMap;
use std::fmt;

use asap_cluster::Asn;

/// The commercial relationship annotating a *directed* AS adjacency, read
/// as "the role of the source AS towards the destination AS".
///
/// Internet routing depends on the provider–customer and peer–peer
/// contractual relationships between neighboring ASes: a provider transits
/// traffic for its customers, peers exchange traffic between their own
/// customers only, and siblings (two ASes of one organization) transit
/// freely for each other. These rules give AS-level paths the valley-free
/// property that ASAP's close-cluster-set BFS must respect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// The source AS is a provider of the destination AS.
    ProviderToCustomer,
    /// The source AS is a customer of the destination AS.
    CustomerToProvider,
    /// The two ASes have a settlement-free peering agreement.
    PeerToPeer,
    /// The two ASes belong to the same organization.
    SiblingToSibling,
}

impl EdgeKind {
    /// The annotation of the same adjacency viewed from the other side.
    pub fn reverse(self) -> EdgeKind {
        match self {
            EdgeKind::ProviderToCustomer => EdgeKind::CustomerToProvider,
            EdgeKind::CustomerToProvider => EdgeKind::ProviderToCustomer,
            EdgeKind::PeerToPeer => EdgeKind::PeerToPeer,
            EdgeKind::SiblingToSibling => EdgeKind::SiblingToSibling,
        }
    }
}

impl fmt::Display for EdgeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EdgeKind::ProviderToCustomer => "p2c",
            EdgeKind::CustomerToProvider => "c2p",
            EdgeKind::PeerToPeer => "p2p",
            EdgeKind::SiblingToSibling => "s2s",
        };
        f.write_str(s)
    }
}

/// Dense internal index of an AS inside an [`AsGraph`].
pub(crate) type NodeIdx = u32;

/// An annotated AS-level graph of the Internet.
///
/// Nodes are [`Asn`]s; every undirected adjacency is stored twice, once per
/// direction, with mirrored [`EdgeKind`] annotations. Node indices are
/// dense, which lets the routing and search layers use flat `Vec` state.
///
/// ```
/// use asap_topology::{AsGraph, EdgeKind};
/// use asap_cluster::Asn;
///
/// let mut g = AsGraph::new();
/// g.add_edge(Asn(10), Asn(20), EdgeKind::ProviderToCustomer);
/// assert_eq!(g.edge_kind(Asn(20), Asn(10)), Some(EdgeKind::CustomerToProvider));
/// assert_eq!(g.degree(Asn(10)), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct AsGraph {
    asns: Vec<Asn>,
    index: HashMap<Asn, NodeIdx>,
    adj: Vec<Vec<(NodeIdx, EdgeKind)>>,
    edge_count: usize,
}

impl AsGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        AsGraph::default()
    }

    /// Adds `asn` as an isolated node if not yet present; returns its dense
    /// index either way.
    pub fn add_node(&mut self, asn: Asn) -> u32 {
        if let Some(&idx) = self.index.get(&asn) {
            return idx;
        }
        let idx = self.asns.len() as NodeIdx;
        self.asns.push(asn);
        self.adj.push(Vec::new());
        self.index.insert(asn, idx);
        idx
    }

    /// Adds the undirected adjacency `a — b` annotated `kind` (viewed from
    /// `a`); the reverse direction is annotated [`EdgeKind::reverse`].
    /// Creates missing nodes. Replaces the annotation if the adjacency
    /// already exists. Self-loops are ignored.
    pub fn add_edge(&mut self, a: Asn, b: Asn, kind: EdgeKind) {
        if a == b {
            return;
        }
        let ia = self.add_node(a);
        let ib = self.add_node(b);
        let fwd = &mut self.adj[ia as usize];
        if let Some(slot) = fwd.iter_mut().find(|(n, _)| *n == ib) {
            slot.1 = kind;
            let back = &mut self.adj[ib as usize];
            if let Some(slot) = back.iter_mut().find(|(n, _)| *n == ia) {
                slot.1 = kind.reverse();
            }
            return;
        }
        fwd.push((ib, kind));
        self.adj[ib as usize].push((ia, kind.reverse()));
        self.edge_count += 1;
    }

    /// Number of AS nodes.
    pub fn node_count(&self) -> usize {
        self.asns.len()
    }

    /// Number of undirected AS links.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Whether the graph contains `asn`.
    pub fn contains(&self, asn: Asn) -> bool {
        self.index.contains_key(&asn)
    }

    /// The dense index of `asn`, if present.
    pub fn index_of(&self, asn: Asn) -> Option<u32> {
        self.index.get(&asn).copied()
    }

    /// The AS at dense index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn asn_at(&self, idx: u32) -> Asn {
        self.asns[idx as usize]
    }

    /// All AS numbers, ordered by dense index.
    pub fn asns(&self) -> &[Asn] {
        &self.asns
    }

    /// The neighbors of `asn` with their edge annotations (viewed from
    /// `asn`). Empty if `asn` is absent.
    pub fn neighbors(&self, asn: Asn) -> &[(u32, EdgeKind)] {
        match self.index_of(asn) {
            Some(idx) => &self.adj[idx as usize],
            None => &[],
        }
    }

    /// Neighbors by dense index.
    pub(crate) fn neighbors_idx(&self, idx: NodeIdx) -> &[(NodeIdx, EdgeKind)] {
        &self.adj[idx as usize]
    }

    /// The annotation of edge `a → b`, if the adjacency exists.
    pub fn edge_kind(&self, a: Asn, b: Asn) -> Option<EdgeKind> {
        let ib = self.index_of(b)?;
        self.neighbors(a)
            .iter()
            .find(|(n, _)| *n == ib)
            .map(|(_, k)| *k)
    }

    /// The connection degree of `asn` (0 if absent). Used both by the DEDI
    /// baseline (which probes nodes in the highest-degree clusters) and by
    /// Gao inference (degree identifies top providers).
    pub fn degree(&self, asn: Asn) -> usize {
        self.neighbors(asn).len()
    }

    /// The providers of `asn` (neighbors it has a customer-to-provider edge
    /// towards).
    pub fn providers(&self, asn: Asn) -> impl Iterator<Item = Asn> + '_ {
        self.neighbors(asn)
            .iter()
            .filter(|(_, k)| *k == EdgeKind::CustomerToProvider)
            .map(move |(n, _)| self.asn_at(*n))
    }

    /// The customers of `asn`.
    pub fn customers(&self, asn: Asn) -> impl Iterator<Item = Asn> + '_ {
        self.neighbors(asn)
            .iter()
            .filter(|(_, k)| *k == EdgeKind::ProviderToCustomer)
            .map(move |(n, _)| self.asn_at(*n))
    }

    /// Whether `asn` is multi-homed, i.e. has more than one provider. The
    /// paper's Fig. 4 shows multi-homed customer ASes are exactly the ones
    /// whose relay paths can beat direct BGP routing.
    pub fn is_multi_homed(&self, asn: Asn) -> bool {
        self.providers(asn).take(2).count() == 2
    }

    /// Iterates over all undirected edges once, as `(a, b, kind-from-a)`
    /// with `index(a) < index(b)`.
    pub fn edges(&self) -> impl Iterator<Item = (Asn, Asn, EdgeKind)> + '_ {
        self.adj.iter().enumerate().flat_map(move |(ia, nbrs)| {
            nbrs.iter()
                .filter(move |(ib, _)| (ia as NodeIdx) < *ib)
                .map(move |(ib, k)| (self.asns[ia], self.asns[*ib as usize], *k))
        })
    }

    /// Size in bytes of a compact binary encoding of the graph (4-byte ASN
    /// per node, 4+4+1 bytes per edge). The paper reports ~800 KB for the
    /// 2005-09-26 Internet AS graph (20,955 nodes / 56,907 links); this is
    /// the §6.3 bootstrap-storage figure.
    pub fn encoded_size_bytes(&self) -> usize {
        self.node_count() * 4 + self.edge_count() * 9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_edge_mirrors_kind() {
        let mut g = AsGraph::new();
        g.add_edge(Asn(1), Asn(2), EdgeKind::ProviderToCustomer);
        assert_eq!(
            g.edge_kind(Asn(1), Asn(2)),
            Some(EdgeKind::ProviderToCustomer)
        );
        assert_eq!(
            g.edge_kind(Asn(2), Asn(1)),
            Some(EdgeKind::CustomerToProvider)
        );
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn re_adding_edge_replaces_annotation() {
        let mut g = AsGraph::new();
        g.add_edge(Asn(1), Asn(2), EdgeKind::ProviderToCustomer);
        g.add_edge(Asn(1), Asn(2), EdgeKind::PeerToPeer);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edge_kind(Asn(2), Asn(1)), Some(EdgeKind::PeerToPeer));
    }

    #[test]
    fn self_loops_ignored() {
        let mut g = AsGraph::new();
        g.add_edge(Asn(1), Asn(1), EdgeKind::PeerToPeer);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn providers_customers_multihoming() {
        let mut g = AsGraph::new();
        g.add_edge(Asn(10), Asn(1), EdgeKind::CustomerToProvider);
        g.add_edge(Asn(10), Asn(2), EdgeKind::CustomerToProvider);
        g.add_edge(Asn(10), Asn(11), EdgeKind::ProviderToCustomer);
        let mut providers: Vec<Asn> = g.providers(Asn(10)).collect();
        providers.sort();
        assert_eq!(providers, vec![Asn(1), Asn(2)]);
        assert_eq!(g.customers(Asn(10)).collect::<Vec<_>>(), vec![Asn(11)]);
        assert!(g.is_multi_homed(Asn(10)));
        assert!(!g.is_multi_homed(Asn(11)));
    }

    #[test]
    fn edges_iterates_each_link_once() {
        let mut g = AsGraph::new();
        g.add_edge(Asn(1), Asn(2), EdgeKind::PeerToPeer);
        g.add_edge(Asn(2), Asn(3), EdgeKind::ProviderToCustomer);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 2);
    }

    #[test]
    fn encoded_size_tracks_counts() {
        let mut g = AsGraph::new();
        g.add_edge(Asn(1), Asn(2), EdgeKind::PeerToPeer);
        assert_eq!(g.encoded_size_bytes(), 2 * 4 + 9);
    }

    #[test]
    fn absent_nodes_behave() {
        let g = AsGraph::new();
        assert!(!g.contains(Asn(5)));
        assert_eq!(g.degree(Asn(5)), 0);
        assert_eq!(g.edge_kind(Asn(5), Asn(6)), None);
        assert!(g.neighbors(Asn(5)).is_empty());
    }

    #[test]
    fn kind_reverse_is_involutive() {
        for k in [
            EdgeKind::ProviderToCustomer,
            EdgeKind::CustomerToProvider,
            EdgeKind::PeerToPeer,
            EdgeKind::SiblingToSibling,
        ] {
            assert_eq!(k.reverse().reverse(), k);
        }
    }
}
