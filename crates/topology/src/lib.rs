//! Annotated AS-graph substrate for the ASAP VoIP peer-relay system.
//!
//! ASAP (Ren, Guo, Zhang — ICDCS 2006) selects voice-packet relays by
//! reasoning over the Internet's Autonomous System topology: an *annotated
//! AS graph* whose edges carry the commercial relationship between
//! neighboring ASes (provider–customer, peer–peer, sibling–sibling). The
//! paper builds this graph from RouteViews / RIPE / CERNET BGP dumps using
//! Gao's relationship-inference algorithm. Since real 2005 BGP dumps are
//! not available here, this crate supplies a faithful synthetic pipeline:
//!
//! 1. [`InternetGenerator`] grows a tiered, power-law Internet-like AS
//!    topology (tier-1 clique, multi-homed transit and stub ASes, peering
//!    and sibling links) with per-AS geographic coordinates.
//! 2. [`routing`] computes BGP policy routes (prefer customer > peer >
//!    provider, then shortest AS path) — the *direct IP routing paths*
//!    whose latency tail motivates relay selection.
//! 3. [`rib`] announces prefixes and records the AS paths seen from
//!    vantage-point ASes, emulating a RouteViews RIB dump.
//! 4. [`gao`] runs Gao's inference algorithm over those AS paths to recover
//!    an annotated graph, exactly as the paper's bootstrap nodes would.
//! 5. [`valley`] provides the valley-free path automaton and the bounded
//!    breadth-first searches that `construct-close-cluster-set()` relies on.
//!
//! # Example
//!
//! ```
//! use asap_topology::{AsGraph, EdgeKind, valley};
//! use asap_cluster::Asn;
//!
//! let mut g = AsGraph::new();
//! // AS1 is AS2's provider; AS2 and AS3 peer; AS3 is AS4's provider.
//! g.add_edge(Asn(1), Asn(2), EdgeKind::ProviderToCustomer);
//! g.add_edge(Asn(2), Asn(3), EdgeKind::PeerToPeer);
//! g.add_edge(Asn(3), Asn(4), EdgeKind::ProviderToCustomer);
//!
//! // 2 → 3 → 4 climbs nothing, crosses one peering link, then descends:
//! // valley-free.
//! assert!(valley::is_valley_free(&g, &[Asn(2), Asn(3), Asn(4)]));
//! // 4 → 3 → 2 → 1 would make AS2 transit traffic between its peer and
//! // its provider: not valley-free.
//! assert!(!valley::is_valley_free(&g, &[Asn(4), Asn(3), Asn(2), Asn(1)]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gao;
pub mod gen;
mod graph;
pub mod paths;
pub mod rib;
pub mod routing;
pub mod updates;
pub mod valley;

pub use gen::{AsTier, GenError, InternetConfig, InternetGenerator, SyntheticInternet};
pub use graph::{AsGraph, EdgeKind};
