//! Synthetic BGP RIB (routing table dump) generation.
//!
//! The paper builds its prefix→origin-AS table and annotated AS graph from
//! BGP routing-table entries and updates collected at RouteViews, RIPE RIS,
//! and CERNET. This module emulates such a collection: prefixes are
//! announced by their origin ASes, routes propagate under BGP policy, and a
//! set of *vantage-point* ASes (the collectors' BGP neighbors) record the
//! AS path they would use towards every prefix. The resulting
//! [`RibEntry`] list is what [`crate::gao`] consumes to re-infer the
//! annotated graph, and what [`extract_prefix_table`] turns into the
//! IP-prefix → origin-AS mapping the bootstrap nodes serve.

use asap_cluster::{Asn, Prefix, PrefixTable};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::graph::AsGraph;
use crate::routing::BgpRouter;

/// One BGP routing-table entry as seen from a vantage point: a prefix and
/// the AS path towards its origin (vantage first, origin last).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RibEntry {
    /// The announced prefix.
    pub prefix: Prefix,
    /// AS path from the vantage AS (first element) to the origin AS (last
    /// element).
    pub as_path: Vec<Asn>,
}

impl RibEntry {
    /// The origin AS — the last AS on the path.
    ///
    /// # Panics
    ///
    /// Panics if the AS path is empty (a RIB entry always carries at least
    /// the origin).
    pub fn origin(&self) -> Asn {
        *self.as_path.last().expect("RIB entry with empty AS path")
    }
}

/// Configuration of the synthetic RIB collection.
#[derive(Debug, Clone)]
pub struct RibConfig {
    /// Number of vantage-point ASes recording their tables (RouteViews has
    /// dozens of peers; more vantage points → better inference coverage).
    pub vantage_points: usize,
    /// RNG seed for vantage-point selection.
    pub seed: u64,
}

impl Default for RibConfig {
    fn default() -> Self {
        RibConfig {
            vantage_points: 30,
            seed: 0,
        }
    }
}

/// Collects a synthetic RIB: for every `(prefix, origin)` announcement and
/// every vantage point, the BGP policy path from the vantage point to the
/// origin (where one exists).
///
/// Vantage points are sampled uniformly from the graph's ASes — like real
/// route collectors, they see only the paths *their* neighbors choose, so
/// the inference in [`crate::gao`] works from a partial view.
pub fn collect_rib(
    graph: &AsGraph,
    announcements: &[(Prefix, Asn)],
    config: &RibConfig,
) -> Vec<RibEntry> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut vantages: Vec<Asn> = graph.asns().to_vec();
    vantages.shuffle(&mut rng);
    vantages.truncate(config.vantage_points.min(vantages.len()));

    let mut router = BgpRouter::new();
    let mut rib = Vec::new();
    for &(prefix, origin) in announcements {
        if !graph.contains(origin) {
            continue;
        }
        let tree = router.tree(graph, origin);
        for &v in &vantages {
            if let Some(path) = tree.path_from(graph, v) {
                rib.push(RibEntry {
                    prefix,
                    as_path: path,
                });
            }
        }
    }
    rib
}

/// Extracts the IP-prefix → origin-AS mapping table from RIB entries, the
/// way the paper's bootstrap nodes do from real BGP dumps.
pub fn extract_prefix_table(rib: &[RibEntry]) -> PrefixTable {
    rib.iter().map(|e| (e.prefix, e.origin())).collect()
}

/// Extracts the set of undirected AS adjacencies appearing on RIB paths
/// (the unannotated AS-AS connection relationships the paper mentions
/// extracting from BGP tables).
pub fn extract_adjacencies(rib: &[RibEntry]) -> Vec<(Asn, Asn)> {
    let mut edges: Vec<(Asn, Asn)> = rib
        .iter()
        .flat_map(|e| e.as_path.windows(2))
        .map(|w| {
            if w[0] <= w[1] {
                (w[0], w[1])
            } else {
                (w[1], w[0])
            }
        })
        .collect();
    edges.sort_unstable();
    edges.dedup();
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{InternetConfig, InternetGenerator};
    use crate::valley;

    fn setup() -> (crate::gen::SyntheticInternet, Vec<(Prefix, Asn)>) {
        let net = InternetGenerator::new(InternetConfig::tiny(), 5).generate();
        let stubs = net.stub_asns();
        let announcements: Vec<(Prefix, Asn)> = stubs
            .iter()
            .enumerate()
            .map(|(i, &asn)| {
                let base = asap_cluster::Ip::from_octets([10, (i >> 8) as u8, (i & 255) as u8, 0]);
                (Prefix::new(base, 24), asn)
            })
            .collect();
        (net, announcements)
    }

    #[test]
    fn rib_paths_end_at_origin_and_are_valley_free() {
        let (net, ann) = setup();
        let rib = collect_rib(
            &net.graph,
            &ann,
            &RibConfig {
                vantage_points: 5,
                seed: 1,
            },
        );
        assert!(!rib.is_empty());
        for e in &rib {
            let want_origin = ann.iter().find(|(p, _)| *p == e.prefix).unwrap().1;
            assert_eq!(e.origin(), want_origin);
            assert!(valley::is_valley_free(&net.graph, &e.as_path));
        }
    }

    #[test]
    fn prefix_table_maps_prefixes_to_origins() {
        let (net, ann) = setup();
        let rib = collect_rib(
            &net.graph,
            &ann,
            &RibConfig {
                vantage_points: 5,
                seed: 1,
            },
        );
        let table = extract_prefix_table(&rib);
        for (prefix, origin) in &ann {
            // Prefixes that at least one vantage point could route to must
            // be mapped to their true origin.
            if rib.iter().any(|e| e.prefix == *prefix) {
                assert_eq!(table.origin_of_prefix(*prefix), Some(*origin));
            }
        }
    }

    #[test]
    fn adjacencies_are_real_graph_edges() {
        let (net, ann) = setup();
        let rib = collect_rib(&net.graph, &ann, &RibConfig::default());
        let adj = extract_adjacencies(&rib);
        assert!(!adj.is_empty());
        for (a, b) in adj {
            assert!(
                net.graph.edge_kind(a, b).is_some(),
                "RIB edge {a}-{b} not in graph"
            );
        }
    }

    #[test]
    fn more_vantage_points_see_more_edges() {
        let (net, ann) = setup();
        let few = collect_rib(
            &net.graph,
            &ann,
            &RibConfig {
                vantage_points: 2,
                seed: 3,
            },
        );
        let many = collect_rib(
            &net.graph,
            &ann,
            &RibConfig {
                vantage_points: 40,
                seed: 3,
            },
        );
        assert!(extract_adjacencies(&few).len() <= extract_adjacencies(&many).len());
    }

    #[test]
    fn unknown_origins_are_skipped() {
        let (net, _) = setup();
        let ann = vec![(Prefix::new(asap_cluster::Ip(0), 8), Asn(999_999))];
        let rib = collect_rib(&net.graph, &ann, &RibConfig::default());
        assert!(rib.is_empty());
    }
}
