//! BGP policy routing over the annotated AS graph.
//!
//! Direct IP routing between two end hosts follows each AS's commercial
//! policy, not shortest paths: every AS prefers routes learned from
//! customers over routes learned from peers over routes learned from
//! providers (it is paid for the first, pays for the last), and only then
//! breaks ties by AS-path length. The realized routes are valley-free.
//! This module computes those routes with the standard three-stage
//! propagation over the annotated graph, one *routing tree* per
//! destination AS.
//!
//! These policy routes are what the paper calls the **direct IP routing
//! path**; their latency tail (paths forced through congested or distant
//! providers even when a short detour exists) is precisely the gap ASAP's
//! relays exploit.

use std::collections::{HashMap, VecDeque};

use asap_cluster::Asn;

use crate::graph::{AsGraph, EdgeKind};
use crate::valley;

/// How a route was learned, in decreasing order of preference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RouteClass {
    /// Learned from a customer (or the destination itself).
    Customer,
    /// Learned across one peering link.
    Peer,
    /// Learned from a provider.
    Provider,
}

const NO_ROUTE: u32 = u32::MAX;

/// All routes towards one destination AS: for every source AS, the next
/// hop, the route class, and the AS-hop count.
#[derive(Debug, Clone)]
pub struct RoutingTree {
    dest: Asn,
    dest_idx: u32,
    /// Per node index: next hop towards the destination (NO_ROUTE if
    /// unreachable), route class, hops.
    next_hop: Vec<u32>,
    class: Vec<RouteClass>,
    hops: Vec<u8>,
}

impl RoutingTree {
    /// The destination AS this tree routes towards.
    pub fn destination(&self) -> Asn {
        self.dest
    }

    /// Whether `src` has any policy-compliant route to the destination.
    pub fn reachable(&self, graph: &AsGraph, src: Asn) -> bool {
        match graph.index_of(src) {
            Some(i) => i == self.dest_idx || self.next_hop[i as usize] != NO_ROUTE,
            None => false,
        }
    }

    /// The number of AS links on the policy route from `src`, if routable.
    pub fn hops_from(&self, graph: &AsGraph, src: Asn) -> Option<usize> {
        let i = graph.index_of(src)?;
        if i == self.dest_idx {
            return Some(0);
        }
        if self.next_hop[i as usize] == NO_ROUTE {
            return None;
        }
        Some(self.hops[i as usize] as usize)
    }

    /// The route class at `src`, if routable.
    pub fn class_from(&self, graph: &AsGraph, src: Asn) -> Option<RouteClass> {
        let i = graph.index_of(src)?;
        if i == self.dest_idx {
            return Some(RouteClass::Customer);
        }
        if self.next_hop[i as usize] == NO_ROUTE {
            return None;
        }
        Some(self.class[i as usize])
    }

    /// The full AS path from `src` to the destination (inclusive on both
    /// ends), if routable.
    pub fn path_from(&self, graph: &AsGraph, src: Asn) -> Option<Vec<Asn>> {
        let mut i = graph.index_of(src)?;
        if i != self.dest_idx && self.next_hop[i as usize] == NO_ROUTE {
            return None;
        }
        let mut path = vec![graph.asn_at(i)];
        while i != self.dest_idx {
            i = self.next_hop[i as usize];
            path.push(graph.asn_at(i));
            debug_assert!(path.len() <= graph.node_count() + 1, "routing loop");
        }
        Some(path)
    }
}

/// Computes BGP policy routes on demand and caches one [`RoutingTree`] per
/// destination AS.
///
/// ```
/// use asap_topology::{AsGraph, EdgeKind, routing::BgpRouter};
/// use asap_cluster::Asn;
///
/// let mut g = AsGraph::new();
/// g.add_edge(Asn(1), Asn(2), EdgeKind::ProviderToCustomer);
/// g.add_edge(Asn(1), Asn(3), EdgeKind::ProviderToCustomer);
/// let mut router = BgpRouter::new();
/// // 2 and 3 reach each other through their shared provider 1.
/// assert_eq!(router.path(&g, Asn(2), Asn(3)), Some(vec![Asn(2), Asn(1), Asn(3)]));
/// ```
#[derive(Debug, Default)]
pub struct BgpRouter {
    trees: HashMap<Asn, RoutingTree>,
    cache_hits: u64,
    cache_misses: u64,
}

impl BgpRouter {
    /// Creates a router with an empty route cache.
    pub fn new() -> Self {
        BgpRouter::default()
    }

    /// Number of cached routing trees.
    pub fn cached_trees(&self) -> usize {
        self.trees.len()
    }

    /// `(hits, misses)` of the routing-tree cache: a miss computes a
    /// full tree, a hit answers from the memo. Every `path`/`as_hops`
    /// query counts exactly once.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.cache_hits, self.cache_misses)
    }

    /// The routing tree towards `dest`, computing and caching it if needed.
    ///
    /// # Panics
    ///
    /// Panics if `dest` is not in the graph.
    pub fn tree<'a>(&'a mut self, graph: &AsGraph, dest: Asn) -> &'a RoutingTree {
        match self.trees.entry(dest) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.cache_hits += 1;
                e.into_mut()
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                self.cache_misses += 1;
                e.insert(compute_tree(graph, dest))
            }
        }
    }

    /// The policy route AS path from `src` to `dest`, if one exists.
    ///
    /// # Panics
    ///
    /// Panics if `dest` is not in the graph.
    pub fn path(&mut self, graph: &AsGraph, src: Asn, dest: Asn) -> Option<Vec<Asn>> {
        self.tree(graph, dest).path_from(graph, src)
    }

    /// AS-hop count of the policy route, if one exists.
    ///
    /// # Panics
    ///
    /// Panics if `dest` is not in the graph.
    pub fn as_hops(&mut self, graph: &AsGraph, src: Asn, dest: Asn) -> Option<usize> {
        self.tree(graph, dest).hops_from(graph, src)
    }
}

/// Builds the routing tree towards `dest` with three-stage propagation:
///
/// 1. **Customer routes** climb from the destination through
///    customer→provider links (every AS gladly carries traffic *to* its
///    customers). Shortest (in hops) wins; ties broken by lower next-hop
///    ASN for determinism.
/// 2. **Peer routes**: an AS holding a customer route exports it across
///    each of its peering links (one peer hop only).
/// 3. **Provider routes** descend: an AS holding any route exports it to
///    its customers, recursively.
///
/// Sibling links propagate routes in every stage without changing class.
fn compute_tree(graph: &AsGraph, dest: Asn) -> RoutingTree {
    let dest_idx = graph
        .index_of(dest)
        .unwrap_or_else(|| panic!("destination {dest} not in AS graph"));
    let n = graph.node_count();
    let mut next_hop = vec![NO_ROUTE; n];
    let mut class = vec![RouteClass::Provider; n];
    let mut hops = vec![0u8; n];
    let mut has_route = vec![false; n];

    // Stage 1: customer routes (BFS uphill from dest).
    has_route[dest_idx as usize] = true;
    let mut frontier = VecDeque::new();
    frontier.push_back(dest_idx);
    while let Some(x) = frontier.pop_front() {
        let x_hops = if x == dest_idx {
            0
        } else {
            hops[x as usize] as usize
        };
        // Export x's customer route to x's providers and siblings.
        for &(y, kind_from_x) in graph.neighbors_idx(x) {
            let propagates = matches!(
                kind_from_x,
                EdgeKind::CustomerToProvider | EdgeKind::SiblingToSibling
            );
            if !propagates || y == dest_idx {
                continue;
            }
            let yi = y as usize;
            let candidate_hops = x_hops + 1;
            let better = !has_route[yi]
                || (class[yi] == RouteClass::Customer
                    && ((hops[yi] as usize) > candidate_hops
                        || (hops[yi] as usize == candidate_hops
                            && graph.asn_at(next_hop[yi]) > graph.asn_at(x))));
            if better {
                let first_time = !has_route[yi];
                has_route[yi] = true;
                class[yi] = RouteClass::Customer;
                hops[yi] = candidate_hops as u8;
                next_hop[yi] = x;
                if first_time || (hops[yi] as usize) == candidate_hops {
                    frontier.push_back(y);
                }
            }
        }
    }

    // Stage 2: peer routes. Snapshot customer-route holders first so a
    // freshly assigned peer route is never re-exported.
    let holders: Vec<u32> = (0..n as u32)
        .filter(|&i| {
            i == dest_idx || (has_route[i as usize] && class[i as usize] == RouteClass::Customer)
        })
        .collect();
    for x in holders {
        let x_hops = if x == dest_idx {
            0
        } else {
            hops[x as usize] as usize
        };
        for &(y, kind_from_x) in graph.neighbors_idx(x) {
            if kind_from_x != EdgeKind::PeerToPeer || y == dest_idx {
                continue;
            }
            let yi = y as usize;
            let candidate_hops = x_hops + 1;
            let better = !has_route[yi]
                || (class[yi] == RouteClass::Peer
                    && ((hops[yi] as usize) > candidate_hops
                        || (hops[yi] as usize == candidate_hops
                            && graph.asn_at(next_hop[yi]) > graph.asn_at(x))));
            if better {
                has_route[yi] = true;
                class[yi] = RouteClass::Peer;
                hops[yi] = candidate_hops as u8;
                next_hop[yi] = x;
            }
        }
    }

    // Stage 3: provider routes (BFS downhill from every route holder).
    let mut frontier: VecDeque<u32> = (0..n as u32)
        .filter(|&i| i == dest_idx || has_route[i as usize])
        .collect();
    while let Some(x) = frontier.pop_front() {
        let x_hops = if x == dest_idx {
            0
        } else {
            hops[x as usize] as usize
        };
        for &(y, kind_from_x) in graph.neighbors_idx(x) {
            let propagates = matches!(
                kind_from_x,
                EdgeKind::ProviderToCustomer | EdgeKind::SiblingToSibling
            );
            if !propagates || y == dest_idx {
                continue;
            }
            let yi = y as usize;
            let candidate_hops = x_hops + 1;
            let better = !has_route[yi]
                || (class[yi] == RouteClass::Provider
                    && class[x as usize] <= RouteClass::Provider
                    && ((hops[yi] as usize) > candidate_hops
                        || (hops[yi] as usize == candidate_hops
                            && graph.asn_at(next_hop[yi]) > graph.asn_at(x))));
            if better && (!has_route[yi] || class[yi] == RouteClass::Provider) {
                let improved = !has_route[yi] || (hops[yi] as usize) > candidate_hops;
                has_route[yi] = true;
                class[yi] = RouteClass::Provider;
                hops[yi] = candidate_hops.min(u8::MAX as usize) as u8;
                next_hop[yi] = x;
                if improved {
                    frontier.push_back(y);
                }
            }
        }
    }

    RoutingTree {
        dest,
        dest_idx,
        next_hop,
        class,
        hops,
    }
}

/// Convenience check used by tests and property suites: every realized
/// policy route must be valley-free.
pub fn route_is_valley_free(graph: &AsGraph, tree: &RoutingTree, src: Asn) -> bool {
    match tree.path_from(graph, src) {
        Some(path) => valley::is_valley_free(graph, &path),
        None => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{InternetConfig, InternetGenerator};

    fn p2c() -> EdgeKind {
        EdgeKind::ProviderToCustomer
    }

    /// dest(1) <- provider(2) <- source(3): provider route for 3.
    #[test]
    fn routes_through_shared_provider() {
        let mut g = AsGraph::new();
        g.add_edge(Asn(2), Asn(1), p2c());
        g.add_edge(Asn(2), Asn(3), p2c());
        let mut r = BgpRouter::new();
        assert_eq!(
            r.path(&g, Asn(3), Asn(1)),
            Some(vec![Asn(3), Asn(2), Asn(1)])
        );
        assert_eq!(
            r.tree(&g, Asn(1)).class_from(&g, Asn(3)),
            Some(RouteClass::Provider)
        );
        assert_eq!(
            r.tree(&g, Asn(1)).class_from(&g, Asn(2)),
            Some(RouteClass::Customer)
        );
    }

    #[test]
    fn customer_route_preferred_over_shorter_peer_route() {
        // dest 1; source 4 hears: customer route 4->5->1 (2 hops, 5 is 4's
        // customer chain) and peer route 4->1 would not exist; construct:
        // 4 has customer 5, 5 has customer 1 → customer route, 2 hops.
        // 4 also peers with 6, 6 has customer 1 → peer route, 2 hops.
        // Same length: customer class must win.
        let mut g = AsGraph::new();
        g.add_edge(Asn(4), Asn(5), p2c());
        g.add_edge(Asn(5), Asn(1), p2c());
        g.add_edge(Asn(4), Asn(6), EdgeKind::PeerToPeer);
        g.add_edge(Asn(6), Asn(1), p2c());
        let mut r = BgpRouter::new();
        let tree = r.tree(&g, Asn(1));
        assert_eq!(tree.class_from(&g, Asn(4)), Some(RouteClass::Customer));
        assert_eq!(
            tree.path_from(&g, Asn(4)),
            Some(vec![Asn(4), Asn(5), Asn(1)])
        );
    }

    #[test]
    fn peer_route_preferred_over_provider_route() {
        // Source 3 can go up to provider 2 then down to 1 (provider route)
        // or across its peer 4 which has customer 1 (peer route).
        let mut g = AsGraph::new();
        g.add_edge(Asn(2), Asn(3), p2c());
        g.add_edge(Asn(2), Asn(1), p2c());
        g.add_edge(Asn(3), Asn(4), EdgeKind::PeerToPeer);
        g.add_edge(Asn(4), Asn(1), p2c());
        let mut r = BgpRouter::new();
        let tree = r.tree(&g, Asn(1));
        assert_eq!(tree.class_from(&g, Asn(3)), Some(RouteClass::Peer));
        assert_eq!(
            tree.path_from(&g, Asn(3)),
            Some(vec![Asn(3), Asn(4), Asn(1)])
        );
    }

    #[test]
    fn no_route_across_two_peering_links() {
        // 3 - 2 - 1 all peering: 3 cannot reach 1 (2 would transit between
        // two peers).
        let mut g = AsGraph::new();
        g.add_edge(Asn(3), Asn(2), EdgeKind::PeerToPeer);
        g.add_edge(Asn(2), Asn(1), EdgeKind::PeerToPeer);
        let mut r = BgpRouter::new();
        assert_eq!(r.path(&g, Asn(3), Asn(1)), None);
        assert!(r.tree(&g, Asn(1)).reachable(&g, Asn(2)));
    }

    #[test]
    fn siblings_transit_freely() {
        // 3's only upstream is its sibling 2, whose provider 4 also serves 1.
        let mut g = AsGraph::new();
        g.add_edge(Asn(3), Asn(2), EdgeKind::SiblingToSibling);
        g.add_edge(Asn(4), Asn(2), p2c());
        g.add_edge(Asn(4), Asn(1), p2c());
        let mut r = BgpRouter::new();
        assert_eq!(
            r.path(&g, Asn(3), Asn(1)),
            Some(vec![Asn(3), Asn(2), Asn(4), Asn(1)])
        );
    }

    #[test]
    fn self_route_is_trivial() {
        let mut g = AsGraph::new();
        g.add_node(Asn(1));
        let mut r = BgpRouter::new();
        assert_eq!(r.path(&g, Asn(1), Asn(1)), Some(vec![Asn(1)]));
        assert_eq!(r.as_hops(&g, Asn(1), Asn(1)), Some(0));
    }

    #[test]
    fn direct_route_can_be_longer_than_relay_detour() {
        // Fig. 4 (right): multi-homed B under D and E. Direct A→C must take
        // the long valley-free route over the top, while relaying at B gives
        // A→D→B plus B→E→C (both short) — the overlay advantage.
        let mut g = AsGraph::new();
        // Long top chain: D and E connect only via tier-1 I.
        g.add_edge(Asn(9), Asn(4), p2c()); // I -> D
        g.add_edge(Asn(9), Asn(5), p2c()); // I -> E
        g.add_edge(Asn(4), Asn(1), p2c()); // D -> A
        g.add_edge(Asn(5), Asn(3), p2c()); // E -> C
        g.add_edge(Asn(4), Asn(2), p2c()); // D -> B
        g.add_edge(Asn(5), Asn(2), p2c()); // E -> B
        let mut r = BgpRouter::new();
        let direct = r.as_hops(&g, Asn(1), Asn(3)).unwrap();
        let via_b = r.as_hops(&g, Asn(1), Asn(2)).unwrap() + r.as_hops(&g, Asn(2), Asn(3)).unwrap();
        assert_eq!(direct, 4);
        assert_eq!(via_b, 4); // 2 + 2: equal hops here, but avoids the core I.
        assert!(r.path(&g, Asn(1), Asn(3)).unwrap().contains(&Asn(9)));
        assert!(!r.path(&g, Asn(1), Asn(2)).unwrap().contains(&Asn(9)));
    }

    #[test]
    fn all_policy_routes_are_valley_free_on_synthetic_internet() {
        let net = InternetGenerator::new(InternetConfig::tiny(), 11).generate();
        let mut r = BgpRouter::new();
        let asns: Vec<Asn> = net.graph.asns().to_vec();
        let dests = [asns[0], asns[asns.len() / 2], asns[asns.len() - 1]];
        for &d in &dests {
            let tree = compute_tree(&net.graph, d);
            for &s in &asns {
                assert!(
                    route_is_valley_free(&net.graph, &tree, s),
                    "route {s} → {d} has a valley"
                );
            }
        }
        // And the cache caches: one miss on first build, hits after.
        r.tree(&net.graph, dests[0]);
        r.tree(&net.graph, dests[0]);
        assert_eq!(r.cached_trees(), 1);
        assert_eq!(r.cache_stats(), (1, 1));
        r.as_hops(&net.graph, asns[1], dests[0]);
        assert_eq!(r.cache_stats(), (2, 1));
    }

    #[test]
    fn synthetic_internet_is_fully_routable() {
        let net = InternetGenerator::new(InternetConfig::tiny(), 13).generate();
        let tree = compute_tree(&net.graph, net.graph.asns()[0]);
        let unreachable = net
            .graph
            .asns()
            .iter()
            .filter(|&&s| !tree.reachable(&net.graph, s))
            .count();
        assert_eq!(
            unreachable, 0,
            "{unreachable} ASes cannot reach a tier-connected AS"
        );
    }

    #[test]
    #[should_panic(expected = "not in AS graph")]
    fn tree_for_unknown_destination_panics() {
        let g = AsGraph::new();
        let mut r = BgpRouter::new();
        r.tree(&g, Asn(42));
    }
}
