//! AS-path reconstruction and inference accuracy.
//!
//! ASAP's close-set BFS reasons about *hop counts*; some uses (the ED
//! baseline, path-diversity reasoning) need the actual AS sequences. The
//! paper leans on Mao et al. (SIGMETRICS'05): "it is reasonably accurate
//! to infer AS paths by computing the shortest AS hops paths" under the
//! valley-free constraint. This module reconstructs shortest valley-free
//! paths and quantifies that claim against the BGP policy routes.

use std::collections::VecDeque;

use asap_cluster::Asn;

use crate::graph::AsGraph;
use crate::routing::BgpRouter;
use crate::valley::Phase;

/// Reconstructs one shortest valley-free AS path from `src` to `dst`
/// within `max_hops`, or `None` if none exists. Ties are broken towards
/// lower neighbor ASNs, so the result is deterministic.
pub fn shortest_valley_free_path(
    graph: &AsGraph,
    src: Asn,
    dst: Asn,
    max_hops: usize,
) -> Option<Vec<Asn>> {
    if src == dst {
        return graph.contains(src).then(|| vec![src]);
    }
    let src_idx = graph.index_of(src)?;
    let dst_idx = graph.index_of(dst)?;
    let n = graph.node_count();
    let phase_ix = |p: Phase| match p {
        Phase::Up => 0usize,
        Phase::Down => 1,
    };
    // Predecessor per (node, phase) state.
    let mut pred: Vec<[Option<(u32, Phase)>; 2]> = vec![[None, None]; n];
    let mut seen = vec![[false; 2]; n];
    let mut queue: VecDeque<(u32, Phase, usize)> = VecDeque::new();
    seen[src_idx as usize][0] = true;
    queue.push_back((src_idx, Phase::Up, 0));

    while let Some((idx, phase, hops)) = queue.pop_front() {
        if idx == dst_idx {
            // Walk predecessors back to the source.
            let mut path = vec![graph.asn_at(idx)];
            let mut state = (idx, phase);
            while state.0 != src_idx {
                let prev = pred[state.0 as usize][phase_ix(state.1)]
                    .expect("every reached state has a predecessor chain to the source");
                path.push(graph.asn_at(prev.0));
                state = prev;
            }
            path.reverse();
            return Some(path);
        }
        if hops == max_hops {
            continue;
        }
        // Deterministic expansion order: sort neighbor list by ASN.
        let mut nbrs: Vec<(u32, crate::graph::EdgeKind)> =
            graph.neighbors(graph.asn_at(idx)).to_vec();
        nbrs.sort_by_key(|&(nidx, _)| graph.asn_at(nidx));
        for (next, kind) in nbrs {
            let Some(next_phase) = phase.step(kind) else {
                continue;
            };
            let slot = &mut seen[next as usize][phase_ix(next_phase)];
            if !*slot {
                *slot = true;
                pred[next as usize][phase_ix(next_phase)] = Some((idx, phase));
                queue.push_back((next, next_phase, hops + 1));
            }
        }
    }
    None
}

/// How well shortest-valley-free inference matches real policy routes.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PathInferenceAccuracy {
    /// Pairs compared (both a policy route and an inferred path existed).
    pub compared: usize,
    /// Inferred path identical to the policy route.
    pub exact: usize,
    /// Inferred path has the same AS-hop count as the policy route.
    pub same_length: usize,
}

impl PathInferenceAccuracy {
    /// Fraction with matching hop counts (the property ASAP relies on).
    pub fn length_ratio(&self) -> f64 {
        if self.compared == 0 {
            1.0
        } else {
            self.same_length as f64 / self.compared as f64
        }
    }
}

/// Compares shortest-valley-free inference against BGP policy routes over
/// the given source/destination pairs.
pub fn path_inference_accuracy(
    graph: &AsGraph,
    pairs: &[(Asn, Asn)],
    max_hops: usize,
) -> PathInferenceAccuracy {
    let mut router = BgpRouter::new();
    let mut acc = PathInferenceAccuracy::default();
    for &(s, d) in pairs {
        if !graph.contains(s) || !graph.contains(d) {
            continue;
        }
        let Some(policy) = router.path(graph, s, d) else {
            continue;
        };
        let Some(inferred) = shortest_valley_free_path(graph, s, d, max_hops) else {
            continue;
        };
        acc.compared += 1;
        if inferred == policy {
            acc.exact += 1;
        }
        if inferred.len() == policy.len() {
            acc.same_length += 1;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{InternetConfig, InternetGenerator};
    use crate::graph::EdgeKind;
    use crate::valley;

    fn chain() -> AsGraph {
        let mut g = AsGraph::new();
        g.add_edge(Asn(2), Asn(1), EdgeKind::ProviderToCustomer);
        g.add_edge(Asn(3), Asn(2), EdgeKind::ProviderToCustomer);
        g.add_edge(Asn(3), Asn(4), EdgeKind::ProviderToCustomer);
        g.add_edge(Asn(4), Asn(5), EdgeKind::ProviderToCustomer);
        g
    }

    #[test]
    fn reconstructs_the_obvious_path() {
        let g = chain();
        let path = shortest_valley_free_path(&g, Asn(1), Asn(5), 6).unwrap();
        assert_eq!(path, vec![Asn(1), Asn(2), Asn(3), Asn(4), Asn(5)]);
    }

    #[test]
    fn respects_hop_bound() {
        let g = chain();
        assert!(shortest_valley_free_path(&g, Asn(1), Asn(5), 3).is_none());
        assert!(shortest_valley_free_path(&g, Asn(1), Asn(5), 4).is_some());
    }

    #[test]
    fn trivial_and_missing_cases() {
        let g = chain();
        assert_eq!(
            shortest_valley_free_path(&g, Asn(1), Asn(1), 4),
            Some(vec![Asn(1)])
        );
        assert_eq!(shortest_valley_free_path(&g, Asn(1), Asn(99), 4), None);
        assert_eq!(shortest_valley_free_path(&g, Asn(99), Asn(1), 4), None);
    }

    #[test]
    fn reconstruction_is_valley_free_and_minimal() {
        let net = InternetGenerator::new(InternetConfig::tiny(), 31).generate();
        let stubs = net.stub_asns();
        for i in 0..10 {
            let (s, d) = (stubs[i], stubs[stubs.len() - 1 - i]);
            if let Some(path) = shortest_valley_free_path(&net.graph, s, d, 8) {
                assert!(valley::is_valley_free(&net.graph, &path));
                let hops = valley::valley_free_hops(&net.graph, s, d, 8).unwrap();
                assert_eq!(path.len() - 1, hops, "reconstructed path not minimal");
            }
        }
    }

    #[test]
    fn inference_matches_policy_lengths_mostly() {
        // The Mao et al. claim the paper relies on: shortest valley-free
        // hop counts track real policy routes.
        let net = InternetGenerator::new(InternetConfig::tiny(), 32).generate();
        let stubs = net.stub_asns();
        let pairs: Vec<(Asn, Asn)> = (0..40)
            .map(|i| (stubs[i % stubs.len()], stubs[(i * 7 + 3) % stubs.len()]))
            .collect();
        let acc = path_inference_accuracy(&net.graph, &pairs, 10);
        assert!(acc.compared >= 30);
        assert!(
            acc.length_ratio() > 0.8,
            "only {:.2} of inferred paths match policy hop counts",
            acc.length_ratio()
        );
        assert!(acc.exact <= acc.same_length);
    }
}
