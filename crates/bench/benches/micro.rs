//! Criterion micro-benchmarks for the hot paths of the ASAP stack:
//! prefix-trie lookups, valley-free searches, BGP routing-tree
//! construction, the E-model, close-cluster-set construction, and
//! select-close-relay — the per-call critical path.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use asap_cluster::{Asn, Ip, Prefix, PrefixTrie};
use asap_core::close_set::{construct_close_cluster_set, ClusterIndex};
use asap_core::{AsapConfig, AsapSystem};
use asap_topology::routing::BgpRouter;
use asap_topology::{valley, InternetConfig, InternetGenerator};
use asap_voip::{emodel::EModel, Codec};
use asap_workload::{sessions, Scenario, ScenarioConfig};

fn bench_trie(c: &mut Criterion) {
    let mut trie = PrefixTrie::new();
    for i in 0..10_000u32 {
        trie.insert(Prefix::new(Ip((10 << 24) | (i << 10)), 22), i);
    }
    c.bench_function("trie_longest_match_10k", |b| {
        let mut x = 0u32;
        b.iter(|| {
            x = x.wrapping_add(2_654_435_761);
            black_box(trie.longest_match(Ip((10 << 24) | (x % (10_000 << 10)))))
        })
    });
}

fn bench_valley(c: &mut Criterion) {
    let net = InternetGenerator::new(InternetConfig::tiny(), 1).generate();
    let origin = net.stub_asns()[0];
    c.bench_function("valley_free_bounded_search_k4", |b| {
        b.iter(|| {
            black_box(valley::bounded_search(&net.graph, origin, 4, |_| {
                valley::Expand::Continue
            }))
        })
    });
}

fn bench_routing(c: &mut Criterion) {
    let net = InternetGenerator::new(InternetConfig::tiny(), 2).generate();
    let dests = net.stub_asns();
    c.bench_function("bgp_routing_tree", |b| {
        let mut i = 0usize;
        b.iter(|| {
            // Fresh router each call: measure tree construction, not the
            // cache.
            let mut router = BgpRouter::new();
            i = (i + 1) % dests.len();
            black_box(router.path(&net.graph, dests[(i + 7) % dests.len()], dests[i]))
        })
    });
}

fn bench_emodel(c: &mut Criterion) {
    let model = EModel::new(Codec::G729aVad);
    c.bench_function("emodel_mos", |b| {
        let mut d = 0.0f64;
        b.iter(|| {
            d = (d + 1.7) % 500.0;
            black_box(model.mos_from_rtt(d, 0.005))
        })
    });
}

fn bench_asap(c: &mut Criterion) {
    let scenario = Scenario::build(ScenarioConfig::tiny(), 3);
    let index = ClusterIndex::build(&scenario);
    let config = AsapConfig::default();
    let clusters = scenario.population.clustering().clusters();
    c.bench_function("construct_close_cluster_set", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % clusters.len();
            black_box(construct_close_cluster_set(
                &scenario,
                &index,
                &|cl| scenario.delegate_of(cl),
                clusters[i].id(),
                &config,
            ))
        })
    });

    let system = AsapSystem::bootstrap(&scenario, config);
    let sess = sessions::generate(&scenario.population, 64, 5);
    c.bench_function("asap_call_end_to_end", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % sess.len();
            black_box(system.call(sess[i].caller, sess[i].callee))
        })
    });
}

fn bench_gao(c: &mut Criterion) {
    let net = InternetGenerator::new(InternetConfig::tiny(), 4).generate();
    let stubs = net.stub_asns();
    let announcements: Vec<(Prefix, Asn)> = stubs
        .iter()
        .enumerate()
        .map(|(i, &a)| (Prefix::new(Ip::from_octets([10, 0, i as u8, 0]), 24), a))
        .collect();
    let rib = asap_topology::rib::collect_rib(
        &net.graph,
        &announcements,
        &asap_topology::rib::RibConfig::default(),
    );
    let paths: Vec<Vec<Asn>> = rib.iter().map(|e| e.as_path.clone()).collect();
    c.bench_function("gao_inference", |b| {
        b.iter(|| black_box(asap_topology::gao::infer(&paths, &Default::default())))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_trie, bench_valley, bench_routing, bench_emodel, bench_asap, bench_gao
);
criterion_main!(benches);
