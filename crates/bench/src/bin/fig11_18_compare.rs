//! Figures 11–16 and 18 — the §7.2 method comparison on latent sessions.
//!
//! * Figs. 11/12: number of quality paths per session + CDF — DEDI, RAND,
//!   and MIX stay below a few hundred while ASAP finds orders of
//!   magnitude more (member-IP granularity).
//! * Figs. 13/14: shortest relay RTT + CCDF — ASAP tracks OPT; the
//!   probing baselines leave a slow tail.
//! * Figs. 15/16: highest MOS (E-model, G.729A+VAD, 0.5% loss) + CDF.
//! * Fig. 18: per-session message overhead CDF — DEDI/RAND/MIX pay fixed
//!   80/200/160 probes, ASAP usually ≤ a few hundred messages.

use asap_baselines::{
    select_metered, Dedi, EarliestDivergence, Mix, Opt, RandSel, RelaySelector, SelectionOutcome,
};
use asap_bench::{percentile, row, section, sorted, Args, Scale};
use asap_core::{AsapConfig, AsapSelector, AsapSystem};
use asap_telemetry::{HistogramHandle, Telemetry};
use asap_voip::{emodel::EModel, Codec, QualityRequirement};
use asap_workload::sessions;
use asap_workload::trace::SessionRecord;

struct MethodResult {
    name: &'static str,
    quality: Vec<f64>,
    shortest: Vec<f64>,
    mos: Vec<f64>,
    messages: Vec<f64>,
    best_rtt: HistogramHandle,
}

impl MethodResult {
    fn new(name: &'static str, telemetry: &Telemetry) -> Self {
        MethodResult {
            name,
            quality: Vec::new(),
            shortest: Vec::new(),
            mos: Vec::new(),
            messages: Vec::new(),
            best_rtt: telemetry
                .registry()
                .histogram(&format!("{name}.best_rtt_ms")),
        }
    }

    fn record(&mut self, out: &SelectionOutcome, spent: u64, model: &EModel) {
        self.quality.push(out.quality_paths as f64);
        self.messages.push(spent as f64);
        if let Some(best) = &out.best {
            self.shortest.push(best.rtt_ms);
            self.mos.push(model.mos_from_rtt(best.rtt_ms, 0.005));
            self.best_rtt.record(best.rtt_ms);
        }
    }
}

fn main() {
    let args = Args::parse(Scale::Tiny);
    eprintln!(
        "fig11_18: building scenario ({:?}, seed {})…",
        args.scale, args.seed
    );
    let scenario = args.scenario();
    let all = sessions::generate(&scenario.population, args.sessions, args.seed ^ 0xF1118);
    let with = sessions::with_direct_routes(&scenario, &all);
    let latent = sessions::latent_sessions(&with, 300.0);
    eprintln!(
        "fig11_18: {} sessions, {} routable, {} latent (>300 ms)",
        all.len(),
        with.len(),
        latent.len()
    );

    // One telemetry context for the whole comparison: each method gets its
    // own ledger scope, so the Fig. 18 overhead numbers, the per-kind
    // breakdowns, and `--metrics-out` all report from the same source.
    let telemetry = Telemetry::new();
    let req = QualityRequirement::default();
    let model = EModel::new(Codec::G729aVad);
    let dedi = Dedi::new(&scenario, 80).with_scope(telemetry.ledger().scope("DEDI"));
    let rand = RandSel::new(200, args.seed ^ 0xAB).with_scope(telemetry.ledger().scope("RAND"));
    let mix =
        Mix::new(&scenario, 40, 120, args.seed ^ 0xCD).with_scope(telemetry.ledger().scope("MIX"));
    let ed =
        EarliestDivergence::new(200, args.seed ^ 0xAB).with_scope(telemetry.ledger().scope("ED"));
    let opt = Opt::new().with_scope(telemetry.ledger().scope("OPT"));
    let system = AsapSystem::bootstrap_scoped(&scenario, AsapConfig::default(), &telemetry, "ASAP");
    let asap = AsapSelector::new(system);

    let mut results: Vec<MethodResult> = ["DEDI", "RAND", "MIX", "ASAP", "OPT", "ED"]
        .iter()
        .map(|n| MethodResult::new(n, &telemetry))
        .collect();
    let mut records: Vec<SessionRecord> = Vec::new();

    // OPT is exhaustive per session; cap the comparison set so the eval
    // scale finishes in minutes.
    let take = latent.len().min(600);
    // Paired (ASAP, OPT) shortest RTTs on the sessions where ASAP found a
    // relay, for a same-session-set comparison.
    let mut paired: Vec<(f64, f64)> = Vec::new();
    for (i, s) in latent.iter().take(take).enumerate() {
        // Each selector's message spend is metered as the delta of its
        // ledger scope across the call — there is no per-outcome counter.
        let outs: Vec<(SelectionOutcome, u64)> = vec![
            select_metered(&dedi, &scenario, s.session, &req),
            select_metered(&rand, &scenario, s.session, &req),
            select_metered(&mix, &scenario, s.session, &req),
            select_metered(&asap, &scenario, s.session, &req),
            select_metered(&opt, &scenario, s.session, &req),
            select_metered(&ed, &scenario, s.session, &req),
        ];
        if let (Some(a), Some(o)) = (&outs[3].0.best, &outs[4].0.best) {
            paired.push((a.rtt_ms, o.rtt_ms));
        }
        for (r, (out, spent)) in results.iter_mut().zip(&outs) {
            r.record(out, *spent, &model);
            records.push(SessionRecord {
                experiment: "fig11_18".into(),
                method: r.name.into(),
                session: i as u32,
                direct_rtt_ms: s.direct_rtt_ms,
                quality_paths: out.quality_paths,
                shortest_rtt_ms: out.best.as_ref().map(|b| b.rtt_ms),
                highest_mos: out
                    .best
                    .as_ref()
                    .map(|b| model.mos_from_rtt(b.rtt_ms, 0.005)),
                messages: *spent,
            });
        }
    }

    section("Figs. 11/12: quality paths per latent session");
    row(&[&"method", &"p10", &"p50", &"p90", &"max"]);
    for r in &results {
        if r.name == "OPT" || r.name == "ED" {
            continue; // the oracle is not a protocol, and ED counts like RAND
        }
        let q = sorted(&r.quality);
        if q.is_empty() {
            row(&[&r.name, &"-", &"-", &"-", &"-"]);
            continue;
        }
        row(&[
            &r.name,
            &percentile(&q, 0.1),
            &percentile(&q, 0.5),
            &percentile(&q, 0.9),
            &percentile(&q, 1.0),
        ]);
    }

    section("Figs. 13/14: shortest relay RTT (ms) among found paths");
    row(&[&"method", &"found", &"p50", &"p95", &"max", &">1s frac"]);
    for r in &results {
        let v = sorted(&r.shortest);
        if v.is_empty() {
            row(&[&r.name, &0, &"-", &"-", &"-", &"-"]);
            continue;
        }
        row(&[
            &r.name,
            &v.len(),
            &format!("{:.0}", percentile(&v, 0.5)),
            &format!("{:.0}", percentile(&v, 0.95)),
            &format!("{:.0}", percentile(&v, 1.0)),
            &format!("{:.3}", asap_bench::frac_above(&v, 1000.0)),
        ]);
    }

    // Per-method "found" sets differ (ASAP abstains on hopeless sessions,
    // the probing baselines always report their best probe), so also
    // compare ASAP and OPT on the *same* sessions.
    section("Figs. 13/14 (paired): ASAP vs OPT on ASAP-found sessions");
    if paired.is_empty() {
        println!("(ASAP found no relays in this run)");
    } else {
        let asap_v = sorted(&paired.iter().map(|p| p.0).collect::<Vec<_>>());
        let opt_v = sorted(&paired.iter().map(|p| p.1).collect::<Vec<_>>());
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        row(&[&"", &"mean", &"p50", &"p95"]);
        row(&[
            &"ASAP",
            &format!("{:.1}", mean(&asap_v)),
            &format!("{:.1}", percentile(&asap_v, 0.5)),
            &format!("{:.1}", percentile(&asap_v, 0.95)),
        ]);
        row(&[
            &"OPT",
            &format!("{:.1}", mean(&opt_v)),
            &format!("{:.1}", percentile(&opt_v, 0.5)),
            &format!("{:.1}", percentile(&opt_v, 0.95)),
        ]);
        let within = paired.iter().filter(|(a, o)| *a <= 1.5 * o + 20.0).count();
        row(&[
            &"ASAP within 1.5×OPT+20ms",
            &format!("{:.2}", within as f64 / paired.len() as f64),
        ]);
    }

    section("Figs. 15/16: highest MOS (G.729A+VAD, 0.5% loss)");
    row(&[&"method", &"p5", &"p50", &"min", &"<2.9 frac"]);
    for r in &results {
        let v = sorted(&r.mos);
        if v.is_empty() {
            row(&[&r.name, &"-", &"-", &"-", &"-"]);
            continue;
        }
        let below = v.iter().filter(|&&m| m < 2.9).count() as f64 / v.len() as f64;
        row(&[
            &r.name,
            &format!("{:.2}", percentile(&v, 0.05)),
            &format!("{:.2}", percentile(&v, 0.5)),
            &format!("{:.2}", v[0]),
            &format!("{below:.3}"),
        ]);
    }

    section("Fig. 18: per-session selection messages");
    row(&[&"method", &"p50", &"p80", &"max"]);
    for r in &results {
        if r.name == "OPT" {
            continue;
        }
        let v = sorted(&r.messages);
        row(&[
            &r.name,
            &percentile(&v, 0.5),
            &percentile(&v, 0.8),
            &percentile(&v, 1.0),
        ]);
    }

    section("Fig. 18 source: ledger totals by message kind");
    let scoped: Vec<(&str, &asap_telemetry::LedgerScope)> = vec![
        ("DEDI", dedi.scope()),
        ("RAND", rand.scope()),
        ("MIX", mix.scope()),
        ("ASAP", asap.scope()),
        ("ED", ed.scope()),
    ];
    let mut header: Vec<&dyn std::fmt::Display> = vec![&"kind"];
    for (name, _) in &scoped {
        header.push(name);
    }
    row(&header);
    for kind in asap_telemetry::MESSAGE_KINDS {
        let counts: Vec<u64> = scoped.iter().map(|(_, s)| s.count(kind)).collect();
        if counts.iter().all(|&c| c == 0) {
            continue;
        }
        let kind_name = kind.name();
        let mut cells: Vec<&dyn std::fmt::Display> = vec![&kind_name];
        for c in &counts {
            cells.push(c);
        }
        row(&cells);
    }

    args.write_metrics(&telemetry);

    // Dump the raw rows for EXPERIMENTS.md tooling.
    if let Ok(path) = std::env::var("ASAP_TRACE_OUT") {
        let file = std::fs::File::create(&path).expect("create trace output");
        asap_workload::trace::write_jsonl(std::io::BufWriter::new(file), &records)
            .expect("write trace");
        eprintln!("fig11_18: wrote {} records to {path}", records.len());
    }
}
