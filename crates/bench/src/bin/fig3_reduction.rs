//! Figure 3 — RTT reduction by optimal one-hop relay.
//!
//! Fig. 3(a): for sessions whose optimal one-hop beats the direct route,
//! the reduction rate r = (direct − one-hop)/direct is spread evenly.
//! Fig. 3(b): for every session with direct RTT > 300 ms, the optimal
//! one-hop RTT falls below 300 ms — *in the paper's trace*. Our synthetic
//! world also contains hopeless sessions (endpoint-adjacent congestion);
//! the binary reports both counts so EXPERIMENTS.md can record the split.

use asap_baselines::{Opt, RelaySelector};
use asap_bench::{row, section, Args, Scale};
use asap_voip::QualityRequirement;
use asap_workload::sessions;

fn main() {
    let args = Args::parse(Scale::Tiny);
    eprintln!(
        "fig3: building scenario ({:?}, seed {})…",
        args.scale, args.seed
    );
    let scenario = args.scenario();
    let all = sessions::generate(&scenario.population, args.sessions, args.seed ^ 0xF163);
    let with = sessions::with_direct_routes(&scenario, &all);
    let opt = Opt::new().with_two_hop_candidates(0);
    let req = QualityRequirement::default();

    // Fig. 3(a): reduction-rate histogram on a sample of improved sessions.
    let sample = with.len().min(400);
    let mut reductions = Vec::new();
    for s in with.iter().take(sample) {
        if let Some(best) = opt.select(&scenario, s.session, &req).best {
            if best.rtt_ms < s.direct_rtt_ms {
                reductions.push((s.direct_rtt_ms - best.rtt_ms) / s.direct_rtt_ms);
            }
        }
    }
    section("Fig. 3(a): optimal one-hop RTT reduction rate (improved sessions)");
    row(&[&"bucket", &"sessions"]);
    for b in 0..10 {
        let (lo, hi) = (b as f64 / 10.0, (b + 1) as f64 / 10.0);
        let n = reductions.iter().filter(|&&r| r >= lo && r < hi).count();
        row(&[&format!("{lo:.1}-{hi:.1}"), &n]);
    }

    // Fig. 3(b): latent sessions (direct > 300 ms) — how many does the
    // optimal one-hop bring under 300 ms?
    let latent = sessions::latent_sessions(&with, 300.0);
    let mut relieved = 0usize;
    let mut hopeless = 0usize;
    let mut pairs = Vec::new();
    for s in &latent {
        match opt.select(&scenario, s.session, &req).best {
            Some(best) if best.rtt_ms < 300.0 => {
                relieved += 1;
                pairs.push((s.direct_rtt_ms, best.rtt_ms));
            }
            Some(best) => {
                hopeless += 1;
                pairs.push((s.direct_rtt_ms, best.rtt_ms));
            }
            None => hopeless += 1,
        }
    }
    section("Fig. 3(b): latent sessions (direct RTT > 300 ms)");
    row(&[&"latent sessions", &latent.len()]);
    row(&[&"relieved (<300ms via 1-hop)", &relieved]);
    row(&[&"hopeless (no sub-300ms relay)", &hopeless]);
    println!("# direct_rtt_ms -> optimal_1hop_rtt_ms (first 20)");
    for (d, o) in pairs.iter().take(20) {
        println!("{d:>10.1} -> {o:>8.1}");
    }
}
