//! §6.3 — system traffic-load analysis.
//!
//! The paper argues ASAP's load is modest: the AS graph costs ~800 KB of
//! bootstrap storage (2005-09-26 graph: 20,955 ASes / 56,907 links), 90%
//! of clusters hold ≤ 100 online hosts so surrogates cope, and a few
//! ~1,000-host clusters can elect multiple surrogates. This binary
//! measures all three on the synthetic world, plus the protocol
//! simulation's message-type breakdown.

use asap_bench::{row, section, Args, Scale};
use asap_core::events::{run, SimConfig};
use asap_core::AsapConfig;

fn main() {
    let args = Args::parse(Scale::Tiny);
    eprintln!(
        "load: building scenario ({:?}, seed {})…",
        args.scale, args.seed
    );
    let scenario = args.scenario();
    let graph = &scenario.internet.graph;

    section("Bootstrap storage: annotated AS graph");
    row(&[&"AS nodes", &graph.node_count()]);
    row(&[&"AS links", &graph.edge_count()]);
    row(&[
        &"encoded size (KB)",
        &format!("{:.1}", graph.encoded_size_bytes() as f64 / 1024.0),
    ]);
    // Paper-scale extrapolation: bytes per (node + 2.7 links) × 20,955.
    let per_as = graph.encoded_size_bytes() as f64 / graph.node_count() as f64;
    row(&[
        &"extrapolated to 20,955 ASes (KB)",
        &format!("{:.0}", per_as * 20_955.0 / 1024.0),
    ]);

    section("Cluster population (surrogate load)");
    let sizes = scenario.population.clustering().size_distribution();
    let n = sizes.len();
    let le100 = sizes.iter().filter(|&&s| s <= 100).count();
    row(&[&"clusters", &n]);
    row(&[&"hosts", &scenario.population.hosts().len()]);
    row(&[
        &"clusters ≤100 hosts",
        &le100,
        &format!("{:.1}%", 100.0 * le100 as f64 / n as f64),
    ]);
    row(&[&"largest cluster", sizes.last().unwrap_or(&0)]);
    row(&[
        &"clusters >300 hosts (multi-surrogate)",
        &sizes.iter().filter(|&&s| s > 300).count(),
    ]);

    section("Protocol simulation: message breakdown (10-minute virtual run)");
    let sim = SimConfig {
        calls: 200,
        surrogate_failures: 5,
        seed: args.seed,
        ..Default::default()
    };
    let report = run(&scenario, AsapConfig::default(), &sim);
    let m = report.messages;
    row(&[&"joins", &report.joined]);
    row(&[&"calls completed", &report.calls_completed]);
    row(&[&"failovers", &report.failovers]);
    row(&[&"join msgs", &m.join]);
    row(&[&"close-set msgs", &m.close_set]);
    row(&[&"publish msgs", &m.publish]);
    row(&[&"election msgs", &m.election]);
    row(&[&"call msgs", &m.call]);
    row(&[&"total msgs", &m.total()]);
    let per_host_per_min = m.total() as f64
        / scenario.population.hosts().len() as f64
        / (report.ended_at.as_secs_f64() / 60.0);
    row(&[&"msgs/host/minute", &format!("{per_host_per_min:.2}")]);
}
