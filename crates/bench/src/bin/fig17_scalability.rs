//! Figure 17 — scalability of the four protocols.
//!
//! §7.3: grow the population from 23,366 to 103,625 hosts (×4.434). A
//! method is *scalable* if its per-session quality-path count grows with
//! the population: dividing the large-scale counts by 4.434 should
//! reproduce the small-scale CDF. ASAP passes (its candidate pool is
//! every member of every close cluster); DEDI/RAND/MIX fail (their probe
//! budgets are fixed).

use asap_baselines::{Dedi, Mix, RandSel, RelaySelector};
use asap_bench::{percentile, row, section, sorted, Args, Scale};
use asap_core::{AsapConfig, AsapSelector, AsapSystem};
use asap_telemetry::Telemetry;
use asap_voip::QualityRequirement;
use asap_workload::sessions;
use asap_workload::{PopulationConfig, Scenario, ScenarioConfig};
use rayon::prelude::*;

/// Quality-path percentiles for all four methods at one population size.
///
/// Every method's message spend lands in the shared `telemetry` ledger
/// under a `NAME@tag` scope (e.g. `ASAP@small`), so the two population
/// sizes stay separable in `--metrics-out` snapshots.
fn run_at(
    scenario: &Scenario,
    sessions_n: usize,
    seed: u64,
    take: usize,
    telemetry: &Telemetry,
    tag: &str,
) -> Vec<(String, Vec<f64>)> {
    let all = sessions::generate(&scenario.population, sessions_n, seed ^ 0xF17);
    let with = sessions::with_direct_routes(scenario, &all);
    let latent = sessions::latent_sessions(&with, 300.0);
    eprintln!(
        "fig17: {} hosts → {} latent sessions",
        scenario.population.hosts().len(),
        latent.len()
    );

    let req = QualityRequirement::default();
    let scope = |name: &str| telemetry.ledger().scope(&format!("{name}@{tag}"));
    let dedi = Dedi::new(scenario, 80).with_scope(scope("DEDI"));
    let rand = RandSel::new(200, seed ^ 0xAB).with_scope(scope("RAND"));
    let mix = Mix::new(scenario, 40, 120, seed ^ 0xCD).with_scope(scope("MIX"));
    let system = AsapSystem::bootstrap_scoped(
        scenario,
        AsapConfig::default(),
        telemetry,
        &format!("ASAP@{tag}"),
    );
    let asap = AsapSelector::new(system);

    // The four methods are independent given the shared scenario, so
    // they run concurrently on the rayon pool. par_iter preserves input
    // order, so the output (and every downstream table) is identical to
    // the sequential loop at any thread count.
    let methods: Vec<(&str, &(dyn RelaySelector + Sync))> = vec![
        ("DEDI", &dedi),
        ("RAND", &rand),
        ("MIX", &mix),
        ("ASAP", &asap),
    ];
    methods
        .into_par_iter()
        .map(|(name, m)| {
            let quality: Vec<f64> = latent
                .iter()
                .take(take)
                .map(|s| m.select(scenario, s.session, &req).quality_paths as f64)
                .collect();
            (name.to_string(), quality)
        })
        .collect()
}

fn main() {
    let args = Args::parse(Scale::Tiny);
    // Two population sizes with the paper's 4.434 ratio, scaled down from
    // 23,366/103,625 when not run at --scale scalability.
    let (small_n, large_n) = match args.scale {
        Scale::Tiny => (2_000, 8_868),
        _ => (23_366, 103_625),
    };
    let ratio = large_n as f64 / small_n as f64;

    let base = args.scale.scenario_config();
    let small_cfg = ScenarioConfig {
        population: PopulationConfig {
            target_hosts: small_n,
            ..base.population.clone()
        },
        internet: base.internet.clone(),
        net: base.net.clone(),
    };
    let large_cfg = ScenarioConfig {
        population: PopulationConfig {
            target_hosts: large_n,
            ..base.population.clone()
        },
        internet: base.internet,
        net: base.net,
    };

    eprintln!("fig17: building {small_n}-host scenario…");
    let small = Scenario::build(small_cfg, args.seed);
    eprintln!("fig17: building {large_n}-host scenario…");
    let large = Scenario::build(large_cfg, args.seed);

    let telemetry = Telemetry::new();
    let take = 200;
    let small_res = run_at(&small, args.sessions, args.seed, take, &telemetry, "small");
    let large_res = run_at(
        &large,
        args.sessions,
        args.seed + 1,
        take,
        &telemetry,
        "large",
    );

    section(&format!(
        "Fig. 17: quality paths at {large_n} hosts divided by {ratio:.3}, vs {small_n} hosts"
    ));
    row(&[
        &"method",
        &"small p50",
        &"large/r p50",
        &"small p90",
        &"large/r p90",
    ]);
    for ((name, small_q), (_, large_q)) in small_res.iter().zip(&large_res) {
        let s = sorted(small_q);
        let l = sorted(&large_q.iter().map(|q| q / ratio).collect::<Vec<_>>());
        if s.is_empty() || l.is_empty() {
            row(&[&name, &"-", &"-", &"-", &"-"]);
            continue;
        }
        row(&[
            &name,
            &format!("{:.0}", percentile(&s, 0.5)),
            &format!("{:.0}", percentile(&l, 0.5)),
            &format!("{:.0}", percentile(&s, 0.9)),
            &format!("{:.0}", percentile(&l, 0.9)),
        ]);
    }
    println!(
        "\n# Scalable ⇔ the scaled large-population column matches the small one.\n\
         # ASAP's columns should agree; DEDI/RAND/MIX collapse toward zero."
    );

    args.write_metrics(&telemetry);
}
