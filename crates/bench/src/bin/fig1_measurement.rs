//! Figure 1 — the all-pairwise cluster-delegate latency measurement
//! procedure, re-run end to end on the synthetic world:
//!
//! crawl (peer population) → BGP prefix/origin extraction → AS-level
//! cluster identification and delegate selection → King pairwise
//! measurement with non-response and noise.
//!
//! The paper's campaign produced: 269,413 crawled IPs of which 103,625
//! matched BGP prefixes, 7,171 prefix clusters, 1,461 ASes, and 1,498,749
//! responses from 2,130,140 delegate-pair King queries (~70%).

use asap_bench::{row, section, Args, Scale};
use asap_cluster::{ClusterLevel, Clustering};
use asap_netsim::king::{KingConfig, KingEstimator};
use asap_topology::rib::{collect_rib, extract_prefix_table, RibConfig};

fn main() {
    let args = Args::parse(Scale::Tiny);
    eprintln!(
        "fig1: building scenario ({:?}, seed {})…",
        args.scale, args.seed
    );
    let scenario = args.scenario();

    // Step 1-2: crawl + BGP tables. The "crawl" also picks up IPs whose
    // prefixes no collector saw (the paper kept only 103,625 of 269,413);
    // we emulate the partial view with a reduced vantage set.
    let rib = collect_rib(
        &scenario.internet.graph,
        scenario.population.announcements(),
        &RibConfig {
            vantage_points: 8,
            seed: args.seed,
        },
    );
    let table = extract_prefix_table(&rib);
    let ips: Vec<asap_cluster::Ip> = scenario.population.hosts().iter().map(|h| h.ip).collect();

    section("Crawl + prefix matching");
    row(&[&"crawled IPs", &ips.len()]);
    let by_prefix = Clustering::from_ips(&ips, &table, ClusterLevel::Prefix);
    let by_as = Clustering::from_ips(&ips, &table, ClusterLevel::As);
    row(&[&"matched IPs", &by_prefix.peer_count()]);
    row(&[&"unmatched (dropped)", &by_prefix.unmatched().len()]);
    row(&[&"prefix clusters", &by_prefix.cluster_count()]);
    row(&[&"ASes with peers", &by_as.cluster_count()]);

    // Step 3-4: delegates + pairwise King measurement.
    section("Pairwise delegate King measurement");
    let delegates: Vec<_> = by_prefix.delegates().collect();
    let king = KingEstimator::new(&scenario.net, KingConfig::default(), args.seed ^ 0x16);
    let mut responses = 0u64;
    let mut rtts = Vec::new();
    for i in 0..delegates.len() {
        for j in (i + 1)..delegates.len() {
            let a = scenario.population.host_by_ip(delegates[i].1).unwrap().asn;
            let b = scenario.population.host_by_ip(delegates[j].1).unwrap().asn;
            if let Some(rtt) = king.measure_rtt_ms(a, b) {
                responses += 1;
                rtts.push(rtt);
            }
        }
    }
    let pairs = king.probes_issued();
    row(&[&"delegate pairs probed", &pairs]);
    row(&[&"responses", &responses]);
    row(&[
        &"response rate",
        &format!("{:.2}", responses as f64 / pairs.max(1) as f64),
    ]);
    rtts.sort_by(f64::total_cmp);
    if !rtts.is_empty() {
        row(&[
            &"measured RTT p50 (ms)",
            &format!("{:.1}", rtts[rtts.len() / 2]),
        ]);
        row(&[
            &"measured RTT p95 (ms)",
            &format!("{:.1}", rtts[(rtts.len() as f64 * 0.95) as usize]),
        ]);
    }
    println!(
        "\n# Paper: 2,130,140 pairs → 1,498,749 responses (70%); 103,625 matched IPs\n\
         # in 7,171 prefix clusters / 1,461 ASes."
    );
}
