//! Figures 5–7 and Tables 1–2 — the Skype measurement study, regenerated
//! with the AS-unaware Skype-like prober.
//!
//! The paper captures 14 calling sessions between 17 sites (Table 1 /
//! Fig. 5) and reports: relay-path RTT time series of problem sessions
//! (Fig. 6), stabilization times up to 329 s (Fig. 7(a)), tens of relays
//! probed per session — 59 and 37 in sessions 10 and 11 (Fig. 7(b)), 3–6
//! relays probed after stabilization (Fig. 7(c)), and two probed relays in
//! one AS (Table 2).

use asap_baselines::skype::{simulate_call, SkypeConfig};
use asap_bench::{row, section, Args, Scale};
use asap_workload::sessions::Session;
use asap_workload::{HostId, Scenario};

/// Picks 17 "measurement sites" spread across the world: hosts whose ASes
/// are pairwise far apart, emulating the paper's US/Canada/China spread.
fn pick_sites(scenario: &Scenario) -> Vec<HostId> {
    let hosts = scenario.population.hosts();
    let mut sites: Vec<HostId> = vec![hosts[0].id];
    while sites.len() < 17 {
        // Farthest-point sampling by coordinate distance.
        let best = hosts
            .iter()
            .step_by(7)
            .map(|h| {
                let d: f64 = sites
                    .iter()
                    .map(|&s| {
                        scenario
                            .internet
                            .distance(scenario.population.host(s).asn, h.asn)
                    })
                    .fold(f64::INFINITY, f64::min);
                (h.id, d)
            })
            .filter(|(id, _)| !sites.contains(id))
            .max_by(|a, b| a.1.total_cmp(&b.1));
        match best {
            Some((id, _)) => sites.push(id),
            None => break,
        }
    }
    sites
}

fn main() {
    let args = Args::parse(Scale::Tiny);
    eprintln!(
        "fig6_7: building scenario ({:?}, seed {})…",
        args.scale, args.seed
    );
    let scenario = args.scenario();
    let sites = pick_sites(&scenario);

    // Table 1: the paper's 14 caller–callee site pairs.
    let pairs: [(usize, usize); 14] = [
        (3, 5),
        (1, 11),
        (1, 7),
        (1, 14),
        (1, 3),
        (1, 16),
        (1, 15),
        (1, 15),
        (1, 9),
        (1, 16),
        (1, 13),
        (1, 12),
        (6, 8),
        (2, 10),
    ];
    section("Table 1: 14 simulated calling sessions (site indices)");
    row(&[&"session", &"caller", &"callee"]);
    for (i, (a, b)) in pairs.iter().enumerate() {
        row(&[&(i + 1), &a, &b]);
    }

    let config = SkypeConfig {
        seed: args.seed,
        ..SkypeConfig::default()
    };
    let reports: Vec<_> = pairs
        .iter()
        .map(|&(a, b)| {
            let session = Session {
                caller: sites[a - 1],
                callee: sites[b % sites.len()],
            };
            simulate_call(&scenario, session, &config)
        })
        .collect();

    section("Fig. 6: relay-path RTT time series (sessions 4, 9, 10)");
    for idx in [3usize, 8, 9] {
        println!("# session {}: t(s)  measured_rtt(ms)  relay", idx + 1);
        for p in reports[idx].probes.iter().take(25) {
            println!(
                "{:>8.1}  {:>10.1}  {}",
                p.at.as_secs_f64(),
                p.measured_rtt_ms,
                p.relay
                    .map(|r| r.to_string())
                    .unwrap_or_else(|| "direct".into())
            );
        }
        println!(
            "# major path rtt {:.1} ms via {}",
            reports[idx].major_rtt_ms,
            reports[idx]
                .major_relay
                .map(|r| r.to_string())
                .unwrap_or_else(|| "direct".into())
        );
    }

    section("Fig. 7(a–c): stabilization time / probed nodes / probes after stabilization");
    row(&[
        &"session",
        &"stabilization(s)",
        &"probed",
        &"after-stab",
        &"same-AS pairs",
    ]);
    for (i, r) in reports.iter().enumerate() {
        row(&[
            &(i + 1),
            &format!("{:.1}", r.stabilization_s),
            &r.probed_total,
            &r.probed_after_stabilization,
            &r.same_as_pairs,
        ]);
    }
    let max_stab = reports
        .iter()
        .map(|r| r.stabilization_s)
        .fold(0.0, f64::max);
    let max_probed = reports.iter().map(|r| r.probed_total).max().unwrap_or(0);
    row(&[&"max", &format!("{max_stab:.1}"), &max_probed, &"", &""]);

    // §5.1: forward and backward directions hunt independently, so some
    // sessions end up with different major paths per direction
    // ("asymmetric sessions"; the paper found several, plus 4 symmetric
    // sessions on direct paths and 7 on one-hop relays).
    section("§5.1: major-path symmetry across directions");
    let mut asymmetric = 0;
    let mut direct_majors = 0;
    let mut relay_majors = 0;
    for &(a, b) in &pairs {
        let fwd = Session {
            caller: sites[a - 1],
            callee: sites[b % sites.len()],
        };
        let bwd = Session {
            caller: fwd.callee,
            callee: fwd.caller,
        };
        let rf = simulate_call(&scenario, fwd, &config);
        let rb = simulate_call(&scenario, bwd, &config);
        if rf.major_relay != rb.major_relay {
            asymmetric += 1;
        }
        for r in [&rf, &rb] {
            if r.major_relay.is_none() {
                direct_majors += 1;
            } else {
                relay_majors += 1;
            }
        }
    }
    row(&[&"asymmetric sessions", &asymmetric, &"of", &pairs.len()]);
    row(&[&"direct major paths (both directions)", &direct_majors]);
    row(&[&"relayed major paths (both directions)", &relay_majors]);

    section("Table 2: probed relay pairs sharing an AS (limit 2)");
    let mut shown = 0;
    for (i, r) in reports.iter().enumerate() {
        if r.same_as_pairs > 0 && shown < 3 {
            // Find one concrete pair for the table.
            let mut seen: Vec<HostId> = Vec::new();
            for p in r.probes.iter().filter_map(|p| p.relay) {
                if !seen.contains(&p) {
                    seen.push(p);
                }
            }
            'outer: for x in 0..seen.len() {
                for y in (x + 1)..seen.len() {
                    let (hx, hy) = (
                        scenario.population.host(seen[x]),
                        scenario.population.host(seen[y]),
                    );
                    if hx.asn == hy.asn {
                        println!(
                            "session {:>2}: relays {} and {} both in {} ({} same-AS pairs total)",
                            i + 1,
                            hx.ip,
                            hy.ip,
                            hx.asn,
                            r.same_as_pairs
                        );
                        shown += 1;
                        break 'outer;
                    }
                }
            }
        }
    }
    if shown == 0 {
        println!("(no same-AS relay pair in this run — rerun with another --seed)");
    }
}
