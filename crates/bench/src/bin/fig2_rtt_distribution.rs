//! Figure 2 — RTT distribution of direct IP routing and optimal one-hop
//! relay.
//!
//! Fig. 2(a): of 10^5 random sessions, ~10^4 have direct RTT > 200 ms,
//! ~10^3 have > 300 ms, ~10 exceed 5 s. Fig. 2(b): ~60% of sessions have
//! an optimal one-hop RTT shorter than their direct RTT, and most optimal
//! one-hop RTTs fall below 100 ms.

use asap_baselines::{Opt, RelaySelector};
use asap_bench::{frac_above, percentile, row, section, sorted, Args, Scale};
use asap_voip::QualityRequirement;
use asap_workload::sessions;

fn main() {
    let args = Args::parse(Scale::Tiny);
    eprintln!(
        "fig2: building scenario ({:?}, seed {})…",
        args.scale, args.seed
    );
    let scenario = args.scenario();
    let all = sessions::generate(&scenario.population, args.sessions, args.seed ^ 0xF162);
    let with = sessions::with_direct_routes(&scenario, &all);
    let direct: Vec<f64> = with.iter().map(|s| s.direct_rtt_ms).collect();
    let direct_sorted = sorted(&direct);

    section("Fig. 2(a): direct IP routing RTT distribution");
    row(&[&"threshold(ms)", &"sessions above", &"fraction"]);
    for t in [100.0, 200.0, 300.0, 500.0, 1000.0, 5000.0] {
        let above = direct.iter().filter(|&&r| r > t).count();
        row(&[&t, &above, &format!("{:.5}", frac_above(&direct, t))]);
    }
    row(&[
        &"p50",
        &format!("{:.1}", percentile(&direct_sorted, 0.5)),
        &"",
    ]);
    row(&[
        &"p90",
        &format!("{:.1}", percentile(&direct_sorted, 0.9)),
        &"",
    ]);
    row(&[
        &"p99",
        &format!("{:.1}", percentile(&direct_sorted, 0.99)),
        &"",
    ]);

    // Fig. 2(b): direct vs optimal one-hop on a sample (OPT is exhaustive,
    // so subsample for tractability at larger scales).
    let sample = with.len().min(400);
    let opt = Opt::new().with_two_hop_candidates(0);
    let req = QualityRequirement::default();
    let mut improved = 0usize;
    let mut opt_rtts = Vec::new();
    for s in with.iter().take(sample) {
        let out = opt.select(&scenario, s.session, &req);
        if let Some(best) = out.best {
            if best.rtt_ms < s.direct_rtt_ms {
                improved += 1;
            }
            opt_rtts.push(best.rtt_ms.min(s.direct_rtt_ms));
        }
    }
    section("Fig. 2(b): direct vs optimal one-hop (sampled)");
    row(&[&"sampled sessions", &sample]);
    row(&[
        &"1-hop beats direct",
        &improved,
        &format!("{:.2}", improved as f64 / sample as f64),
    ]);
    let opt_sorted = sorted(&opt_rtts);
    row(&[
        &"optimal p50(ms)",
        &format!("{:.1}", percentile(&opt_sorted, 0.5)),
    ]);
    row(&[
        &"optimal p90(ms)",
        &format!("{:.1}", percentile(&opt_sorted, 0.9)),
    ]);
    row(&[
        &"optimal below 100ms",
        &format!("{:.2}", 1.0 - frac_above(&opt_sorted, 100.0)),
    ]);
}
