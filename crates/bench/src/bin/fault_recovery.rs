//! Fault-recovery experiment — robustness beyond the paper.
//!
//! The paper evaluates ASAP on a cooperative network; this experiment
//! measures how the protocol machine holds up when it isn't. It sweeps
//! the per-tick surrogate/host crash rate (with a light sprinkling of
//! message-drop windows, congestion bursts, and forced-stale epochs at
//! every point) through the event-driven simulation and reports, per
//! rate:
//!
//! * how many calls completed, were dropped mid-call, or failed over;
//! * the relayed-call survival ratio (the headline robustness number:
//!   at 1%/tick crash rate it must stay ≥ 99%);
//! * what recovery cost: warm handoffs vs cold re-elections, retries,
//!   cache invalidations, recovery messages, and backoff wait
//!   (stabilization) time.
//!
//! One JSON line per sweep point goes to stdout after the human table,
//! so runs can be diffed; the whole run is deterministic in `--seed`
//! (see `tests/determinism.rs`, which pins that down).

use asap_bench::experiments::{fault_recovery_sweep_with, json_lines};
use asap_bench::{row, section, Args, Scale};
use asap_telemetry::Telemetry;

fn main() {
    let args = Args::parse(Scale::Tiny);
    let scenario = args.scenario();
    // Bound the call count: each call can be failed over many times under
    // heavy churn, and 5 sweep points share one process.
    let calls = args.sessions.min(1_000);

    let telemetry = Telemetry::new();
    let rows = fault_recovery_sweep_with(&scenario, args.seed, calls, &telemetry);

    section("fault recovery: crash-rate sweep");
    row(&[
        &"crash/tick",
        &"completed",
        &"dropped",
        &"failovers",
        &"survival",
        &"warm",
        &"re-elect",
        &"retries",
        &"rec-msgs",
    ]);
    for r in &rows {
        row(&[
            &format!("{:.3}", r.crash_rate_per_tick),
            &r.calls_completed,
            &r.calls_dropped,
            &r.midcall_failovers,
            &format!("{:.4}", r.survival),
            &r.warm_handoffs,
            &r.re_elections,
            &r.retries,
            &r.recovery_messages,
        ]);
    }

    section("json");
    print!("{}", json_lines(&rows));

    args.write_metrics(&telemetry);
}
