//! Fault-recovery experiment — robustness beyond the paper.
//!
//! The paper evaluates ASAP on a cooperative network; this experiment
//! measures how the protocol machine holds up when it isn't. It sweeps
//! the per-tick surrogate/host crash rate (with a light sprinkling of
//! message-drop windows, congestion bursts, and forced-stale epochs at
//! every point) through the event-driven simulation and reports, per
//! rate:
//!
//! * how many calls completed, were dropped mid-call, or failed over;
//! * the relayed-call survival ratio (the headline robustness number:
//!   at 1%/tick crash rate it must stay ≥ 99%);
//! * what recovery cost: re-elections, retries, cache invalidations,
//!   recovery messages, and backoff wait (stabilization) time.
//!
//! One JSON line per sweep point goes to stdout after the human table,
//! so runs can be diffed; the whole run is deterministic in `--seed`.

use asap_bench::{row, section, Args, Scale};
use asap_core::events::{run, SimConfig};
use asap_core::AsapConfig;
use asap_netsim::faults::FaultPlanConfig;
use serde::Serialize;

/// One sweep point of the crash-rate experiment.
#[derive(Debug, Serialize)]
struct FaultRecoveryRow {
    experiment: String,
    seed: u64,
    crash_rate_per_tick: f64,
    calls: u64,
    calls_completed: u64,
    calls_without_path: u64,
    calls_dropped: u64,
    midcall_failovers: u64,
    survival: f64,
    re_elections: u64,
    timeouts: u64,
    retries: u64,
    cache_invalidations: u64,
    recovery_messages: u64,
    stabilization_ticks: u64,
}

fn main() {
    let args = Args::parse(Scale::Tiny);
    let scenario = args.scenario();
    // Bound the call count: each call can be failed over many times under
    // heavy churn, and 5 sweep points share one process.
    let calls = args.sessions.min(1_000);
    let rates = [0.0, 0.002, 0.005, 0.01, 0.02];

    section("fault recovery: crash-rate sweep");
    row(&[
        &"crash/tick",
        &"completed",
        &"dropped",
        &"failovers",
        &"survival",
        &"re-elect",
        &"retries",
        &"rec-msgs",
    ]);

    let mut rows = Vec::new();
    for &rate in &rates {
        let sim = SimConfig {
            calls,
            surrogate_failures: 0,
            faults: Some(FaultPlanConfig {
                seed: args.seed,
                surrogate_crash_per_tick: rate,
                host_crash_per_tick: rate,
                congestion_per_tick: 0.002,
                drop_window_per_tick: 0.002,
                stale_close_set_per_tick: 0.002,
                ..Default::default()
            }),
            seed: args.seed,
            ..Default::default()
        };
        let report = run(&scenario, AsapConfig::default(), &sim);
        let survival = if report.calls_completed > 0 {
            (report.calls_completed - report.calls_dropped) as f64
                / report.calls_completed as f64
        } else {
            1.0
        };
        row(&[
            &format!("{rate:.3}"),
            &report.calls_completed,
            &report.calls_dropped,
            &report.midcall_failovers,
            &format!("{survival:.4}"),
            &report.recovery.re_elections,
            &report.recovery.retries,
            &report.recovery.recovery_messages,
        ]);
        rows.push(FaultRecoveryRow {
            experiment: "fault_recovery".to_owned(),
            seed: args.seed,
            crash_rate_per_tick: rate,
            calls: calls as u64,
            calls_completed: report.calls_completed,
            calls_without_path: report.calls_without_path,
            calls_dropped: report.calls_dropped,
            midcall_failovers: report.midcall_failovers,
            survival,
            re_elections: report.recovery.re_elections,
            timeouts: report.recovery.timeouts,
            retries: report.recovery.retries,
            cache_invalidations: report.recovery.cache_invalidations,
            recovery_messages: report.recovery.recovery_messages,
            stabilization_ticks: report.recovery.stabilization_ticks,
        });
    }

    section("json");
    for r in &rows {
        println!("{}", serde_json::to_string(r).expect("row serializes"));
    }
}
