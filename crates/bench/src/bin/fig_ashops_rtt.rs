//! §3 / §6.2 supporting statistics — RTT vs AS hops.
//!
//! Two claims the protocol design rests on:
//!
//! 1. path latency correlates with AS-hop count (property 3, citing the
//!    AS-path-length server-selection heuristic);
//! 2. ">90% of the sessions with direct IP routing RTTs below 300 ms have
//!    no more than 4 AS hops" — the justification for `k = 4` in
//!    `construct-close-cluster-set()`.

use asap_bench::{row, section, Args, Scale};
use asap_workload::sessions;

fn main() {
    let args = Args::parse(Scale::Tiny);
    eprintln!(
        "ashops: building scenario ({:?}, seed {})…",
        args.scale, args.seed
    );
    let scenario = args.scenario();
    let all = sessions::generate(
        &scenario.population,
        args.sessions.min(30_000),
        args.seed ^ 0xA5,
    );
    let with = sessions::with_direct_routes(&scenario, &all);

    let mut by_hops: std::collections::BTreeMap<usize, Vec<f64>> = Default::default();
    let mut sub300 = 0usize;
    let mut sub300_le4 = 0usize;
    for s in &with {
        let a = scenario.population.host(s.session.caller).asn;
        let b = scenario.population.host(s.session.callee).asn;
        let Some(h) = scenario.net.as_hops(a, b) else {
            continue;
        };
        by_hops.entry(h).or_default().push(s.direct_rtt_ms);
        if s.direct_rtt_ms < 300.0 {
            sub300 += 1;
            if h <= 4 {
                sub300_le4 += 1;
            }
        }
    }

    section("RTT vs AS hops (property 3: correlation)");
    row(&[&"AS hops", &"sessions", &"mean RTT(ms)", &"median RTT(ms)"]);
    for (h, rtts) in &by_hops {
        let mut v = rtts.clone();
        v.sort_by(f64::total_cmp);
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        row(&[
            h,
            &v.len(),
            &format!("{mean:.1}"),
            &format!("{:.1}", v[v.len() / 2]),
        ]);
    }

    section("k = 4 justification (§6.2)");
    row(&[&"sessions with direct RTT < 300ms", &sub300]);
    row(&[&"of those, ≤ 4 AS hops", &sub300_le4]);
    row(&[
        &"fraction",
        &format!("{:.3}", sub300_le4 as f64 / sub300.max(1) as f64),
    ]);
    println!("\n# The paper reports this fraction > 0.9, motivating k = 4.");
}
