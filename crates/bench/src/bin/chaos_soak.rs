//! Chaos soak — the robustness acceptance gate.
//!
//! Drives one long seed-reproducible schedule of churn (announced *and*
//! silent crashes), AS partitions, congestion bursts, and message-drop
//! windows through the event simulation, with the full membership stack
//! live: phi-accrual suspicion, replica-set warm handoff, and the
//! graceful-degradation ladder. At the end it checks the four soak
//! invariants:
//!
//! 1. no call was routed through a relay the suspicion detector had
//!    already declared dead;
//! 2. every degraded call had an excuse (an active fault) — degradation
//!    is a response, never a steady state;
//! 3. every session terminated inside the simulated window;
//! 4. after all faults healed, no cluster was left with an unusable
//!    control plane (nobody is permanently stuck down the ladder).
//!
//! A second phase re-runs the same churn/partition schedule with the
//! overload squeeze on top (skewed callers + tight capacity budgets):
//! saturation pressure must not erode the invariants — in particular a
//! busy relay is never an excuse to route through a dead one.
//!
//! The run prints a human table and one JSON line per phase; the process
//! exits nonzero if any invariant is violated in either phase. Two runs
//! with the same `--seed` produce byte-identical JSON.

use asap_bench::experiments::{chaos_overload_phase_sharded, chaos_soak_sharded, json_lines};
use asap_bench::{row, section, Args, Scale};
use asap_telemetry::Telemetry;

fn main() {
    let args = Args::parse(Scale::Tiny);
    let scenario = args.scenario();
    let telemetry = Telemetry::new();
    // `--shards 1` (the default) is the legacy single-shard schedule;
    // larger counts run shards on the pool and merge deterministically.
    let pool = args.thread_pool();
    let (report, overload) = pool.install(|| {
        let report =
            chaos_soak_sharded(&scenario, args.seed, args.sessions, args.shards, &telemetry);
        let overload = chaos_overload_phase_sharded(
            &scenario,
            args.seed,
            args.sessions,
            args.shards,
            &telemetry,
        );
        (report, overload)
    });

    section("chaos soak: churn + partition schedule");
    row(&[&"metric", &"value"]);
    row(&[&"sessions", &report.sessions]);
    row(&[&"completed", &report.calls_completed]);
    row(&[&"dropped", &report.calls_dropped]);
    row(&[&"midcall failovers", &report.midcall_failovers]);
    row(&[&"partitions", &report.partitions]);
    row(&[&"partition drops", &report.partition_dropped_calls]);
    row(&[&"degraded calls", &report.degraded_calls]);
    row(&[&"stale sets served", &report.stale_sets_served]);
    row(&[&"probe fallbacks", &report.probe_fallbacks]);
    row(&[&"forced direct", &report.forced_direct]);
    row(&[&"warm handoffs", &report.warm_handoffs]);
    row(&[&"cold re-elections", &report.re_elections]);
    row(&[&"suspected dead", &report.suspected_dead]);
    row(&[&"ladder downgrades", &report.downgrades]);
    row(&[&"ladder recoveries", &report.ladder_recoveries]);

    section("invariants (must all be 0)");
    row(&[&"dead-relay calls", &report.dead_relay_calls]);
    row(&[&"unexcused degraded", &report.unexcused_degraded_calls]);
    row(&[&"unterminated calls", &report.unterminated_calls]);
    row(&[&"stuck clusters", &report.stuck_clusters]);

    section("overload phase: same schedule + skewed callers + tight capacity");
    row(&[&"metric", &"value"]);
    row(&[&"completed", &overload.calls_completed]);
    row(&[&"dropped", &overload.calls_dropped]);
    row(&[&"midcall failovers", &overload.midcall_failovers]);
    row(&[&"degraded calls", &overload.degraded_calls]);
    row(&[&"dead-relay calls", &overload.dead_relay_calls]);
    row(&[&"unexcused degraded", &overload.unexcused_degraded_calls]);
    row(&[&"unterminated calls", &overload.unterminated_calls]);
    row(&[&"stuck clusters", &overload.stuck_clusters]);

    section("json");
    print!("{}", json_lines(&[report.clone(), overload.clone()]));

    args.write_metrics(&telemetry);

    let violations = report.violations() + overload.violations();
    assert_eq!(
        overload.dead_relay_calls, 0,
        "saturation must never push a call through a dead relay"
    );
    if violations > 0 {
        eprintln!("chaos soak FAILED: {violations} invariant violation(s)");
        std::process::exit(1);
    }
}
