//! Parallel session-engine benchmark and determinism gate.
//!
//! Two modes:
//!
//! - **default** — times the sharded chaos-soak workload (`--shards`,
//!   default 8) on rayon pools of 1, 2, 4, and 8 threads and writes the
//!   speedup baseline to `--out` (default `BENCH_parallel.json`) as
//!   newline-delimited JSON rows
//!   `{"experiment":"par_bench","threads":N,"elapsed_ms":…,"sessions_per_sec":…}`.
//!   Wall-clock speedup obviously requires the cores to exist: on a
//!   single-core host every pool width measures the same machine and
//!   the rows document that honestly.
//! - **`--smoke`** — the CI determinism gate: runs the same 4-shard
//!   workload on a 1-thread and a 4-thread pool and requires the merged
//!   [`Telemetry::snapshot_json`] bytes and soak JSON rows to be
//!   identical, and the close-set/route caches to actually register
//!   hits. Exits nonzero on any mismatch.
//!
//! Every simulated run is deterministic per `(seed, shards)`; only the
//! wall-clock numbers vary between invocations.

use std::time::Instant;

use asap_bench::experiments::{chaos_soak_sharded, json_lines};
use asap_bench::{row, section, Scale};
use asap_telemetry::Telemetry;
use asap_workload::Scenario;
use serde::Serialize;

/// One timed pool width.
#[derive(Debug, Clone, Serialize)]
struct ParBenchRow {
    /// Constant `"par_bench"`.
    experiment: String,
    /// Master seed of the timed run.
    seed: u64,
    /// Shards the workload was split into.
    shards: usize,
    /// Rayon pool width.
    threads: usize,
    /// Wall-clock time of the sharded soak, ms.
    elapsed_ms: u64,
    /// Sessions simulated per wall-clock second.
    sessions_per_sec: f64,
}

struct ParArgs {
    smoke: bool,
    sessions: usize,
    seed: u64,
    shards: usize,
    out: String,
}

/// Hand-rolled parsing: `par_bench` has mode flags the shared
/// [`asap_bench::Args`] parser would reject.
fn parse_args() -> ParArgs {
    let mut args = ParArgs {
        smoke: false,
        sessions: 2_000,
        seed: 1,
        shards: 8,
        out: "BENCH_parallel.json".to_owned(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let need_value = |i: usize| {
            argv.get(i + 1)
                .unwrap_or_else(|| panic!("missing value after {}", argv[i]))
                .clone()
        };
        match argv[i].as_str() {
            "--smoke" => {
                args.smoke = true;
                i += 1;
            }
            "--sessions" => {
                args.sessions = need_value(i).parse().expect("--sessions takes a number");
                i += 2;
            }
            "--seed" => {
                args.seed = need_value(i).parse().expect("--seed takes a number");
                i += 2;
            }
            "--shards" => {
                args.shards = need_value(i).parse().expect("--shards takes a number");
                assert!(args.shards >= 1, "--shards must be at least 1");
                i += 2;
            }
            "--out" => {
                args.out = need_value(i);
                i += 2;
            }
            other => {
                panic!("unknown argument {other:?} (--smoke|--sessions|--seed|--shards|--out)")
            }
        }
    }
    args
}

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("rayon pool builds")
}

/// Runs the sharded soak on a pool of the given width and returns the
/// soak JSON rows plus the merged telemetry snapshot.
fn soak_at(scenario: &Scenario, args: &ParArgs, shards: usize, threads: usize) -> (String, String) {
    let telemetry = Telemetry::new();
    let report = pool(threads)
        .install(|| chaos_soak_sharded(scenario, args.seed, args.sessions, shards, &telemetry));
    (json_lines(&[report]), telemetry.snapshot_json())
}

fn smoke(scenario: &Scenario, args: &ParArgs) {
    let shards = 4;
    section("par_bench --smoke: 1-thread vs 4-thread determinism gate");
    let (rows1, snap1) = soak_at(scenario, args, shards, 1);
    let (rows4, snap4) = soak_at(scenario, args, shards, 4);

    let mut failures = Vec::new();
    if rows1 != rows4 {
        failures.push("soak JSON rows differ between 1 and 4 threads".to_owned());
    }
    if snap1 != snap4 {
        failures.push("telemetry snapshots differ between 1 and 4 threads".to_owned());
    }

    // The caches must actually be in the hot path, not just present.
    let telemetry = Telemetry::new();
    pool(1).install(|| chaos_soak_sharded(scenario, args.seed, args.sessions, shards, &telemetry));
    let close_set_hits = telemetry
        .registry()
        .counter("ASAP.cache.close_set.hits")
        .get();
    if close_set_hits == 0 {
        failures.push("close-set cache registered no hits".to_owned());
    }
    let (route_hits, route_misses) = scenario.net.route_cache_stats();
    if route_hits == 0 {
        failures.push("valley-free route cache registered no hits".to_owned());
    }

    row(&[&"check", &"value"]);
    row(&[&"rows identical", &(rows1 == rows4)]);
    row(&[&"snapshots identical", &(snap1 == snap4)]);
    row(&[&"close-set cache hits", &close_set_hits]);
    row(&[
        &"route cache hits/misses",
        &format!("{route_hits}/{route_misses}"),
    ]);

    if failures.is_empty() {
        println!("par_bench smoke OK: byte-identical at 1 and 4 threads");
    } else {
        for f in &failures {
            eprintln!("par_bench smoke FAILED: {f}");
        }
        std::process::exit(1);
    }
}

fn bench(scenario: &Scenario, args: &ParArgs) {
    section(&format!(
        "par_bench: {} sessions, {} shards, pools of 1/2/4/8 threads",
        args.sessions, args.shards
    ));
    row(&[&"threads", &"elapsed_ms", &"sessions/s"]);
    let mut rows = Vec::new();
    let mut baseline_snapshot = None;
    for threads in [1usize, 2, 4, 8] {
        let start = Instant::now();
        let (_, snapshot) = soak_at(scenario, args, args.shards, threads);
        let elapsed = start.elapsed();
        // Every pool width must produce the same simulation — the
        // timing loop doubles as a determinism sweep.
        let base = baseline_snapshot.get_or_insert_with(|| snapshot.clone());
        assert_eq!(
            *base, snapshot,
            "telemetry snapshot diverged at {threads} threads"
        );
        let sessions_per_sec = args.sessions as f64 / elapsed.as_secs_f64().max(1e-9);
        row(&[
            &threads,
            &elapsed.as_millis(),
            &format!("{sessions_per_sec:.0}"),
        ]);
        rows.push(ParBenchRow {
            experiment: "par_bench".to_owned(),
            seed: args.seed,
            shards: args.shards,
            threads,
            elapsed_ms: elapsed.as_millis() as u64,
            sessions_per_sec,
        });
    }
    let json = json_lines(&rows);
    std::fs::write(&args.out, &json)
        .unwrap_or_else(|e| panic!("cannot write --out {}: {e}", args.out));
    eprintln!("par_bench baseline written to {}", args.out);
    print!("{json}");
}

fn main() {
    let args = parse_args();
    let scenario = Scenario::build(Scale::Tiny.scenario_config(), args.seed);
    if args.smoke {
        smoke(&scenario, &args);
    } else {
        bench(&scenario, &args);
    }
}
