//! Overload soak — the capacity/admission acceptance gate.
//!
//! Drives a fault-free but heavily *skewed* caller population through
//! the event simulation twice:
//!
//! 1. **capacity enabled** — the real configuration: surrogate
//!    admission queues with deadlines, load shedding into the
//!    degradation ladder, hedged close-set fetches, relay-call slots
//!    with busy-spillover and saturation failover;
//! 2. **capacity disabled** — the regression guard: the same squeeze
//!    with no enforcement must reproduce the unbounded hot-surrogate
//!    behavior (nothing queued, nothing shed, and a hot-surrogate load
//!    at least as heavy as the bounded run's).
//!
//! The enabled run asserts the overload invariants:
//!
//! 1. every offered call is accounted for — completed or no-path, with
//!    shed calls served degraded rather than lost;
//! 2. admission control never loses a fetch
//!    (admitted + queued + shed == offered);
//! 3. the deepest admission queue stays within the configured bound;
//! 4. every session terminates inside the simulated window.
//!
//! The run prints a human table per side, then one JSON line per side;
//! the process exits nonzero on any violation or a broken regression
//! guard. Two runs with the same `--seed` produce byte-identical JSON
//! and `--metrics-out` snapshots.

use asap_bench::experiments::{json_lines, overload_soak_sharded, OverloadSoakReport};
use asap_bench::{row, section, Args, Scale};
use asap_telemetry::Telemetry;

fn print_side(report: &OverloadSoakReport) {
    section(&format!(
        "overload soak: skewed callers, capacity {}",
        if report.capacity_enabled {
            "ENABLED"
        } else {
            "disabled (regression guard)"
        }
    ));
    row(&[&"metric", &"value"]);
    row(&[&"sessions", &report.sessions]);
    row(&[&"completed", &report.calls_completed]);
    row(&[&"no path", &report.calls_without_path]);
    row(&[&"shed→degraded calls", &report.overload_shed_calls]);
    row(&[&"fetches offered", &report.offered_fetches]);
    row(&[&"admitted", &report.admitted_fetches]);
    row(&[&"queued", &report.queued_fetches]);
    row(&[&"shed", &report.shed_fetches]);
    row(&[&"max queue depth", &report.max_queue_depth]);
    row(&[&"hedged fetches", &report.hedged_fetches]);
    row(&[&"hedge wins", &report.hedge_wins]);
    row(&[&"relay busy skips", &report.relay_busy_skips]);
    row(&[&"relay spillovers", &report.relay_spillovers]);
    row(&[&"saturation failovers", &report.saturation_failovers]);
    row(&[&"max relay slots in use", &report.max_relay_slots_in_use]);
    row(&[&"hot surrogate load", &report.hot_surrogate_load]);

    section("invariants (must all be 0)");
    row(&[&"unaccounted calls", &report.unaccounted_calls]);
    row(&[&"unaccounted fetches", &report.unaccounted_fetches]);
    row(&[&"queue depth violations", &report.queue_depth_violations]);
    row(&[&"unterminated calls", &report.unterminated_calls]);
}

fn main() {
    let args = Args::parse(Scale::Tiny);
    let scenario = args.scenario();
    let telemetry = Telemetry::new();
    // `--shards 1` (the default) is the legacy single-shard schedule.
    let pool = args.thread_pool();
    let (bounded, unbounded) = pool.install(|| {
        let bounded = overload_soak_sharded(
            &scenario,
            args.seed,
            args.sessions,
            true,
            args.shards,
            &telemetry,
        );
        let unbounded = overload_soak_sharded(
            &scenario,
            args.seed,
            args.sessions,
            false,
            args.shards,
            &telemetry,
        );
        (bounded, unbounded)
    });

    print_side(&bounded);
    print_side(&unbounded);

    section("json");
    print!("{}", json_lines(&[bounded.clone(), unbounded.clone()]));

    args.write_metrics(&telemetry);

    let mut failures = Vec::new();
    if bounded.violations() > 0 {
        failures.push(format!(
            "{} invariant violation(s) with capacity enabled",
            bounded.violations()
        ));
    }
    if unbounded.violations() > 0 {
        failures.push(format!(
            "{} invariant violation(s) with capacity disabled",
            unbounded.violations()
        ));
    }
    // Regression guard: with enforcement off, nothing may be queued or
    // shed, and the hottest surrogate must absorb at least the load the
    // bounded run capped — otherwise the capacity model isn't actually
    // the thing doing the bounding.
    if unbounded.queued_fetches + unbounded.shed_fetches + unbounded.hedged_fetches > 0 {
        failures.push("disabled run queued/shed/hedged fetches".to_owned());
    }
    if unbounded.hot_surrogate_load < bounded.hot_surrogate_load {
        failures.push(format!(
            "disabled run's hot surrogate ({}) cooler than bounded run's ({})",
            unbounded.hot_surrogate_load, bounded.hot_surrogate_load
        ));
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("overload soak FAILED: {f}");
        }
        std::process::exit(1);
    }
}
