//! Ablations of ASAP's design choices (DESIGN.md §5 calls these out):
//!
//! * **k sweep** — the BFS hop bound: k = 4 is the paper's choice; lower
//!   bounds miss candidates, higher ones pay more construction traffic
//!   for little gain.
//! * **latT sweep** — the pruning threshold trades set size against
//!   construction messages.
//! * **sizeT sweep** — when two-hop expansion triggers, and what it costs
//!   in per-session messages.
//! * **valley-free vs unconstrained BFS** — what routing-policy awareness
//!   buys: the unconstrained ball probes more clusters for the same
//!   close set.
//! * **surrogate election** — best-member election vs random members:
//!   a badly chosen surrogate distorts every measurement of its cluster.

use asap_bench::{percentile, row, section, sorted, Args, Scale};
use asap_core::close_set::{construct_close_cluster_set_with_mode, ClusterIndex, SearchMode};
use asap_core::{AsapConfig, AsapSelector, AsapSystem};
use asap_voip::QualityRequirement;
use asap_workload::sessions;
use asap_workload::HostId;

fn main() {
    let args = Args::parse(Scale::Tiny);
    eprintln!(
        "ablation: building scenario ({:?}, seed {})…",
        args.scale, args.seed
    );
    let scenario = args.scenario();
    let index = ClusterIndex::build(&scenario);
    let req = QualityRequirement::default();

    let all = sessions::generate(&scenario.population, args.sessions.min(20_000), args.seed);
    let with = sessions::with_direct_routes(&scenario, &all);
    let latent = sessions::latent_sessions(&with, 300.0);
    let take = latent.len().min(120);
    eprintln!("ablation: {} latent sessions (using {take})", latent.len());

    // --- k sweep ---
    section("k sweep (BFS hop bound)");
    row(&[
        &"k",
        &"median quality paths",
        &"median messages",
        &"found relay %",
    ]);
    for k in [2usize, 3, 4, 5] {
        let config = AsapConfig {
            k,
            ..Default::default()
        };
        let system = AsapSystem::bootstrap(&scenario, config);
        let selector = AsapSelector::new(system);
        let (mut quality, mut messages, mut found) = (Vec::new(), Vec::new(), 0usize);
        for s in latent.iter().take(take) {
            let (out, spent) =
                asap_baselines::select_metered(&selector, &scenario, s.session, &req);
            quality.push(out.quality_paths as f64);
            messages.push(spent as f64);
            found += usize::from(out.best.is_some());
        }
        row(&[
            &k,
            &format!("{:.0}", percentile(&sorted(&quality), 0.5)),
            &format!("{:.0}", percentile(&sorted(&messages), 0.5)),
            &format!("{:.0}%", 100.0 * found as f64 / take.max(1) as f64),
        ]);
    }

    // --- latT sweep ---
    section("latT sweep (pruning threshold, ms)");
    row(&[
        &"latT",
        &"median quality paths",
        &"construction msgs (one cluster)",
    ]);
    let probe_cluster = scenario.population.clustering().clusters()[0].id();
    for lat_t in [150.0, 225.0, 300.0, 450.0] {
        let config = AsapConfig {
            lat_t_ms: lat_t,
            ..Default::default()
        };
        let set = construct_close_cluster_set_with_mode(
            &scenario,
            &index,
            &|c| scenario.delegate_of(c),
            probe_cluster,
            &config,
            SearchMode::ValleyFree,
        );
        let system = AsapSystem::bootstrap(&scenario, config);
        let selector = AsapSelector::new(system);
        let mut quality = Vec::new();
        for s in latent.iter().take(take.min(40)) {
            let out = asap_baselines::RelaySelector::select(&selector, &scenario, s.session, &req);
            quality.push(out.quality_paths as f64);
        }
        row(&[
            &lat_t,
            &format!("{:.0}", percentile(&sorted(&quality), 0.5)),
            &set.construction_messages,
        ]);
    }
    println!(
        "# latT is dual-use: it prunes the BFS *and* decides when the direct\n\
         # path is accepted — at latT=450 most >300 ms sessions simply keep\n\
         # their direct route, so no relay selection runs at all."
    );

    // --- sizeT sweep ---
    section("sizeT sweep (two-hop trigger)");
    row(&[
        &"sizeT",
        &"median messages",
        &"p95 messages",
        &"two-hop sessions",
    ]);
    for size_t in [0usize, 100, 300, 1_000, 10_000] {
        let config = AsapConfig {
            size_t,
            ..Default::default()
        };
        let system = AsapSystem::bootstrap(&scenario, config);
        let selector = AsapSelector::new(system);
        let mut messages = Vec::new();
        let mut two_hop = 0usize;
        for s in latent.iter().take(take.min(60)) {
            let (_, spent) = asap_baselines::select_metered(&selector, &scenario, s.session, &req);
            messages.push(spent as f64);
            // A one-hop selection costs 2 setup pings + 2 close-set
            // messages; anything beyond that is the two-hop exchange.
            if spent > 4 {
                two_hop += 1;
            }
        }
        let m = sorted(&messages);
        row(&[
            &size_t,
            &format!("{:.0}", percentile(&m, 0.5)),
            &format!("{:.0}", percentile(&m, 0.95)),
            &two_hop,
        ]);
    }

    // --- valley-free vs unconstrained BFS ---
    section("valley-free vs unconstrained close-set BFS");
    row(&[&"mode", &"median set size", &"median construction msgs"]);
    let clusters: Vec<_> = scenario
        .population
        .clustering()
        .clusters()
        .iter()
        .map(|c| c.id())
        .take(40)
        .collect();
    for (name, mode) in [
        ("valley-free", SearchMode::ValleyFree),
        ("unconstrained", SearchMode::Unconstrained),
    ] {
        let mut sizes = Vec::new();
        let mut msgs = Vec::new();
        for &c in &clusters {
            let set = construct_close_cluster_set_with_mode(
                &scenario,
                &index,
                &|c| scenario.delegate_of(c),
                c,
                &AsapConfig::default(),
                mode,
            );
            sizes.push(set.len() as f64);
            msgs.push(set.construction_messages as f64);
        }
        row(&[
            &name,
            &format!("{:.0}", percentile(&sorted(&sizes), 0.5)),
            &format!("{:.0}", percentile(&sorted(&msgs), 0.5)),
        ]);
    }

    // --- surrogate election policy ---
    section("surrogate election: best member vs arbitrary member");
    row(&[&"policy", &"median close-set size (40 clusters)"]);
    for (name, pick_first) in [
        ("best (capability-access)", false),
        ("arbitrary (first member)", true),
    ] {
        let surrogate_of = |c: asap_cluster::ClusterId| -> HostId {
            let members = scenario.population.cluster_members(c);
            if pick_first {
                members[0]
            } else {
                members
                    .iter()
                    .copied()
                    .max_by(|&a, &b| {
                        let score = |h: HostId| {
                            let host = scenario.population.host(h);
                            host.nodal.capability() - host.access_ms / 100.0
                        };
                        score(a).total_cmp(&score(b))
                    })
                    .unwrap()
            }
        };
        let mut sizes = Vec::new();
        for &c in &clusters {
            let set = construct_close_cluster_set_with_mode(
                &scenario,
                &index,
                &surrogate_of,
                c,
                &AsapConfig::default(),
                SearchMode::ValleyFree,
            );
            sizes.push(set.len() as f64);
        }
        row(&[&name, &format!("{:.0}", percentile(&sorted(&sizes), 0.5))]);
    }
}
