//! Shared harness for the experiment binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the ASAP
//! paper (see DESIGN.md §4 for the index and EXPERIMENTS.md for recorded
//! paper-vs-measured results). They share scale presets, CLI parsing, and
//! the CDF/percentile/table plumbing defined here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;

use std::fmt::Display;

use asap_telemetry::Telemetry;
use asap_workload::{PopulationConfig, Scenario, ScenarioConfig};

/// Experiment scale preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// A few hundred peers — smoke-test the binary in under a second.
    Tiny,
    /// 23,366 peers — the scale of the paper's §7.2 figures.
    Eval,
    /// 103,625 peers — the §7.3 scalability scale.
    Scalability,
}

impl Scale {
    /// The scenario configuration for this scale.
    pub fn scenario_config(self) -> ScenarioConfig {
        match self {
            Scale::Tiny => ScenarioConfig {
                internet: asap_topology::InternetConfig::default(),
                population: PopulationConfig {
                    target_hosts: 2_000,
                    ..Default::default()
                },
                ..ScenarioConfig::tiny()
            },
            Scale::Eval => ScenarioConfig::eval_scale(),
            Scale::Scalability => ScenarioConfig::scalability_scale(),
        }
    }

    /// The number of random sessions the paper generates at this scale.
    pub fn default_sessions(self) -> usize {
        match self {
            Scale::Tiny => 10_000,
            Scale::Eval | Scale::Scalability => 100_000,
        }
    }
}

/// Parsed command-line arguments common to all experiment binaries.
#[derive(Debug, Clone)]
pub struct Args {
    /// Scale preset (`--scale tiny|eval|scalability`).
    pub scale: Scale,
    /// Number of sessions (`--sessions N`).
    pub sessions: usize,
    /// Master seed (`--seed N`).
    pub seed: u64,
    /// Optional path for a telemetry snapshot (`--metrics-out PATH`).
    pub metrics_out: Option<String>,
    /// Number of deterministic workload shards (`--shards N`, default 1).
    ///
    /// 1 runs the legacy single-shard simulation; larger values split
    /// the workload into independent shards executed on the rayon pool
    /// and merged in shard order. Output is deterministic per
    /// `(seed, shards)` at any thread count, but a different shard
    /// count is a different (re-sharded) workload.
    pub shards: usize,
    /// Rayon worker threads (`--threads N`, default: rayon's choice).
    pub threads: Option<usize>,
}

impl Args {
    /// Parses `std::env::args()`, with `default_scale` when `--scale` is
    /// absent.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn parse(default_scale: Scale) -> Args {
        let mut scale = default_scale;
        let mut sessions = None;
        let mut seed = 1;
        let mut metrics_out = None;
        let mut shards = 1;
        let mut threads = None;
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let need_value = |i: usize| {
                argv.get(i + 1)
                    .unwrap_or_else(|| panic!("missing value after {}", argv[i]))
                    .clone()
            };
            match argv[i].as_str() {
                "--scale" => {
                    scale = match need_value(i).as_str() {
                        "tiny" => Scale::Tiny,
                        "eval" => Scale::Eval,
                        "scalability" => Scale::Scalability,
                        other => panic!("unknown scale {other:?} (tiny|eval|scalability)"),
                    };
                    i += 2;
                }
                "--sessions" => {
                    sessions = Some(need_value(i).parse().expect("--sessions takes a number"));
                    i += 2;
                }
                "--seed" => {
                    seed = need_value(i).parse().expect("--seed takes a number");
                    i += 2;
                }
                "--metrics-out" => {
                    metrics_out = Some(need_value(i));
                    i += 2;
                }
                "--shards" => {
                    shards = need_value(i).parse().expect("--shards takes a number");
                    assert!(shards >= 1, "--shards must be at least 1");
                    i += 2;
                }
                "--threads" => {
                    threads = Some(need_value(i).parse().expect("--threads takes a number"));
                    i += 2;
                }
                other => panic!("unknown argument {other:?}"),
            }
        }
        let sessions = sessions.unwrap_or_else(|| scale.default_sessions());
        Args {
            scale,
            sessions,
            seed,
            metrics_out,
            shards,
            threads,
        }
    }

    /// Builds a rayon pool honouring `--threads` (rayon's default width
    /// when the flag is absent). Sharded drivers run inside
    /// `pool.install(..)` so the flag governs them without touching the
    /// global pool.
    ///
    /// # Panics
    ///
    /// Panics if the pool cannot be built.
    pub fn thread_pool(&self) -> rayon::ThreadPool {
        let mut builder = rayon::ThreadPoolBuilder::new();
        if let Some(n) = self.threads {
            builder = builder.num_threads(n);
        }
        builder.build().expect("rayon pool builds")
    }

    /// Builds the scenario for these arguments.
    pub fn scenario(&self) -> Scenario {
        Scenario::build(self.scale.scenario_config(), self.seed)
    }

    /// Writes the telemetry snapshot to `--metrics-out` when given.
    ///
    /// The snapshot is serialized with [`Telemetry::snapshot_json`], which
    /// is deterministic per seed: two runs with identical arguments produce
    /// byte-identical files.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written.
    pub fn write_metrics(&self, telemetry: &Telemetry) {
        if let Some(path) = &self.metrics_out {
            let json = telemetry.snapshot_json();
            std::fs::write(path, format!("{json}\n"))
                .unwrap_or_else(|e| panic!("cannot write --metrics-out {path}: {e}"));
            eprintln!("telemetry snapshot written to {path}");
        }
    }
}

/// Sorts a copy of `values` and returns it (tiny helper for CDF work).
pub fn sorted(values: &[f64]) -> Vec<f64> {
    let mut v = values.to_vec();
    v.sort_by(f64::total_cmp);
    v
}

/// The `p`-th percentile (0 ≤ p ≤ 1) of already-sorted values.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of no data");
    let idx = ((sorted.len() as f64 - 1.0) * p.clamp(0.0, 1.0)).round() as usize;
    sorted[idx]
}

/// Fraction of values strictly above `threshold`.
pub fn frac_above(values: &[f64], threshold: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|&&v| v > threshold).count() as f64 / values.len() as f64
}

/// Prints a CDF as `value  P(X ≤ value)` rows at the given probe points.
pub fn print_cdf(label: &str, sorted: &[f64], probes: &[f64]) {
    println!("# CDF: {label} (n = {})", sorted.len());
    for &x in probes {
        let le = sorted.iter().take_while(|&&v| v <= x).count();
        println!("{x:>12.1}  {:>8.4}", le as f64 / sorted.len().max(1) as f64);
    }
}

/// Prints a fixed-width table row.
pub fn row(cells: &[&dyn Display]) {
    let mut line = String::new();
    for c in cells {
        line.push_str(&format!("{:>14}", c.to_string()));
    }
    println!("{line}");
}

/// Prints a section header.
pub fn section(title: &str) {
    println!("\n==== {title} ====");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_and_frac() {
        let v = sorted(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 5.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
        assert_eq!(frac_above(&v, 3.0), 0.4);
        assert_eq!(frac_above(&[], 3.0), 0.0);
    }

    #[test]
    fn scales_build() {
        let cfg = Scale::Tiny.scenario_config();
        assert!(cfg.population.target_hosts >= 1_000);
        assert_eq!(
            Scale::Eval.scenario_config().population.target_hosts,
            23_366
        );
        assert_eq!(
            Scale::Scalability.scenario_config().population.target_hosts,
            103_625
        );
    }
}
