//! Reusable experiment drivers shared by the robustness binaries.
//!
//! The `fault_recovery` and `chaos_soak` binaries and the determinism
//! regression test all need the *same* simulation schedule, so the
//! schedule lives here once: a caller hands in a scenario, a seed, and a
//! size, and gets back serializable rows. Two calls with equal inputs
//! must produce byte-identical JSON — that property is what the
//! determinism test pins down.

use asap_core::events::{run_with, SimConfig, SimReport};
use asap_core::parallel::run_sharded;
use asap_core::AsapConfig;
use asap_netsim::capacity::CapacityConfig;
use asap_netsim::faults::FaultPlanConfig;
use asap_telemetry::Telemetry;
use asap_workload::Scenario;
use serde::Serialize;

/// One sweep point of the crash-rate experiment.
#[derive(Debug, Clone, Serialize)]
pub struct FaultRecoveryRow {
    /// Constant `"fault_recovery"` so mixed JSON streams stay greppable.
    pub experiment: String,
    /// Master seed of the run.
    pub seed: u64,
    /// Per-tick surrogate/host crash probability at this sweep point.
    pub crash_rate_per_tick: f64,
    /// Calls scheduled.
    pub calls: u64,
    /// Calls that completed (direct or relayed).
    pub calls_completed: u64,
    /// Calls with no route at all.
    pub calls_without_path: u64,
    /// Active calls torn down with no replacement path.
    pub calls_dropped: u64,
    /// Mid-call relay failovers that found a replacement path.
    pub midcall_failovers: u64,
    /// Relayed-call survival ratio (headline robustness number).
    pub survival: f64,
    /// Warm standby promotions (quorum held; no cold re-election).
    pub warm_handoffs: u64,
    /// Cold re-elections (quorum lost or no usable standby).
    pub re_elections: u64,
    /// Replica members demoted by the suspicion detector.
    pub suspected_dead: u64,
    /// Calls served below the full protocol.
    pub degraded_calls: u64,
    /// Request timeouts observed.
    pub timeouts: u64,
    /// Request retries performed.
    pub retries: u64,
    /// Cached close sets purged by epoch bumps.
    pub cache_invalidations: u64,
    /// Extra control messages spent on recovery.
    pub recovery_messages: u64,
    /// Virtual ms spent waiting out retry backoff.
    pub stabilization_ticks: u64,
}

/// The crash rates swept by the fault-recovery experiment.
pub const FAULT_RECOVERY_RATES: [f64; 5] = [0.0, 0.002, 0.005, 0.01, 0.02];

/// Runs the crash-rate sweep and returns one row per rate.
///
/// Deterministic: equal `(scenario, seed, calls)` inputs produce equal
/// rows, and [`json_lines`] of equal rows is byte-identical.
pub fn fault_recovery_sweep(scenario: &Scenario, seed: u64, calls: usize) -> Vec<FaultRecoveryRow> {
    fault_recovery_sweep_with(scenario, seed, calls, &Telemetry::new())
}

/// [`fault_recovery_sweep`] recording into a caller-provided telemetry
/// context: each sweep point gets its own `ASAP@crash=RATE` ledger scope
/// so the per-kind overhead of the rates stays separable in snapshots.
pub fn fault_recovery_sweep_with(
    scenario: &Scenario,
    seed: u64,
    calls: usize,
    telemetry: &Telemetry,
) -> Vec<FaultRecoveryRow> {
    FAULT_RECOVERY_RATES
        .iter()
        .map(|&rate| {
            let sim = SimConfig {
                calls,
                surrogate_failures: 0,
                faults: Some(FaultPlanConfig {
                    seed,
                    surrogate_crash_per_tick: rate,
                    host_crash_per_tick: rate,
                    congestion_per_tick: 0.002,
                    drop_window_per_tick: 0.002,
                    stale_close_set_per_tick: 0.002,
                    ..Default::default()
                }),
                seed,
                ..Default::default()
            };
            let report = run_with(
                scenario,
                AsapConfig::default(),
                &sim,
                telemetry,
                &format!("ASAP@crash={rate:.3}"),
            );
            let survival = if report.calls_completed > 0 {
                (report.calls_completed - report.calls_dropped) as f64
                    / report.calls_completed as f64
            } else {
                1.0
            };
            FaultRecoveryRow {
                experiment: "fault_recovery".to_owned(),
                seed,
                crash_rate_per_tick: rate,
                calls: calls as u64,
                calls_completed: report.calls_completed,
                calls_without_path: report.calls_without_path,
                calls_dropped: report.calls_dropped,
                midcall_failovers: report.midcall_failovers,
                survival,
                warm_handoffs: report.recovery.warm_handoffs,
                re_elections: report.recovery.re_elections,
                suspected_dead: report.recovery.suspected_dead,
                degraded_calls: report.degraded_calls,
                timeouts: report.recovery.timeouts,
                retries: report.recovery.retries,
                cache_invalidations: report.recovery.cache_invalidations,
                recovery_messages: report.recovery.recovery_messages,
                stabilization_ticks: report.recovery.stabilization_ticks,
            }
        })
        .collect()
}

/// Summary of one chaos-soak run: churn + AS partitions under a
/// bounded-call schedule, with the four robustness invariants counted.
#[derive(Debug, Clone, Serialize)]
pub struct ChaosSoakReport {
    /// Constant `"chaos_soak"`.
    pub experiment: String,
    /// Master seed of the run.
    pub seed: u64,
    /// Sessions scheduled.
    pub sessions: u64,
    /// Calls that completed (direct or relayed).
    pub calls_completed: u64,
    /// Calls with no route at all.
    pub calls_without_path: u64,
    /// Active calls torn down with no replacement path.
    pub calls_dropped: u64,
    /// Mid-call relay failovers that found a replacement path.
    pub midcall_failovers: u64,
    /// AS partitions applied.
    pub partitions: u64,
    /// Active calls torn down because an endpoint AS was partitioned.
    pub partition_dropped_calls: u64,
    /// Calls served below the full protocol.
    pub degraded_calls: u64,
    /// Stale-close-set rung servings.
    pub stale_sets_served: u64,
    /// Calls that fell to MIX-style random probing.
    pub probe_fallbacks: u64,
    /// Calls forced onto the bare direct path.
    pub forced_direct: u64,
    /// Warm standby promotions.
    pub warm_handoffs: u64,
    /// Cold re-elections.
    pub re_elections: u64,
    /// Replica members demoted by the suspicion detector.
    pub suspected_dead: u64,
    /// Ladder downgrades across all clusters.
    pub downgrades: u64,
    /// Ladder recoveries back to the full protocol.
    pub ladder_recoveries: u64,
    /// INVARIANT — calls routed through a suspected-dead relay. Must be 0.
    pub dead_relay_calls: u64,
    /// INVARIANT — degraded calls with no active fault to excuse them.
    /// Must be 0.
    pub unexcused_degraded_calls: u64,
    /// INVARIANT — sessions still active at the end of the run. Must be 0.
    pub unterminated_calls: u64,
    /// INVARIANT — clusters stuck without a usable control plane after
    /// all faults healed. Must be 0.
    pub stuck_clusters: u64,
}

impl ChaosSoakReport {
    /// Total invariant violations (0 = the run is clean).
    pub fn violations(&self) -> u64 {
        self.dead_relay_calls
            + self.unexcused_degraded_calls
            + self.unterminated_calls
            + self.stuck_clusters
    }

    fn from_report(seed: u64, sessions: usize, report: &SimReport) -> ChaosSoakReport {
        ChaosSoakReport {
            experiment: "chaos_soak".to_owned(),
            seed,
            sessions: sessions as u64,
            calls_completed: report.calls_completed,
            calls_without_path: report.calls_without_path,
            calls_dropped: report.calls_dropped,
            midcall_failovers: report.midcall_failovers,
            partitions: report.partitions,
            partition_dropped_calls: report.partition_dropped_calls,
            degraded_calls: report.degraded_calls,
            stale_sets_served: report.recovery.stale_sets_served,
            probe_fallbacks: report.recovery.probe_fallbacks,
            forced_direct: report.recovery.forced_direct,
            warm_handoffs: report.recovery.warm_handoffs,
            re_elections: report.recovery.re_elections,
            suspected_dead: report.recovery.suspected_dead,
            downgrades: report.recovery.downgrades,
            ladder_recoveries: report.recovery.ladder_recoveries,
            dead_relay_calls: report.dead_relay_calls,
            unexcused_degraded_calls: report.unexcused_degraded_calls,
            unterminated_calls: report.unterminated_calls,
            stuck_clusters: report.stuck_clusters,
        }
    }
}

/// The churn + partition schedule the soak run drives.
///
/// Every knob is derived from `(seed, sessions)` alone so the run is
/// seed-reproducible: calls stop early enough for every session to
/// terminate inside the window, and the end of the run heals all faults
/// and checks that no cluster is left stuck degraded.
pub fn chaos_soak_sim(seed: u64, sessions: usize) -> SimConfig {
    let duration_ms = 1_800_000;
    let call_duration_ms = 120_000;
    SimConfig {
        join_window_ms: 60_000,
        duration_ms,
        calls: sessions,
        surrogate_failures: 0,
        call_duration_ms,
        faults: Some(FaultPlanConfig {
            seed,
            start_ms: 60_000,
            duration_ms,
            surrogate_crash_per_tick: 0.01,
            host_crash_per_tick: 0.01,
            congestion_per_tick: 0.002,
            drop_window_per_tick: 0.01,
            drop_prob: (0.6, 0.95),
            drop_window_ms: (10_000, 40_000),
            stale_close_set_per_tick: 0.002,
            partition_per_tick: 0.01,
            ..Default::default()
        }),
        caller_skew: 1.0,
        last_call_ms: Some(duration_ms - call_duration_ms),
        final_recovery_check: true,
        seed,
    }
}

/// The protocol configuration the soak runs under.
///
/// `latT` is tightened from the paper's 300 ms to 150 ms: at bench
/// scale almost no session exceeds 300 ms direct RTT, so the paper's
/// threshold would let nearly every call take the fast direct path and
/// the selection machinery (close sets, the degradation ladder) would
/// sit idle. At 150 ms roughly a fifth of sessions go through relay
/// selection, which is what the soak is there to stress.
pub fn chaos_soak_config() -> AsapConfig {
    AsapConfig {
        lat_t_ms: 150.0,
        ..Default::default()
    }
}

/// Runs the chaos soak and returns its summary.
pub fn chaos_soak(scenario: &Scenario, seed: u64, sessions: usize) -> ChaosSoakReport {
    chaos_soak_with(scenario, seed, sessions, &Telemetry::new())
}

/// [`chaos_soak`] recording into a caller-provided telemetry context
/// under the `ASAP` ledger scope.
pub fn chaos_soak_with(
    scenario: &Scenario,
    seed: u64,
    sessions: usize,
    telemetry: &Telemetry,
) -> ChaosSoakReport {
    chaos_soak_sharded(scenario, seed, sessions, 1, telemetry)
}

/// [`chaos_soak_with`] split across `shards` independent shards on the
/// current rayon pool via [`run_sharded`]. `shards == 1` is exactly the
/// legacy single-shard run (byte-identical output); any larger shard
/// count is deterministic per `(seed, shards)` regardless of how many
/// worker threads execute it.
pub fn chaos_soak_sharded(
    scenario: &Scenario,
    seed: u64,
    sessions: usize,
    shards: usize,
    telemetry: &Telemetry,
) -> ChaosSoakReport {
    let sim = chaos_soak_sim(seed, sessions);
    let report = run_sharded(
        scenario,
        chaos_soak_config(),
        &sim,
        shards,
        telemetry,
        "ASAP",
    );
    ChaosSoakReport::from_report(seed, sessions, &report)
}

/// Summary of one overload-soak run: a skewed caller population hammers
/// a small set of hot surrogates and relays, with the capacity model
/// either bounding the load (admission control, shedding, hedging,
/// relay-slot spillover) or — for the regression guard — switched off.
#[derive(Debug, Clone, Serialize)]
pub struct OverloadSoakReport {
    /// Constant `"overload_soak"`.
    pub experiment: String,
    /// Master seed of the run.
    pub seed: u64,
    /// Whether the capacity model was enabled.
    pub capacity_enabled: bool,
    /// Sessions scheduled.
    pub sessions: u64,
    /// Calls that completed (direct or relayed).
    pub calls_completed: u64,
    /// Calls with no route at all.
    pub calls_without_path: u64,
    /// Calls whose close-set fetch was shed and that were served from a
    /// degraded rung instead.
    pub overload_shed_calls: u64,
    /// Fetches offered to admission control.
    pub offered_fetches: u64,
    /// Fetches admitted immediately.
    pub admitted_fetches: u64,
    /// Fetches admitted after queueing.
    pub queued_fetches: u64,
    /// Fetches shed (queue full + deadline).
    pub shed_fetches: u64,
    /// Deepest admission queue observed.
    pub max_queue_depth: u64,
    /// Hedge legs issued.
    pub hedged_fetches: u64,
    /// Hedge legs that answered first.
    pub hedge_wins: u64,
    /// Relay candidates skipped on the `Busy` verdict.
    pub relay_busy_skips: u64,
    /// Calls that spilled over to a later candidate.
    pub relay_spillovers: u64,
    /// Mid-call failovers triggered by relay saturation.
    pub saturation_failovers: u64,
    /// Relay-slot occupancy high-water mark.
    pub max_relay_slots_in_use: u32,
    /// Heaviest served-request load on a single surrogate.
    pub hot_surrogate_load: u64,
    /// INVARIANT — calls not accounted for as completed or
    /// no-path (every offered call must land somewhere). Must be 0.
    pub unaccounted_calls: u64,
    /// INVARIANT — fetches that left admission control untallied
    /// (offered − admitted − queued − shed). Must be 0.
    pub unaccounted_fetches: u64,
    /// INVARIANT — queue-depth observations beyond the configured
    /// bound. Must be 0.
    pub queue_depth_violations: u64,
    /// INVARIANT — sessions still active at the end of the run. Must
    /// be 0.
    pub unterminated_calls: u64,
}

impl OverloadSoakReport {
    /// Total invariant violations (0 = the run is clean).
    pub fn violations(&self) -> u64 {
        self.unaccounted_calls
            + self.unaccounted_fetches
            + self.queue_depth_violations
            + self.unterminated_calls
    }

    fn from_report(
        seed: u64,
        sessions: usize,
        config: &AsapConfig,
        report: &SimReport,
    ) -> OverloadSoakReport {
        let o = &report.overload;
        let accounted = report.calls_completed + report.calls_without_path;
        let admission_total =
            o.admitted_fetches + o.queued_fetches + o.shed_queue_full + o.shed_deadline;
        let bound = u64::from(config.capacity.queue_limit);
        OverloadSoakReport {
            experiment: "overload_soak".to_owned(),
            seed,
            capacity_enabled: config.capacity.enabled,
            sessions: sessions as u64,
            calls_completed: report.calls_completed,
            calls_without_path: report.calls_without_path,
            overload_shed_calls: report.overload_shed_calls,
            offered_fetches: o.offered_fetches,
            admitted_fetches: o.admitted_fetches,
            queued_fetches: o.queued_fetches,
            shed_fetches: o.shed_fetches(),
            max_queue_depth: o.max_queue_depth,
            hedged_fetches: o.hedged_fetches,
            hedge_wins: o.hedge_wins,
            relay_busy_skips: o.relay_busy_skips,
            relay_spillovers: o.relay_spillovers,
            saturation_failovers: report.saturation_failovers,
            max_relay_slots_in_use: report.max_relay_slots_in_use,
            hot_surrogate_load: o.hot_surrogate_load,
            unaccounted_calls: (sessions as u64).saturating_sub(accounted),
            unaccounted_fetches: o.offered_fetches.saturating_sub(admission_total),
            queue_depth_violations: o.max_queue_depth.saturating_sub(bound),
            unterminated_calls: report.unterminated_calls,
        }
    }
}

/// The skewed-caller schedule the overload soak drives.
///
/// No injected faults: the only stressor is load. A caller skew of 4
/// concentrates most sessions on a low-host-id prefix, so those hosts'
/// clusters see far more close-set fetches and relay traffic than the
/// capacity budget allows — exactly the hot-surrogate shape the
/// admission queue, shedding, hedging, and relay spillover exist for.
pub fn overload_soak_sim(seed: u64, sessions: usize) -> SimConfig {
    let duration_ms = 1_800_000;
    let call_duration_ms = 120_000;
    SimConfig {
        join_window_ms: 60_000,
        duration_ms,
        calls: sessions,
        surrogate_failures: 0,
        call_duration_ms,
        faults: None,
        caller_skew: 4.0,
        last_call_ms: Some(duration_ms - call_duration_ms),
        final_recovery_check: true,
        seed,
    }
}

/// The protocol configuration the overload soak runs under.
///
/// `latT` is tightened to 150 ms for the same reason as
/// [`chaos_soak_config`], and the capacity knobs are squeezed far below
/// their defaults (one request per surrogate per 2 s window, a queue of
/// 16 with a 1.5 s deadline, one relay slot plus two per unit
/// capability) so bench-scale load actually saturates them: the hot
/// surrogates must queue, shed past the deadline, and push callers onto
/// hedges and the degraded rungs. `enabled: false` is the regression
/// guard: the same squeeze with no enforcement must reproduce the
/// unbounded hot-surrogate behavior.
pub fn overload_soak_config(enabled: bool) -> AsapConfig {
    let mut config = AsapConfig {
        lat_t_ms: 150.0,
        ..Default::default()
    };
    config.capacity = CapacityConfig {
        enabled,
        relay_slots_base: 1,
        relay_slots_per_capability: 2.0,
        surrogate_budget: 1,
        budget_window_ms: 2_000,
        queue_limit: 16,
        queue_deadline_ms: 1_500,
        hedge_delay_ms: 200,
    };
    config
}

/// Runs the overload soak and returns its summary.
pub fn overload_soak(
    scenario: &Scenario,
    seed: u64,
    sessions: usize,
    enabled: bool,
) -> OverloadSoakReport {
    overload_soak_with(scenario, seed, sessions, enabled, &Telemetry::new())
}

/// [`overload_soak`] recording into a caller-provided telemetry context.
/// Enabled and disabled runs get distinct ledger scopes so one snapshot
/// can hold both sides of the regression guard.
pub fn overload_soak_with(
    scenario: &Scenario,
    seed: u64,
    sessions: usize,
    enabled: bool,
    telemetry: &Telemetry,
) -> OverloadSoakReport {
    overload_soak_sharded(scenario, seed, sessions, enabled, 1, telemetry)
}

/// [`overload_soak_with`] split across `shards` independent shards on
/// the current rayon pool via [`run_sharded`]. `shards == 1` reproduces
/// the legacy single-shard run byte-for-byte.
pub fn overload_soak_sharded(
    scenario: &Scenario,
    seed: u64,
    sessions: usize,
    enabled: bool,
    shards: usize,
    telemetry: &Telemetry,
) -> OverloadSoakReport {
    let sim = overload_soak_sim(seed, sessions);
    let config = overload_soak_config(enabled);
    let scope = if enabled { "ASAP" } else { "ASAP@nocap" };
    let report = run_sharded(scenario, config, &sim, shards, telemetry, scope);
    OverloadSoakReport::from_report(seed, sessions, &config, &report)
}

/// The combined overload + crash + partition phase of the chaos soak:
/// the full churn/partition schedule of [`chaos_soak_sim`] with the
/// caller skew and squeezed capacity of the overload soak on top. The
/// point is that saturation pressure must not erode the fault
/// invariants — in particular `dead_relay_calls == 0` (a busy relay is
/// never an excuse to route through a dead one).
pub fn chaos_overload_phase(
    scenario: &Scenario,
    seed: u64,
    sessions: usize,
    telemetry: &Telemetry,
) -> ChaosSoakReport {
    chaos_overload_phase_sharded(scenario, seed, sessions, 1, telemetry)
}

/// [`chaos_overload_phase`] split across `shards` independent shards on
/// the current rayon pool via [`run_sharded`]. `shards == 1` reproduces
/// the legacy single-shard run byte-for-byte.
pub fn chaos_overload_phase_sharded(
    scenario: &Scenario,
    seed: u64,
    sessions: usize,
    shards: usize,
    telemetry: &Telemetry,
) -> ChaosSoakReport {
    let sim = SimConfig {
        caller_skew: 4.0,
        ..chaos_soak_sim(seed, sessions)
    };
    let config = AsapConfig {
        capacity: overload_soak_config(true).capacity,
        ..chaos_soak_config()
    };
    let report = run_sharded(scenario, config, &sim, shards, telemetry, "ASAP@overload");
    let mut summary = ChaosSoakReport::from_report(seed, sessions, &report);
    summary.experiment = "chaos_soak_overload".to_owned();
    summary
}

/// Serializes rows as newline-delimited JSON, one object per line.
///
/// # Panics
///
/// Panics if a row fails to serialize (plain data never does).
pub fn json_lines<T: Serialize>(rows: &[T]) -> String {
    let mut out = String::new();
    for r in rows {
        out.push_str(&serde_json::to_string(r).expect("row serializes"));
        out.push('\n');
    }
    out
}
