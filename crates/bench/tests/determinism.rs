//! Determinism regression tests for the robustness experiments.
//!
//! The fault-injection layer, the membership machinery, and the event
//! simulation all promise bit-for-bit reproducibility from a seed. These
//! tests pin the promise at the experiment boundary: running the same
//! experiment twice with the same seed must yield *byte-identical* JSON,
//! the exact artifact a reader would diff between runs.

use asap_bench::experiments::{
    chaos_overload_phase, chaos_soak, chaos_soak_with, fault_recovery_sweep,
    fault_recovery_sweep_with, json_lines, overload_soak, overload_soak_with,
};
use asap_bench::Scale;
use asap_telemetry::Telemetry;
use asap_workload::Scenario;

fn tiny_scenario(seed: u64) -> Scenario {
    let mut config = Scale::Tiny.scenario_config();
    // Shrink the world so two full sweeps stay fast in CI.
    config.population.target_hosts = 600;
    Scenario::build(config, seed)
}

#[test]
fn fault_recovery_json_is_byte_identical_across_runs() {
    let scenario = tiny_scenario(5);
    let a = json_lines(&fault_recovery_sweep(&scenario, 5, 120));
    let b = json_lines(&fault_recovery_sweep(&scenario, 5, 120));
    assert!(!a.is_empty());
    assert_eq!(a, b, "same seed must reproduce the same JSON bytes");
}

#[test]
fn chaos_soak_json_is_byte_identical_across_runs() {
    let scenario = tiny_scenario(9);
    let a = json_lines(std::slice::from_ref(&chaos_soak(&scenario, 9, 400)));
    let b = json_lines(std::slice::from_ref(&chaos_soak(&scenario, 9, 400)));
    assert_eq!(a, b, "same seed must reproduce the same JSON bytes");
}

#[test]
fn telemetry_snapshot_is_byte_identical_across_runs() {
    // The whole telemetry pipeline — ledger scopes, per-cluster/per-node
    // attribution, histograms, span durations — must serialize to the
    // same bytes when the same seed drives the same schedule.
    let scenario = tiny_scenario(5);
    let snap = |_: ()| {
        let telemetry = Telemetry::new();
        fault_recovery_sweep_with(&scenario, 5, 120, &telemetry);
        telemetry.snapshot_json()
    };
    let a = snap(());
    let b = snap(());
    assert!(
        a.contains("ASAP@crash=0.010"),
        "snapshot names the sweep scopes: {a}"
    );
    assert_eq!(a, b, "same seed must reproduce the same snapshot bytes");
}

#[test]
fn chaos_soak_telemetry_snapshot_is_byte_identical_across_runs() {
    let scenario = tiny_scenario(9);
    let snap = |_: ()| {
        let telemetry = Telemetry::new();
        chaos_soak_with(&scenario, 9, 400, &telemetry);
        telemetry.snapshot_json()
    };
    let a = snap(());
    let b = snap(());
    assert!(
        a.contains("call.rtt_ms"),
        "snapshot carries the call-RTT histogram: {a}"
    );
    assert_eq!(a, b, "same seed must reproduce the same snapshot bytes");
}

#[test]
fn overload_soak_json_is_byte_identical_across_runs() {
    let scenario = tiny_scenario(7);
    let run = |_: ()| {
        json_lines(&[
            overload_soak(&scenario, 7, 400, true),
            overload_soak(&scenario, 7, 400, false),
        ])
    };
    let a = run(());
    let b = run(());
    assert!(a.contains("\"capacity_enabled\":true"));
    assert_eq!(a, b, "same seed must reproduce the same JSON bytes");
}

#[test]
fn overload_soak_accounts_for_everything() {
    let scenario = tiny_scenario(7);
    let bounded = overload_soak(&scenario, 7, 400, true);
    let unbounded = overload_soak(&scenario, 7, 400, false);
    assert_eq!(bounded.violations(), 0, "bounded run: {bounded:?}");
    assert_eq!(unbounded.violations(), 0, "unbounded run: {unbounded:?}");
    // The regression guard's shape: no enforcement ⇒ nothing queued,
    // shed, or hedged, and the hot surrogate at least as loaded.
    assert_eq!(unbounded.queued_fetches, 0);
    assert_eq!(unbounded.shed_fetches, 0);
    assert_eq!(unbounded.hedged_fetches, 0);
    assert!(unbounded.hot_surrogate_load >= bounded.hot_surrogate_load);
}

#[test]
fn overload_soak_telemetry_snapshot_is_byte_identical_across_runs() {
    let scenario = tiny_scenario(7);
    let snap = |_: ()| {
        let telemetry = Telemetry::new();
        overload_soak_with(&scenario, 7, 400, true, &telemetry);
        telemetry.snapshot_json()
    };
    let a = snap(());
    let b = snap(());
    assert!(
        a.contains("admission.offered"),
        "snapshot carries the admission meters: {a}"
    );
    assert_eq!(a, b, "same seed must reproduce the same snapshot bytes");
}

#[test]
fn chaos_overload_phase_holds_the_dead_relay_invariant() {
    let scenario = tiny_scenario(9);
    let telemetry = Telemetry::new();
    let a = chaos_overload_phase(&scenario, 9, 400, &telemetry);
    let b = chaos_overload_phase(&scenario, 9, 400, &Telemetry::new());
    assert_eq!(
        a.dead_relay_calls, 0,
        "saturation must never route a call through a dead relay"
    );
    assert_eq!(a.violations(), 0, "overload phase: {a:?}");
    assert_eq!(
        json_lines(std::slice::from_ref(&a)),
        json_lines(std::slice::from_ref(&b))
    );
}

#[test]
fn different_seeds_change_the_schedule() {
    let scenario = tiny_scenario(5);
    let a = json_lines(&fault_recovery_sweep(&scenario, 5, 120));
    let b = json_lines(&fault_recovery_sweep(&scenario, 6, 120));
    assert_ne!(a, b, "the seed must actually drive the schedule");
}
