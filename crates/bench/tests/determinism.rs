//! Determinism regression tests for the robustness experiments.
//!
//! The fault-injection layer, the membership machinery, and the event
//! simulation all promise bit-for-bit reproducibility from a seed. These
//! tests pin the promise at the experiment boundary: running the same
//! experiment twice with the same seed must yield *byte-identical* JSON,
//! the exact artifact a reader would diff between runs.

use asap_bench::experiments::{
    chaos_soak, chaos_soak_with, fault_recovery_sweep, fault_recovery_sweep_with, json_lines,
};
use asap_bench::Scale;
use asap_telemetry::Telemetry;
use asap_workload::Scenario;

fn tiny_scenario(seed: u64) -> Scenario {
    let mut config = Scale::Tiny.scenario_config();
    // Shrink the world so two full sweeps stay fast in CI.
    config.population.target_hosts = 600;
    Scenario::build(config, seed)
}

#[test]
fn fault_recovery_json_is_byte_identical_across_runs() {
    let scenario = tiny_scenario(5);
    let a = json_lines(&fault_recovery_sweep(&scenario, 5, 120));
    let b = json_lines(&fault_recovery_sweep(&scenario, 5, 120));
    assert!(!a.is_empty());
    assert_eq!(a, b, "same seed must reproduce the same JSON bytes");
}

#[test]
fn chaos_soak_json_is_byte_identical_across_runs() {
    let scenario = tiny_scenario(9);
    let a = json_lines(std::slice::from_ref(&chaos_soak(&scenario, 9, 400)));
    let b = json_lines(std::slice::from_ref(&chaos_soak(&scenario, 9, 400)));
    assert_eq!(a, b, "same seed must reproduce the same JSON bytes");
}

#[test]
fn telemetry_snapshot_is_byte_identical_across_runs() {
    // The whole telemetry pipeline — ledger scopes, per-cluster/per-node
    // attribution, histograms, span durations — must serialize to the
    // same bytes when the same seed drives the same schedule.
    let scenario = tiny_scenario(5);
    let snap = |_: ()| {
        let telemetry = Telemetry::new();
        fault_recovery_sweep_with(&scenario, 5, 120, &telemetry);
        telemetry.snapshot_json()
    };
    let a = snap(());
    let b = snap(());
    assert!(
        a.contains("ASAP@crash=0.010"),
        "snapshot names the sweep scopes: {a}"
    );
    assert_eq!(a, b, "same seed must reproduce the same snapshot bytes");
}

#[test]
fn chaos_soak_telemetry_snapshot_is_byte_identical_across_runs() {
    let scenario = tiny_scenario(9);
    let snap = |_: ()| {
        let telemetry = Telemetry::new();
        chaos_soak_with(&scenario, 9, 400, &telemetry);
        telemetry.snapshot_json()
    };
    let a = snap(());
    let b = snap(());
    assert!(
        a.contains("call.rtt_ms"),
        "snapshot carries the call-RTT histogram: {a}"
    );
    assert_eq!(a, b, "same seed must reproduce the same snapshot bytes");
}

#[test]
fn different_seeds_change_the_schedule() {
    let scenario = tiny_scenario(5);
    let a = json_lines(&fault_recovery_sweep(&scenario, 5, 120));
    let b = json_lines(&fault_recovery_sweep(&scenario, 6, 120));
    assert_ne!(a, b, "the seed must actually drive the schedule");
}
