//! Property-based tests for packet transport combinators.

use asap_transport::dynamics::{DynamicsConfig, PathDynamics};
use asap_transport::policy::combine_diversity;
use asap_transport::stream::{packet_fate, PacketFate, StreamConfig, WindowAggregator};
use asap_workload::HostId;
use proptest::prelude::*;

fn arb_fate() -> impl Strategy<Value = PacketFate> {
    prop_oneof![
        (1.0f64..400.0).prop_map(PacketFate::Delivered),
        Just(PacketFate::Lost),
        (100.0f64..500.0).prop_map(PacketFate::Late),
    ]
}

/// Rank of a fate for "never worse" comparisons: delivered < late < lost.
fn rank(f: PacketFate) -> u8 {
    match f {
        PacketFate::Delivered(_) => 0,
        PacketFate::Late(_) => 1,
        PacketFate::Lost => 2,
    }
}

proptest! {
    #[test]
    fn diversity_is_commutative(a in arb_fate(), b in arb_fate()) {
        prop_assert_eq!(combine_diversity(a, b), combine_diversity(b, a));
    }

    #[test]
    fn diversity_never_worse_than_either_copy(a in arb_fate(), b in arb_fate()) {
        let c = combine_diversity(a, b);
        prop_assert!(rank(c) <= rank(a).min(rank(b)));
        if let (PacketFate::Delivered(d), PacketFate::Delivered(x)) = (c, a) {
            prop_assert!(d <= x);
        }
    }

    #[test]
    fn diversity_with_self_is_identity(a in arb_fate()) {
        prop_assert_eq!(combine_diversity(a, a), a);
    }

    #[test]
    fn packet_fate_loss_monotone(
        seq in 0u64..5_000,
        base_delay in 1.0f64..200.0,
        l1 in 0.0f64..1.0,
        l2 in 0.0f64..1.0,
    ) {
        // If a packet is lost at loss rate l_lo it stays lost at l_hi ≥ l_lo
        // (same deterministic draw, higher threshold).
        let d = PathDynamics::sample(
            &[HostId(1)],
            60_000,
            &DynamicsConfig { episodes_per_minute: 0.0, seed: 5, ..Default::default() },
        );
        let cfg = StreamConfig::default();
        let (lo, hi) = if l1 <= l2 { (l1, l2) } else { (l2, l1) };
        let at_lo = packet_fate(seq, 0, base_delay, lo, &d, &cfg);
        let at_hi = packet_fate(seq, 0, base_delay, hi, &d, &cfg);
        if at_lo == PacketFate::Lost {
            prop_assert_eq!(at_hi, PacketFate::Lost);
        }
    }

    #[test]
    fn aggregator_conserves_packets(fates in proptest::collection::vec(arb_fate(), 1..400)) {
        let window_ms = 1_000u64;
        let mut agg = WindowAggregator::new(StreamConfig { window_ms, ..Default::default() });
        for (i, &f) in fates.iter().enumerate() {
            agg.record(i as u64 * 20, f);
        }
        let windows = agg.finish();
        let sent: u32 = windows.iter().map(|w| w.sent).sum();
        prop_assert_eq!(sent as usize, fates.len());
        for w in &windows {
            prop_assert!(w.lost + w.late <= w.sent);
            prop_assert!((1.0..=4.5).contains(&w.mos));
            prop_assert!((0.0..=1.0).contains(&w.effective_loss()));
        }
    }

    #[test]
    fn dynamics_condition_is_pure(relay in 0u32..50, t in 0u64..300_000) {
        let d = PathDynamics::sample(
            &[HostId(relay)],
            300_000,
            &DynamicsConfig { episodes_per_minute: 2.0, seed: 6, ..Default::default() },
        );
        prop_assert_eq!(d.condition_at(t), d.condition_at(t));
        let (delay, loss) = d.condition_at(t);
        prop_assert!(delay >= 0.0);
        prop_assert!((0.0..=1.0).contains(&loss));
    }
}
