//! Whole-call simulation under a transmission policy.

use asap_core::{AsapConfig, AsapSystem};
use asap_workload::sessions::Session;
use asap_workload::Scenario;

use crate::dynamics::{DynamicsConfig, PathDynamics};
use crate::policy::{combine_diversity, CandidatePath, PathSwitch, Switcher, SwitchingConfig};
use crate::stream::{StreamConfig, WindowAggregator, WindowStats};

/// How the sender uses the candidate paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Direct path only (no relays even if available).
    DirectOnly,
    /// Best setup-time path, never reconsidered.
    Static,
    /// Path switching on quality degradation (Tao et al. style).
    Switching,
    /// Packet duplication over the two best disjoint paths (Liang et al.
    /// style).
    Diversity,
}

impl std::fmt::Display for Policy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Policy::DirectOnly => "direct-only",
            Policy::Static => "static",
            Policy::Switching => "switching",
            Policy::Diversity => "diversity",
        };
        f.write_str(s)
    }
}

/// Call-level configuration.
#[derive(Debug, Clone)]
pub struct CallConfig {
    /// Call duration in milliseconds.
    pub duration_ms: u64,
    /// Stream (codec / playout / window) parameters.
    pub stream: StreamConfig,
    /// Switching parameters (used by [`Policy::Switching`]).
    pub switching: SwitchingConfig,
    /// Maximum candidate relay paths taken from ASAP's selection.
    pub max_candidates: usize,
}

impl Default for CallConfig {
    fn default() -> Self {
        CallConfig {
            duration_ms: 180_000,
            stream: StreamConfig::default(),
            switching: SwitchingConfig::default(),
            max_candidates: 4,
        }
    }
}

/// The result of one simulated call.
#[derive(Debug, Clone)]
pub struct CallReport {
    /// The policy that ran.
    pub policy: Policy,
    /// Candidate path labels, index-aligned with switch records.
    pub paths: Vec<String>,
    /// Per-window delivery and MOS statistics.
    pub windows: Vec<WindowStats>,
    /// Mid-call switches (switching policy only).
    pub switches: Vec<PathSwitch>,
    /// Mean MOS over all windows.
    pub mean_mos: f64,
    /// Worst window MOS.
    pub min_mos: f64,
}

/// Builds the candidate path list for a session: the direct path plus up
/// to `max_candidates` ASAP relay paths (primary surrogates of the best
/// close clusters).
pub fn candidate_paths(
    scenario: &Scenario,
    system: &AsapSystem<'_>,
    session: Session,
    call: &CallConfig,
    dynamics: &DynamicsConfig,
) -> Vec<CandidatePath> {
    let mut paths = Vec::new();
    if let (Some(rtt), Some(loss)) = (
        scenario.host_rtt_ms(session.caller, session.callee),
        scenario.host_loss(session.caller, session.callee),
    ) {
        paths.push(CandidatePath::new(
            "direct".to_owned(),
            rtt / 2.0,
            loss,
            PathDynamics::sample(&[], call.duration_ms, dynamics),
        ));
    }
    // Run select-close-relay() unconditionally: even when the direct path
    // is currently fine, the standby relays are what switching and
    // diversity need when it degrades mid-call.
    let caller_set = system.close_set_of(scenario.population.cluster_of(session.caller));
    let callee_set = system.close_set_of(scenario.population.cluster_of(session.callee));
    let clustering = scenario.population.clustering();
    let selection = asap_core::select::select_close_relay(
        &caller_set,
        &callee_set,
        system.config(),
        &|c| clustering.cluster(c).len() as u64,
        &mut |c| (*system.close_set_of(c)).clone(),
    );
    {
        let selection = &selection;
        for r in selection.one_hop.iter().take(call.max_candidates) {
            let relay = system.surrogate_of(r.cluster);
            if relay == session.caller || relay == session.callee {
                continue;
            }
            let (Some(rtt), Some(loss)) = (
                scenario.one_hop_rtt_ms(session.caller, relay, session.callee),
                scenario.one_hop_loss(session.caller, relay, session.callee),
            ) else {
                continue;
            };
            paths.push(CandidatePath::new(
                format!("via {relay}"),
                rtt / 2.0,
                loss,
                PathDynamics::sample(&[relay], call.duration_ms, dynamics),
            ));
        }
    }
    paths
}

/// Runs one call under `policy`. Boots a fresh ASAP system internally;
/// use [`simulate_with_paths`] to reuse a system or to control the path
/// set explicitly.
pub fn simulate(
    scenario: &Scenario,
    session: Session,
    policy: Policy,
    call: &CallConfig,
    dynamics: &DynamicsConfig,
) -> CallReport {
    let system = AsapSystem::bootstrap(scenario, AsapConfig::default());
    let paths = candidate_paths(scenario, &system, session, call, dynamics);
    simulate_with_paths(paths, policy, call)
}

/// Runs one call under `policy` over an explicit candidate path list
/// (index 0 must be the direct path when present).
///
/// # Panics
///
/// Panics if `paths` is empty.
pub fn simulate_with_paths(
    paths: Vec<CandidatePath>,
    policy: Policy,
    call: &CallConfig,
) -> CallReport {
    assert!(
        !paths.is_empty(),
        "a call needs at least one candidate path"
    );
    let labels: Vec<String> = paths.iter().map(|p| p.label.clone()).collect();

    // Setup-time ranking by base quality (delay + a loss penalty).
    let score = |p: &CandidatePath| p.base_one_way_ms + 500.0 * p.base_loss;
    let mut order: Vec<usize> = (0..paths.len()).collect();
    order.sort_by(|&a, &b| score(&paths[a]).total_cmp(&score(&paths[b])));

    let initial = match policy {
        Policy::DirectOnly => 0,
        _ => order[0],
    };
    let second = order.iter().copied().find(|&i| i != initial);

    let mut aggregator = WindowAggregator::new(call.stream.clone());
    let mut switcher = Switcher::new(initial, call.switching.clone());
    let packet_interval = call.stream.packet_interval_ms.max(1);
    let packets = call.duration_ms / packet_interval;

    for seq in 0..packets {
        let send_ms = seq * packet_interval;
        let fate = match policy {
            Policy::DirectOnly => paths[0].fate(seq, send_ms, &call.stream),
            Policy::Static => paths[initial].fate(seq, send_ms, &call.stream),
            Policy::Switching => {
                let active = switcher.active();
                let fate = paths[active].fate(seq, send_ms, &call.stream);
                switcher.observe(send_ms, fate, paths.len(), |p, at| {
                    // Standby probe: the sender samples the standby's
                    // current episode loss plus base loss.
                    let (_, extra_loss) = paths[p].dynamics.condition_at(at);
                    (paths[p].base_loss + extra_loss).min(1.0)
                });
                fate
            }
            Policy::Diversity => {
                let a = paths[initial].fate(seq, send_ms, &call.stream);
                match second {
                    Some(s) => combine_diversity(a, paths[s].fate(seq, send_ms, &call.stream)),
                    None => a,
                }
            }
        };
        aggregator.record(send_ms, fate);
    }

    let windows = aggregator.finish();
    let mean_mos = windows.iter().map(|w| w.mos).sum::<f64>() / windows.len().max(1) as f64;
    let min_mos = windows.iter().map(|w| w.mos).fold(f64::INFINITY, f64::min);
    CallReport {
        policy,
        paths: labels,
        switches: switcher.switches().to_vec(),
        windows,
        mean_mos,
        min_mos: if min_mos.is_finite() { min_mos } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::PathDynamics;

    fn path(
        label: &str,
        one_way: f64,
        loss: f64,
        episodes_per_minute: f64,
        seed: u64,
    ) -> CandidatePath {
        CandidatePath::new(
            label.to_owned(),
            one_way,
            loss,
            PathDynamics::sample(
                &[asap_workload::HostId(seed as u32)],
                180_000,
                &DynamicsConfig {
                    episodes_per_minute,
                    seed,
                    ..Default::default()
                },
            ),
        )
    }

    #[test]
    fn static_policy_picks_best_setup_path() {
        let paths = vec![
            path("direct", 200.0, 0.02, 0.0, 1),
            path("relay", 60.0, 0.005, 0.0, 2),
        ];
        let report = simulate_with_paths(paths, Policy::Static, &CallConfig::default());
        // Mean one-way ≈ 60 ms: healthy MOS throughout.
        assert!(report.mean_mos > 3.8, "mean MOS {}", report.mean_mos);
        assert!(report.switches.is_empty());
    }

    #[test]
    fn direct_only_ignores_better_relays() {
        let paths = vec![
            path("direct", 230.0, 0.03, 0.0, 1),
            path("relay", 60.0, 0.005, 0.0, 2),
        ];
        let direct = simulate_with_paths(paths.clone(), Policy::DirectOnly, &CallConfig::default());
        let relay = simulate_with_paths(paths, Policy::Static, &CallConfig::default());
        assert!(relay.mean_mos > direct.mean_mos + 0.3);
    }

    #[test]
    fn switching_beats_static_under_midcall_congestion() {
        // The initially-best path suffers heavy episodes; a clean standby
        // exists. Averages over several seeds to avoid episode luck.
        let mut static_sum = 0.0;
        let mut switching_sum = 0.0;
        for seed in 0..6u64 {
            let mk = || {
                vec![
                    CandidatePath::new(
                        "flappy".into(),
                        50.0,
                        0.005,
                        PathDynamics::sample(
                            &[asap_workload::HostId(1)],
                            180_000,
                            &DynamicsConfig {
                                episodes_per_minute: 4.0,
                                added_loss: (0.3, 0.6),
                                episode_ms: (10_000, 30_000),
                                seed,
                                ..Default::default()
                            },
                        ),
                    ),
                    path("stable", 80.0, 0.005, 0.0, 100 + seed),
                ]
            };
            let st = simulate_with_paths(mk(), Policy::Static, &CallConfig::default());
            let sw = simulate_with_paths(mk(), Policy::Switching, &CallConfig::default());
            static_sum += st.min_mos;
            switching_sum += sw.min_mos;
        }
        assert!(
            switching_sum > static_sum + 0.5,
            "switching min-MOS sum {switching_sum:.2} vs static {static_sum:.2}"
        );
    }

    #[test]
    fn diversity_masks_uncorrelated_loss() {
        let mk = |policy| {
            let paths = vec![
                path("a", 60.0, 0.10, 0.0, 11),
                path("b", 70.0, 0.10, 0.0, 12),
            ];
            simulate_with_paths(paths, policy, &CallConfig::default())
        };
        let single = mk(Policy::Static);
        let dual = mk(Policy::Diversity);
        // 10% + 10% independent → ~1% joint loss.
        let single_loss: f64 = single
            .windows
            .iter()
            .map(|w| w.effective_loss())
            .sum::<f64>()
            / single.windows.len() as f64;
        let dual_loss: f64 = dual.windows.iter().map(|w| w.effective_loss()).sum::<f64>()
            / dual.windows.len() as f64;
        assert!(
            (0.07..0.13).contains(&single_loss),
            "single loss {single_loss}"
        );
        assert!(dual_loss < 0.03, "dual loss {dual_loss}");
        assert!(dual.mean_mos > single.mean_mos);
    }

    #[test]
    fn switching_recovers_mos_after_relay_outage() {
        // The active relay path dies outright at 60 s (relay crash). The
        // static sender stays on the corpse and the call is ruined; the
        // switching sender detects the loss wall, moves to the standby,
        // and the tail of the call recovers to healthy quality.
        let mk = || {
            let mut dead = path("dying-relay", 50.0, 0.005, 0.0, 21);
            dead.outage_at_ms = Some(60_000);
            vec![dead, path("standby", 80.0, 0.005, 0.0, 22)]
        };
        let st = simulate_with_paths(mk(), Policy::Static, &CallConfig::default());
        let sw = simulate_with_paths(mk(), Policy::Switching, &CallConfig::default());
        assert!(
            !sw.switches.is_empty(),
            "switching never failed over off the dead path"
        );
        assert!(sw.switches[0].at_ms >= 60_000, "switched before the outage");
        assert_eq!(sw.switches[0].to_path, 1);
        // Degraded-then-recovered: the last window is healthy again...
        let last = sw.windows.last().unwrap();
        assert!(last.mos > 3.5, "tail never recovered: MOS {}", last.mos);
        // ...while the dip around the outage really happened.
        assert!(sw.min_mos < last.mos);
        // Static rode the dead path down instead.
        assert!(
            sw.mean_mos > st.mean_mos + 0.5,
            "switching {} vs static {}",
            sw.mean_mos,
            st.mean_mos
        );
    }

    #[test]
    fn report_aggregates_are_consistent() {
        let paths = vec![path("only", 100.0, 0.01, 1.0, 5)];
        let report = simulate_with_paths(paths, Policy::Static, &CallConfig::default());
        assert!(report.min_mos <= report.mean_mos);
        assert_eq!(report.paths, vec!["only".to_owned()]);
        assert!(!report.windows.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one candidate path")]
    fn empty_path_list_panics() {
        simulate_with_paths(Vec::new(), Policy::Static, &CallConfig::default());
    }
}
