//! Mid-call network dynamics.
//!
//! A relay path that measured well at call setup does not stay that way:
//! the paper observes Skype still probing relays minutes into a call
//! because "the network condition still changes dynamically after the
//! stabilization time". This module models that as per-path *episodes*:
//! intervals during which a path carries extra delay and loss, derived
//! deterministically from a seed so call simulations are reproducible.

use asap_workload::HostId;

/// Configuration of mid-call dynamics.
#[derive(Debug, Clone)]
pub struct DynamicsConfig {
    /// Expected number of congestion episodes per path per minute.
    pub episodes_per_minute: f64,
    /// Episode duration range in milliseconds.
    pub episode_ms: (u64, u64),
    /// Extra one-way delay during an episode, in milliseconds.
    pub added_delay_ms: (f64, f64),
    /// Extra loss probability during an episode.
    pub added_loss: (f64, f64),
    /// Per-packet jitter half-width in milliseconds (always on).
    pub jitter_ms: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DynamicsConfig {
    fn default() -> Self {
        DynamicsConfig {
            episodes_per_minute: 0.8,
            episode_ms: (3_000, 20_000),
            added_delay_ms: (20.0, 150.0),
            added_loss: (0.01, 0.15),
            jitter_ms: 6.0,
            seed: 0,
        }
    }
}

/// One congestion episode on a path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Episode {
    /// Start time within the call, milliseconds.
    pub start_ms: u64,
    /// End time within the call, milliseconds.
    pub end_ms: u64,
    /// Extra one-way delay while active.
    pub added_delay_ms: f64,
    /// Extra loss probability while active.
    pub added_loss: f64,
}

/// The dynamic state of one transmission path over a call.
///
/// Identified by its relay chain so that the same path gets the same
/// episodes in every policy being compared — differences between policies
/// then come from the policy, not from luck.
#[derive(Debug, Clone)]
pub struct PathDynamics {
    episodes: Vec<Episode>,
    jitter_ms: f64,
    seed: u64,
    path_key: u64,
}

impl PathDynamics {
    /// Samples the episode timeline for the path identified by `relays`
    /// (empty = direct) over a call of `duration_ms`.
    pub fn sample(relays: &[HostId], duration_ms: u64, config: &DynamicsConfig) -> Self {
        let path_key = relays.iter().fold(0xD1CE_u64, |acc, r| {
            acc.rotate_left(17) ^ (r.0 as u64).wrapping_mul(0x9E37_79B9)
        });
        let minutes = duration_ms as f64 / 60_000.0;
        let expected = config.episodes_per_minute * minutes;
        let mut episodes = Vec::new();
        let n = {
            let u = unit(mix(config.seed, path_key, 0));
            // Rounded Poisson-ish: floor(expected) plus a fractional coin.
            expected.floor() as usize + usize::from(u < expected.fract())
        };
        for i in 0..n {
            let h = mix(config.seed, path_key, 1 + i as u64);
            let start = (unit(h) * duration_ms as f64) as u64;
            let (dlo, dhi) = config.episode_ms;
            let len = dlo + (unit(mix(h, 1, 2)) * (dhi - dlo) as f64) as u64;
            let (alo, ahi) = config.added_delay_ms;
            let (llo, lhi) = config.added_loss;
            episodes.push(Episode {
                start_ms: start,
                end_ms: (start + len).min(duration_ms),
                added_delay_ms: alo + unit(mix(h, 3, 4)) * (ahi - alo),
                added_loss: llo + unit(mix(h, 5, 6)) * (lhi - llo),
            });
        }
        episodes.sort_by_key(|e| e.start_ms);
        PathDynamics {
            episodes,
            jitter_ms: config.jitter_ms,
            seed: config.seed,
            path_key,
        }
    }

    /// The sampled episodes.
    pub fn episodes(&self) -> &[Episode] {
        &self.episodes
    }

    /// Extra (one-way delay, loss) at time `t_ms` into the call.
    pub fn condition_at(&self, t_ms: u64) -> (f64, f64) {
        let mut delay = 0.0;
        let mut loss = 0.0;
        for e in &self.episodes {
            if e.start_ms <= t_ms && t_ms < e.end_ms {
                delay += e.added_delay_ms;
                loss += e.added_loss;
            }
        }
        (delay, loss.min(1.0))
    }

    /// Deterministic per-packet jitter in `[-jitter, +jitter]` ms for the
    /// packet with sequence number `seq`.
    pub fn packet_jitter_ms(&self, seq: u64) -> f64 {
        self.jitter_ms * (2.0 * unit(mix(self.seed ^ 0x1177, self.path_key, seq)) - 1.0)
    }

    /// Deterministic uniform draw in [0, 1) deciding the loss fate of
    /// packet `seq`.
    pub fn packet_loss_draw(&self, seq: u64) -> f64 {
        unit(mix(self.seed ^ 0x10_55, self.path_key, seq))
    }
}

fn mix(a: u64, b: u64, c: u64) -> u64 {
    let mut z = a ^ b.rotate_left(25) ^ c.rotate_left(47) ^ 0x9E37_79B9_7F4A_7C15;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dynamics(relays: &[HostId]) -> PathDynamics {
        PathDynamics::sample(
            relays,
            300_000,
            &DynamicsConfig {
                episodes_per_minute: 2.0,
                seed: 9,
                ..Default::default()
            },
        )
    }

    #[test]
    fn sampling_is_deterministic_per_path() {
        let a = dynamics(&[HostId(5)]);
        let b = dynamics(&[HostId(5)]);
        assert_eq!(a.episodes(), b.episodes());
        let c = dynamics(&[HostId(6)]);
        assert_ne!(a.episodes(), c.episodes());
    }

    #[test]
    fn episodes_fit_the_call() {
        let d = dynamics(&[HostId(1), HostId(2)]);
        assert!(!d.episodes().is_empty());
        for e in d.episodes() {
            assert!(e.start_ms <= e.end_ms);
            assert!(e.end_ms <= 300_000);
            assert!(e.added_delay_ms >= 20.0 && e.added_delay_ms <= 150.0);
        }
    }

    #[test]
    fn condition_reflects_active_episode() {
        let d = dynamics(&[HostId(7)]);
        let e = d.episodes()[0];
        if e.start_ms < e.end_ms {
            let (delay, loss) = d.condition_at((e.start_ms + e.end_ms) / 2);
            assert!(delay >= e.added_delay_ms - 1e-9);
            assert!(loss >= e.added_loss - 1e-9);
        }
        // Far outside all episodes (time beyond call end) is clean.
        let (delay, loss) = d.condition_at(u64::MAX);
        assert_eq!((delay, loss), (0.0, 0.0));
    }

    #[test]
    fn jitter_is_bounded_and_varies() {
        let d = dynamics(&[]);
        let mut distinct = std::collections::HashSet::new();
        for seq in 0..200 {
            let j = d.packet_jitter_ms(seq);
            assert!(j.abs() <= 6.0 + 1e-9);
            distinct.insert((j * 1000.0) as i64);
        }
        assert!(distinct.len() > 50, "jitter looks constant");
    }

    #[test]
    fn zero_rate_produces_no_episodes() {
        let d = PathDynamics::sample(
            &[HostId(1)],
            60_000,
            &DynamicsConfig {
                episodes_per_minute: 0.0,
                seed: 1,
                ..Default::default()
            },
        );
        assert!(d.episodes().is_empty());
    }
}
