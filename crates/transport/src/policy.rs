//! Transmission policies over a set of candidate paths.
//!
//! ASAP hands the caller several quality relay paths; what to do with
//! them during the call is a policy choice the paper delegates to the
//! literature it cites:
//!
//! * **Static** — stick to the best path chosen at setup.
//! * **Switching** (Tao, Xu, Estepa, Fei, Gao, Guerin, Kurose, Towsley,
//!   Zhang — "Improving VoIP quality through path switching",
//!   INFOCOM'05): monitor the active path with receiver feedback and
//!   switch to a standby when quality degrades.
//! * **Diversity** (Liang, Steinbach, Girod — "Real-time voice
//!   communication over the internet using packet path diversity", ACM
//!   MM'01): duplicate every packet over two paths and play the first
//!   copy that arrives.

use asap_telemetry::{Counter, HistogramHandle};

use crate::dynamics::PathDynamics;
use crate::stream::{packet_fate, PacketFate, StreamConfig};

/// A candidate transmission path with its setup-time base quality.
#[derive(Debug, Clone)]
pub struct CandidatePath {
    /// Human-readable identity (relay chain) used for reporting.
    pub label: String,
    /// Base one-way network delay, ms (RTT/2 at setup).
    pub base_one_way_ms: f64,
    /// Base loss probability at setup.
    pub base_loss: f64,
    /// The path's mid-call dynamics.
    pub dynamics: PathDynamics,
    /// If set, the path dies outright at this call time (its relay
    /// crashed): every packet sent at or after it is lost until a policy
    /// moves the call elsewhere.
    pub outage_at_ms: Option<u64>,
    /// If set, the path's relay saturates (all call slots taken) at this
    /// call time: the path keeps forwarding but sheds most packets and
    /// queues the rest, so the switching monitor evacuates it like it
    /// would a crashed one — relay saturation is failed away from, not
    /// waited out.
    pub saturated_at_ms: Option<u64>,
}

/// Fraction of packets a saturated relay sheds from each flow it still
/// carries (the rest crawl through behind its full queues).
const SATURATION_SHED: f64 = 0.75;

/// Queueing delay a saturated relay adds to the packets it does forward,
/// one-way ms.
const SATURATION_QUEUE_MS: f64 = 120.0;

impl CandidatePath {
    /// A path with no scheduled outage.
    pub fn new(
        label: String,
        base_one_way_ms: f64,
        base_loss: f64,
        dynamics: PathDynamics,
    ) -> Self {
        CandidatePath {
            label,
            base_one_way_ms,
            base_loss,
            dynamics,
            outage_at_ms: None,
            saturated_at_ms: None,
        }
    }

    /// The fate of packet `seq` sent at `send_ms` over this path.
    pub fn fate(&self, seq: u64, send_ms: u64, config: &StreamConfig) -> PacketFate {
        if self.outage_at_ms.is_some_and(|t| send_ms >= t) {
            return PacketFate::Lost;
        }
        if self.saturated_at_ms.is_some_and(|t| send_ms >= t) {
            return packet_fate(
                seq,
                send_ms,
                self.base_one_way_ms + SATURATION_QUEUE_MS,
                self.base_loss.max(SATURATION_SHED),
                &self.dynamics,
                config,
            );
        }
        packet_fate(
            seq,
            send_ms,
            self.base_one_way_ms,
            self.base_loss,
            &self.dynamics,
            config,
        )
    }
}

/// Parameters of the switching monitor.
#[derive(Debug, Clone)]
pub struct SwitchingConfig {
    /// Feedback (RTCP-like) interval in milliseconds.
    pub feedback_interval_ms: u64,
    /// Effective loss over the last feedback interval that triggers a
    /// switch attempt.
    pub loss_threshold: f64,
    /// Minimum dwell time on a path before switching again, ms.
    pub min_dwell_ms: u64,
}

impl Default for SwitchingConfig {
    fn default() -> Self {
        SwitchingConfig {
            feedback_interval_ms: 2_000,
            loss_threshold: 0.08,
            min_dwell_ms: 4_000,
        }
    }
}

/// A record of one mid-call path switch.
#[derive(Debug, Clone, PartialEq)]
pub struct PathSwitch {
    /// When the switch happened, ms into the call.
    pub at_ms: u64,
    /// Index of the path switched to.
    pub to_path: usize,
}

/// The path-switching transmitter: sends on one active path, watches
/// interval loss, and fails over to the standby that currently measures
/// best.
#[derive(Debug)]
pub struct Switcher {
    config: SwitchingConfig,
    active: usize,
    last_switch_ms: u64,
    interval_sent: u32,
    interval_bad: u32,
    interval_start: u64,
    switches: Vec<PathSwitch>,
    telemetry: Option<(Counter, HistogramHandle)>,
}

impl Switcher {
    /// Starts on path `initial`.
    pub fn new(initial: usize, config: SwitchingConfig) -> Self {
        Switcher {
            config,
            active: initial,
            last_switch_ms: 0,
            interval_sent: 0,
            interval_bad: 0,
            interval_start: 0,
            switches: Vec::new(),
            telemetry: None,
        }
    }

    /// Records every path switch on `switch_count` and the dwell time
    /// (virtual ms spent on the abandoned path) into `dwell_ms` — e.g. a
    /// registry's `transport.path_switches` counter and
    /// `transport.path_dwell_ms` histogram.
    pub fn with_telemetry(mut self, switch_count: Counter, dwell_ms: HistogramHandle) -> Self {
        self.telemetry = Some((switch_count, dwell_ms));
        self
    }

    /// The currently active path index.
    pub fn active(&self) -> usize {
        self.active
    }

    /// All switches so far.
    pub fn switches(&self) -> &[PathSwitch] {
        &self.switches
    }

    /// Observes the fate of a packet on the active path and, at feedback
    /// boundaries, decides whether to switch. `probe` estimates the
    /// current effective loss of a standby path (the sender keeps lightly
    /// probing standbys).
    pub fn observe(
        &mut self,
        send_ms: u64,
        fate: PacketFate,
        path_count: usize,
        mut probe: impl FnMut(usize, u64) -> f64,
    ) {
        self.interval_sent += 1;
        if !matches!(fate, PacketFate::Delivered(_)) {
            self.interval_bad += 1;
        }
        if send_ms < self.interval_start + self.config.feedback_interval_ms {
            return;
        }
        let loss = self.interval_bad as f64 / self.interval_sent.max(1) as f64;
        self.interval_start = send_ms;
        self.interval_sent = 0;
        self.interval_bad = 0;
        let dwelling =
            !self.switches.is_empty() && send_ms < self.last_switch_ms + self.config.min_dwell_ms;
        if loss < self.config.loss_threshold || dwelling {
            return;
        }
        // Pick the standby with the lowest probed loss; switch if it is
        // meaningfully better than what we just suffered.
        let mut best = self.active;
        let mut best_loss = loss;
        for p in 0..path_count {
            if p == self.active {
                continue;
            }
            let standby_loss = probe(p, send_ms);
            if standby_loss < best_loss {
                best = p;
                best_loss = standby_loss;
            }
        }
        if best != self.active && best_loss + 0.02 < loss {
            if let Some((count, dwell)) = &self.telemetry {
                count.inc();
                dwell.record(send_ms.saturating_sub(self.last_switch_ms) as f64);
            }
            self.active = best;
            self.last_switch_ms = send_ms;
            self.switches.push(PathSwitch {
                at_ms: send_ms,
                to_path: best,
            });
        }
    }
}

/// Combines the fates of the two copies of a packet sent over two paths
/// (path diversity): the receiver plays whichever usable copy arrives
/// first.
pub fn combine_diversity(a: PacketFate, b: PacketFate) -> PacketFate {
    match (a, b) {
        (PacketFate::Delivered(x), PacketFate::Delivered(y)) => PacketFate::Delivered(x.min(y)),
        (PacketFate::Delivered(x), _) | (_, PacketFate::Delivered(x)) => PacketFate::Delivered(x),
        (PacketFate::Late(x), PacketFate::Late(y)) => PacketFate::Late(x.min(y)),
        (PacketFate::Late(x), _) | (_, PacketFate::Late(x)) => PacketFate::Late(x),
        (PacketFate::Lost, PacketFate::Lost) => PacketFate::Lost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diversity_takes_first_usable_copy() {
        use PacketFate::*;
        assert_eq!(
            combine_diversity(Delivered(40.0), Delivered(60.0)),
            Delivered(40.0)
        );
        assert_eq!(combine_diversity(Lost, Delivered(80.0)), Delivered(80.0));
        assert_eq!(
            combine_diversity(Late(200.0), Delivered(80.0)),
            Delivered(80.0)
        );
        assert_eq!(combine_diversity(Late(200.0), Late(150.0)), Late(150.0));
        assert_eq!(combine_diversity(Lost, Lost), Lost);
    }

    #[test]
    fn switcher_fails_over_on_sustained_loss() {
        let registry = asap_telemetry::Registry::new();
        let mut sw = Switcher::new(0, SwitchingConfig::default()).with_telemetry(
            registry.counter("transport.path_switches"),
            registry.histogram("transport.path_dwell_ms"),
        );
        // 3 seconds of pure loss on path 0, standby path 1 is clean.
        for seq in 0..150u64 {
            sw.observe(seq * 20, PacketFate::Lost, 2, |_, _| 0.0);
        }
        assert_eq!(sw.active(), 1);
        assert_eq!(sw.switches().len(), 1);
        assert_eq!(registry.counter("transport.path_switches").get(), 1);
        assert_eq!(
            registry
                .histogram("transport.path_dwell_ms")
                .histogram()
                .count(),
            1
        );
    }

    #[test]
    fn switcher_evacuates_saturated_path() {
        use crate::dynamics::{DynamicsConfig, PathDynamics};
        use crate::stream::StreamConfig;
        // A clean path that saturates 10 s into the call: its loss jumps
        // to the shed fraction and the monitor must move the call off it
        // just as it would for a crash.
        let quiet = PathDynamics::sample(
            &[],
            60_000,
            &DynamicsConfig {
                episodes_per_minute: 0.0,
                seed: 11,
                ..Default::default()
            },
        );
        let mut path = CandidatePath::new("one_hop".into(), 40.0, 0.005, quiet);
        path.saturated_at_ms = Some(10_000);
        let config = StreamConfig::default();
        let mut sw = Switcher::new(0, SwitchingConfig::default());
        for seq in 0..1_000u64 {
            let send_ms = seq * 20;
            // The sender transmits on whatever path is active: the
            // saturated candidate while on 0, a clean standby once moved.
            let fate = if sw.active() == 0 {
                path.fate(seq, send_ms, &config)
            } else {
                PacketFate::Delivered(45.0)
            };
            sw.observe(send_ms, fate, 2, |_, _| 0.005);
        }
        assert_eq!(sw.active(), 1, "monitor must abandon the saturated path");
        assert_eq!(sw.switches().len(), 1, "and settle on the standby");
        let switch = &sw.switches()[0];
        assert!(
            switch.at_ms >= 10_000,
            "no reason to leave before saturation, switched at {}",
            switch.at_ms
        );
        // Before saturation the path behaves exactly as configured.
        assert!(matches!(
            path.fate(1, 9_000, &config),
            PacketFate::Delivered(_) | PacketFate::Late(_) | PacketFate::Lost
        ));
    }

    #[test]
    fn switcher_stays_on_healthy_path() {
        let mut sw = Switcher::new(0, SwitchingConfig::default());
        for seq in 0..500u64 {
            sw.observe(seq * 20, PacketFate::Delivered(50.0), 3, |_, _| 0.0);
        }
        assert!(sw.switches().is_empty());
    }

    #[test]
    fn switcher_respects_dwell_time() {
        let cfg = SwitchingConfig {
            min_dwell_ms: 60_000,
            ..Default::default()
        };
        let mut sw = Switcher::new(0, cfg);
        // Everything is terrible everywhere; after the first switch the
        // dwell timer must suppress further flapping within the minute.
        for seq in 0..1_000u64 {
            sw.observe(seq * 20, PacketFate::Lost, 3, |_, _| 0.0);
        }
        assert!(
            sw.switches().len() <= 1,
            "switched {} times",
            sw.switches().len()
        );
    }

    #[test]
    fn switcher_prefers_best_standby() {
        let mut sw = Switcher::new(0, SwitchingConfig::default());
        for seq in 0..200u64 {
            sw.observe(seq * 20, PacketFate::Lost, 3, |p, _| {
                if p == 2 {
                    0.01
                } else {
                    0.5
                }
            });
        }
        assert_eq!(sw.active(), 2);
    }
}
