//! Packet-level voice transport over relay paths.
//!
//! The ASAP paper closes its protocol section by noting that "techniques
//! such as path diversity (\[15, 19\]) and path switching \[20\] can be used
//! in combination with ASAP to transmit voice packets" (§6.2) — ASAP
//! *finds* the relay paths; this crate is the transmission layer the
//! paper points to:
//!
//! * [`dynamics`] — mid-call network dynamics: transient congestion
//!   episodes per path, on top of the scenario's base latency/loss
//!   (Fig. 7(c)'s observation that "the network condition still changes
//!   dynamically after the stabilization time").
//! * [`stream`] — a packet-level simulation of one voice stream: codec
//!   packetization, per-packet delay/loss, a playout buffer that turns
//!   late packets into erasures, and windowed E-model MOS.
//! * [`policy`] — transmission policies over the candidate paths ASAP
//!   returns: single static path, **path switching** (Tao et al.,
//!   INFOCOM'05 style: monitor and switch on degradation), and **path
//!   diversity** (Liang et al., ACM MM'01 style: duplicate packets over
//!   two paths, play the first arrival).
//! * [`call`] — the orchestration that runs a whole call under one policy
//!   and reports per-window quality.
//!
//! # Example
//!
//! ```
//! use asap_transport::{call::{simulate, CallConfig, Policy}, dynamics::DynamicsConfig};
//! use asap_workload::{sessions, Scenario, ScenarioConfig};
//!
//! let scenario = Scenario::build(ScenarioConfig::tiny(), 3);
//! let session = sessions::generate(&scenario.population, 1, 1)[0];
//! let report = simulate(
//!     &scenario,
//!     session,
//!     Policy::Static,
//!     &CallConfig { duration_ms: 30_000, ..CallConfig::default() },
//!     &DynamicsConfig::default(),
//! );
//! assert!(!report.windows.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod call;
pub mod dynamics;
pub mod policy;
pub mod stream;
