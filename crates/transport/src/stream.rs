//! Packet-level voice stream simulation.
//!
//! One voice stream = a sequence of RTP packets (codec frames), each
//! subject to the path's one-way delay, per-packet jitter, and loss. The
//! receiver's playout buffer converts excessive jitter into erasures:
//! a packet arriving after its playout deadline is as good as lost. Per
//! window (a few seconds), delivery statistics become an E-model MOS.

use asap_voip::emodel::EModel;
use asap_voip::Codec;

use crate::dynamics::PathDynamics;

/// Packetization and playout parameters of a stream.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// The speech codec.
    pub codec: Codec,
    /// Packet interval in milliseconds (codec frames per packet × frame
    /// duration).
    pub packet_interval_ms: u64,
    /// Playout buffer depth in milliseconds: a packet is played
    /// `one_way + playout` after capture; arriving later means erased.
    pub playout_ms: f64,
    /// Statistics window length in milliseconds.
    pub window_ms: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            codec: Codec::G729aVad,
            packet_interval_ms: 20,
            playout_ms: 60.0,
            window_ms: 5_000,
        }
    }
}

/// Delivery statistics of one window of a stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowStats {
    /// Window start time within the call, ms.
    pub start_ms: u64,
    /// Packets sent in the window.
    pub sent: u32,
    /// Packets lost in the network.
    pub lost: u32,
    /// Packets that arrived after their playout deadline.
    pub late: u32,
    /// Mean one-way network delay of delivered packets, ms.
    pub mean_delay_ms: f64,
    /// E-model MOS for the window (delay = mean one-way + playout;
    /// loss = lost + late).
    pub mos: f64,
}

impl WindowStats {
    /// Effective loss fraction (network loss + late erasures).
    pub fn effective_loss(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            (self.lost + self.late) as f64 / self.sent as f64
        }
    }
}

/// The fate of one transmitted packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PacketFate {
    /// Delivered in time, with its one-way network delay.
    Delivered(f64),
    /// Lost in the network.
    Lost,
    /// Arrived after the playout deadline.
    Late(f64),
}

/// Computes the fate of packet `seq` sent at `send_ms` over a path whose
/// base quality is `(base_one_way_ms, base_loss)` plus `dynamics`.
pub fn packet_fate(
    seq: u64,
    send_ms: u64,
    base_one_way_ms: f64,
    base_loss: f64,
    dynamics: &PathDynamics,
    config: &StreamConfig,
) -> PacketFate {
    let (extra_delay, extra_loss) = dynamics.condition_at(send_ms);
    let loss = (base_loss + extra_loss).min(1.0);
    if dynamics.packet_loss_draw(seq) < loss {
        return PacketFate::Lost;
    }
    let delay = (base_one_way_ms + extra_delay + dynamics.packet_jitter_ms(seq)).max(0.0);
    if delay > base_one_way_ms + config.playout_ms {
        PacketFate::Late(delay)
    } else {
        PacketFate::Delivered(delay)
    }
}

/// Aggregates packet fates into per-window statistics with MOS.
#[derive(Debug)]
pub struct WindowAggregator {
    config: StreamConfig,
    model: EModel,
    current_start: u64,
    sent: u32,
    lost: u32,
    late: u32,
    delay_sum: f64,
    delivered: u32,
    windows: Vec<WindowStats>,
}

impl WindowAggregator {
    /// Creates an aggregator for the given stream configuration.
    pub fn new(config: StreamConfig) -> Self {
        let model = EModel::new(config.codec);
        WindowAggregator {
            config,
            model,
            current_start: 0,
            sent: 0,
            lost: 0,
            late: 0,
            delay_sum: 0.0,
            delivered: 0,
            windows: Vec::new(),
        }
    }

    /// Records one packet's fate at its send time.
    pub fn record(&mut self, send_ms: u64, fate: PacketFate) {
        while send_ms >= self.current_start + self.config.window_ms {
            self.flush();
        }
        self.sent += 1;
        match fate {
            PacketFate::Delivered(d) => {
                self.delivered += 1;
                self.delay_sum += d;
            }
            PacketFate::Lost => self.lost += 1,
            PacketFate::Late(_) => self.late += 1,
        }
    }

    fn flush(&mut self) {
        if self.sent > 0 {
            let mean_delay = if self.delivered > 0 {
                self.delay_sum / self.delivered as f64
            } else {
                0.0
            };
            let loss = (self.lost + self.late) as f64 / self.sent as f64;
            let mos = self.model.mos(mean_delay + self.config.playout_ms, loss);
            self.windows.push(WindowStats {
                start_ms: self.current_start,
                sent: self.sent,
                lost: self.lost,
                late: self.late,
                mean_delay_ms: mean_delay,
                mos,
            });
        }
        self.current_start += self.config.window_ms;
        self.sent = 0;
        self.lost = 0;
        self.late = 0;
        self.delay_sum = 0.0;
        self.delivered = 0;
    }

    /// Finishes the stream and returns all windows.
    pub fn finish(mut self) -> Vec<WindowStats> {
        self.flush();
        self.windows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::{DynamicsConfig, PathDynamics};

    fn quiet_dynamics() -> PathDynamics {
        PathDynamics::sample(
            &[],
            60_000,
            &DynamicsConfig {
                episodes_per_minute: 0.0,
                jitter_ms: 0.0,
                seed: 1,
                ..Default::default()
            },
        )
    }

    #[test]
    fn clean_path_delivers_everything() {
        let d = quiet_dynamics();
        let cfg = StreamConfig::default();
        for seq in 0..100 {
            let fate = packet_fate(seq, seq * 20, 50.0, 0.0, &d, &cfg);
            assert_eq!(fate, PacketFate::Delivered(50.0));
        }
    }

    #[test]
    fn full_loss_kills_everything() {
        let d = quiet_dynamics();
        let cfg = StreamConfig::default();
        for seq in 0..50 {
            assert_eq!(
                packet_fate(seq, seq * 20, 50.0, 1.0, &d, &cfg),
                PacketFate::Lost
            );
        }
    }

    #[test]
    fn episode_loss_rate_is_respected() {
        let d = PathDynamics::sample(
            &[],
            60_000,
            &DynamicsConfig {
                episodes_per_minute: 0.0,
                jitter_ms: 0.0,
                seed: 2,
                ..Default::default()
            },
        );
        let cfg = StreamConfig::default();
        let lost = (0..2_000)
            .filter(|&seq| packet_fate(seq, seq * 20, 50.0, 0.3, &d, &cfg) == PacketFate::Lost)
            .count();
        let rate = lost as f64 / 2_000.0;
        assert!((0.25..0.35).contains(&rate), "loss rate {rate}");
    }

    #[test]
    fn excessive_jitter_goes_late() {
        let d = PathDynamics::sample(
            &[],
            60_000,
            &DynamicsConfig {
                episodes_per_minute: 0.0,
                jitter_ms: 0.0,
                seed: 3,
                ..Default::default()
            },
        );
        // A 100 ms episode delay with a 60 ms playout budget → late.
        let d_with_episode = PathDynamics::sample(
            &[],
            60_000,
            &DynamicsConfig {
                episodes_per_minute: 60.0, // effectively always in an episode
                episode_ms: (60_000, 60_000),
                added_delay_ms: (100.0, 100.0),
                added_loss: (0.0, 0.0),
                jitter_ms: 0.0,
                seed: 4,
            },
        );
        let cfg = StreamConfig::default();
        assert!(matches!(
            packet_fate(0, 0, 50.0, 0.0, &d, &cfg),
            PacketFate::Delivered(_)
        ));
        // Find a time inside an episode.
        let inside = d_with_episode.episodes()[0].start_ms;
        assert!(matches!(
            packet_fate(0, inside, 50.0, 0.0, &d_with_episode, &cfg),
            PacketFate::Late(_)
        ));
    }

    #[test]
    fn aggregator_windows_and_mos() {
        let cfg = StreamConfig {
            window_ms: 1_000,
            ..Default::default()
        };
        let mut agg = WindowAggregator::new(cfg);
        // 2 s of clean 50 ms packets, then 1 s of pure loss.
        for seq in 0..100u64 {
            agg.record(seq * 20, PacketFate::Delivered(50.0));
        }
        for seq in 100..150u64 {
            agg.record(seq * 20, PacketFate::Lost);
        }
        let windows = agg.finish();
        assert_eq!(windows.len(), 3);
        assert!(windows[0].mos > 3.9);
        assert_eq!(windows[2].effective_loss(), 1.0);
        assert!(windows[2].mos < 1.5);
        assert!(windows[0].mos > windows[2].mos);
    }

    #[test]
    fn empty_windows_are_skipped() {
        let mut agg = WindowAggregator::new(StreamConfig {
            window_ms: 1_000,
            ..Default::default()
        });
        agg.record(0, PacketFate::Delivered(10.0));
        agg.record(5_000, PacketFate::Delivered(10.0)); // gap of silent windows
        let windows = agg.finish();
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].start_ms, 0);
        assert_eq!(windows[1].start_ms, 5_000);
    }
}
