//! Codec impairment parameters.

use std::fmt;

/// A narrowband speech codec with its E-model impairment parameters.
///
/// `Ie` is the equipment impairment factor (how much the codec itself
/// degrades quality at zero loss) and `Bpl` the packet-loss robustness
/// factor; both feed the effective equipment impairment
/// `Ie,eff = Ie + (95 − Ie) · Ppl / (Ppl + Bpl)` of ITU-T G.113 / G.107.
/// Values follow ITU-T G.113 Appendix I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Codec {
    /// G.711 (64 kbit/s PCM), no packet-loss concealment.
    G711,
    /// G.711 with packet-loss concealment.
    G711Plc,
    /// G.729 (8 kbit/s CS-ACELP).
    G729,
    /// G.729A with voice activity detection — the codec the ASAP paper
    /// fixes for its Fig. 15/16 MOS evaluation.
    G729aVad,
    /// G.723.1 (6.3 kbit/s MP-MLQ).
    G7231,
}

impl Codec {
    /// Equipment impairment factor `Ie` at zero packet loss.
    pub fn ie(self) -> f64 {
        match self {
            Codec::G711 | Codec::G711Plc => 0.0,
            Codec::G729 => 10.0,
            Codec::G729aVad => 11.0,
            Codec::G7231 => 15.0,
        }
    }

    /// Packet-loss robustness factor `Bpl` (higher = more robust), for
    /// random losses.
    pub fn bpl(self) -> f64 {
        match self {
            Codec::G711 => 4.3,
            Codec::G711Plc => 25.1,
            Codec::G729 => 19.0,
            Codec::G729aVad => 19.0,
            Codec::G7231 => 16.1,
        }
    }

    /// Frame duration in milliseconds (one codec frame).
    pub fn frame_ms(self) -> f64 {
        match self {
            Codec::G711 | Codec::G711Plc => 10.0,
            Codec::G729 | Codec::G729aVad => 10.0,
            Codec::G7231 => 30.0,
        }
    }

    /// Codec algorithmic + look-ahead delay in milliseconds.
    pub fn processing_ms(self) -> f64 {
        match self {
            Codec::G711 | Codec::G711Plc => 0.25,
            Codec::G729 | Codec::G729aVad => 15.0,
            Codec::G7231 => 37.5,
        }
    }
}

impl fmt::Display for Codec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Codec::G711 => "G.711",
            Codec::G711Plc => "G.711+PLC",
            Codec::G729 => "G.729",
            Codec::G729aVad => "G.729A+VAD",
            Codec::G7231 => "G.723.1",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameters_match_g113() {
        assert_eq!(Codec::G711.ie(), 0.0);
        assert_eq!(Codec::G729aVad.ie(), 11.0);
        assert_eq!(Codec::G729aVad.bpl(), 19.0);
        assert_eq!(Codec::G7231.ie(), 15.0);
    }

    #[test]
    fn plc_makes_g711_more_loss_robust() {
        assert!(Codec::G711Plc.bpl() > Codec::G711.bpl());
    }

    #[test]
    fn display_names() {
        assert_eq!(Codec::G729aVad.to_string(), "G.729A+VAD");
    }
}
