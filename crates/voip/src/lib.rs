//! VoIP speech-quality substrate: the ITU-T E-model, MOS, codec
//! impairment tables, and the G.114 delay budget.
//!
//! The ASAP paper evaluates relay paths by the Mean Opinion Score its
//! sessions would achieve: "The MOS quality metric can be quantitatively
//! characterized with the end-to-end delay and packet loss rate under the
//! ITU-E-Model when fixing other non-network factors. By fixing the codec
//! as G.729A+VAD, given the RTT and packet loss rate of a path, we use
//! ITU-E-Model to compute its MOS." (§7.2). This crate implements that
//! computation:
//!
//! * [`emodel`] — the G.107 transmission-rating computation `R = R₀ − Is −
//!   Id(Ta) − Ie,eff(Ppl) + A` and the R → MOS mapping.
//! * [`Codec`] — equipment-impairment (`Ie`) and loss-robustness (`Bpl`)
//!   parameters for the codecs the paper discusses (G.711, G.729, G.729A,
//!   G.723.1).
//! * [`budget`] — the G.114 one-way delay budget (150 ms) and the derived
//!   300 ms RTT threshold ASAP uses for *quality paths*.
//!
//! # Example
//!
//! ```
//! use asap_voip::{emodel::EModel, Codec};
//!
//! let model = EModel::new(Codec::G729aVad);
//! // A 100 ms one-way path with 0.5% loss is comfortably satisfactory…
//! let good = model.mos(100.0, 0.005);
//! assert!(good > 3.85);
//! // …while a 400 ms one-way path with the same loss is not.
//! let bad = model.mos(400.0, 0.005);
//! assert!(bad < 3.6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
mod codec;
pub mod emodel;
mod quality;

pub use codec::Codec;
pub use quality::{PathQuality, QualityRequirement};
