//! The ITU-T G.107 E-model: transmission rating `R` and MOS.
//!
//! The E-model combines additive impairments on a 0–100 "transmission
//! rating" scale:
//!
//! ```text
//! R = R₀ − Is − Id(Ta) − Ie,eff(Ppl) + A
//! ```
//!
//! * `R₀ − Is ≈ 93.2` with all default G.107 parameters (basic
//!   signal-to-noise minus simultaneous impairments);
//! * `Id(Ta)` is the delay impairment for one-way mouth-to-ear delay `Ta`,
//!   for which we use the widely adopted piecewise approximation of Cole &
//!   Rosenbluth (ACM CCR 2001): `Id = 0.024·Ta + 0.11·(Ta − 177.3)·H(Ta −
//!   177.3)`;
//! * `Ie,eff = Ie + (95 − Ie) · Ppl/(Ppl + Bpl)` is the effective
//!   equipment impairment under random packet loss `Ppl` (in percent);
//! * `A` is the advantage factor (0 for wire-bound telephony).
//!
//! `R` maps to MOS with the standard G.107 Annex B cubic.

use crate::codec::Codec;

/// Default `R₀ − Is` under G.107 default parameters.
pub const DEFAULT_BASE_R: f64 = 93.2;

/// An E-model evaluator for a fixed codec and advantage factor.
///
/// ```
/// use asap_voip::{emodel::EModel, Codec};
/// let m = EModel::new(Codec::G711Plc);
/// // Near-zero delay, zero loss: R close to the 93.2 ceiling.
/// assert!((m.rating(0.0, 0.0) - 93.2).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EModel {
    codec: Codec,
    base_r: f64,
    advantage: f64,
}

impl EModel {
    /// Creates an evaluator with G.107 default base rating and no
    /// advantage factor.
    pub fn new(codec: Codec) -> Self {
        EModel {
            codec,
            base_r: DEFAULT_BASE_R,
            advantage: 0.0,
        }
    }

    /// Overrides the base rating `R₀ − Is` (rarely needed).
    pub fn with_base_r(mut self, base_r: f64) -> Self {
        self.base_r = base_r;
        self
    }

    /// Sets the advantage factor `A` (e.g. 10 for mobile access).
    pub fn with_advantage(mut self, advantage: f64) -> Self {
        self.advantage = advantage;
        self
    }

    /// The codec this evaluator is configured for.
    pub fn codec(&self) -> Codec {
        self.codec
    }

    /// Delay impairment `Id` for a one-way mouth-to-ear delay in
    /// milliseconds (Cole–Rosenbluth approximation).
    pub fn delay_impairment(one_way_ms: f64) -> f64 {
        let d = one_way_ms.max(0.0);
        let mut id = 0.024 * d;
        if d > 177.3 {
            id += 0.11 * (d - 177.3);
        }
        id
    }

    /// Effective equipment impairment `Ie,eff` for a packet loss
    /// probability `loss` in [0, 1].
    pub fn loss_impairment(&self, loss: f64) -> f64 {
        let ppl = (loss.clamp(0.0, 1.0)) * 100.0;
        let ie = self.codec.ie();
        ie + (95.0 - ie) * ppl / (ppl + self.codec.bpl())
    }

    /// Transmission rating `R` for a one-way delay (ms) and a packet loss
    /// probability in [0, 1]. Clamped to [0, 100].
    pub fn rating(&self, one_way_ms: f64, loss: f64) -> f64 {
        let r = self.base_r - Self::delay_impairment(one_way_ms) - self.loss_impairment(loss)
            + self.advantage;
        r.clamp(0.0, 100.0)
    }

    /// MOS for a one-way delay (ms) and loss probability, via
    /// [`r_to_mos`].
    pub fn mos(&self, one_way_ms: f64, loss: f64) -> f64 {
        r_to_mos(self.rating(one_way_ms, loss))
    }

    /// Convenience: MOS from a round-trip time, assuming symmetric paths
    /// (one-way delay = RTT / 2), as the paper does when scoring relay
    /// paths by their RTT.
    pub fn mos_from_rtt(&self, rtt_ms: f64, loss: f64) -> f64 {
        self.mos(rtt_ms / 2.0, loss)
    }
}

/// Maps a transmission rating `R ∈ [0, 100]` to MOS with the G.107 Annex B
/// cubic: `MOS = 1 + 0.035·R + 7·10⁻⁶·R·(R − 60)·(100 − R)`, clamped to
/// [1, 4.5].
pub fn r_to_mos(r: f64) -> f64 {
    let r = r.clamp(0.0, 100.0);
    let mos = 1.0 + 0.035 * r + 7.0e-6 * r * (r - 60.0) * (100.0 - r);
    mos.clamp(1.0, 4.5)
}

/// The MOS below which "listeners' dissatisfaction" begins (paper §2,
/// following P.800 usage): 3.6, corresponding to R ≈ 70.
pub const SATISFACTION_MOS: f64 = 3.6;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r_to_mos_anchor_points() {
        // G.107 Annex B anchors: R=0 → MOS 1, R=100 → MOS ≈ 4.5,
        // R=70 → MOS ≈ 3.6 ("some users dissatisfied" boundary).
        assert_eq!(r_to_mos(0.0), 1.0);
        assert!((r_to_mos(100.0) - 4.5).abs() < 0.01);
        assert!((r_to_mos(70.0) - 3.6).abs() < 0.02);
        assert!((r_to_mos(50.0) - 2.58).abs() < 0.02);
    }

    #[test]
    fn r_to_mos_is_monotone() {
        let mut last = 0.0;
        for i in 0..=100 {
            let mos = r_to_mos(i as f64);
            assert!(mos >= last, "MOS not monotone at R={i}");
            last = mos;
        }
    }

    #[test]
    fn delay_impairment_kinks_at_177ms() {
        assert_eq!(EModel::delay_impairment(0.0), 0.0);
        let below = EModel::delay_impairment(177.0);
        assert!((below - 0.024 * 177.0).abs() < 1e-9);
        let above = EModel::delay_impairment(277.3);
        assert!((above - (0.024 * 277.3 + 0.11 * 100.0)).abs() < 1e-9);
    }

    #[test]
    fn negative_delay_treated_as_zero() {
        assert_eq!(EModel::delay_impairment(-5.0), 0.0);
    }

    #[test]
    fn loss_impairment_zero_loss_is_ie() {
        let m = EModel::new(Codec::G729aVad);
        assert!((m.loss_impairment(0.0) - 11.0).abs() < 1e-9);
    }

    #[test]
    fn loss_impairment_saturates_at_95() {
        let m = EModel::new(Codec::G711);
        assert!(m.loss_impairment(1.0) < 95.0);
        assert!(m.loss_impairment(1.0) > 90.0);
        // Out-of-range input is clamped, not extrapolated.
        assert_eq!(m.loss_impairment(2.0), m.loss_impairment(1.0));
    }

    #[test]
    fn mos_decreases_with_delay_and_loss() {
        let m = EModel::new(Codec::G729aVad);
        assert!(m.mos(50.0, 0.005) > m.mos(250.0, 0.005));
        assert!(m.mos(50.0, 0.005) > m.mos(50.0, 0.05));
    }

    #[test]
    fn g711_without_plc_drops_roughly_one_mos_per_percent_loss() {
        // Paper §2 (citing Markopoulou et al. with Nortel data): for codecs
        // without loss concealment, MOS drops by roughly one unit per 1% of
        // packet loss. Our G.711 Bpl = 4.3 reproduces that slope for the
        // first few percent.
        let m = EModel::new(Codec::G711);
        let drop_1pct = m.mos(10.0, 0.0) - m.mos(10.0, 0.01);
        assert!(
            (0.5..=1.5).contains(&drop_1pct),
            "1% loss drop = {drop_1pct}"
        );
        let drop_2pct = m.mos(10.0, 0.0) - m.mos(10.0, 0.02);
        assert!(drop_2pct > drop_1pct);
    }

    #[test]
    fn paper_operating_point_g729a_vad() {
        // §7.2: G.729A+VAD, 0.5% loss. A path with RTT ≤ 115 ms (ASAP's
        // worst shortest-RTT) must score above 3.85; the paper reports all
        // ASAP/OPT sessions above 3.85.
        let m = EModel::new(Codec::G729aVad);
        assert!(
            m.mos_from_rtt(115.0, 0.005) > 3.85,
            "mos = {}",
            m.mos_from_rtt(115.0, 0.005)
        );
        // And a 300 ms-RTT path still satisfies (> 3.6)…
        assert!(m.mos_from_rtt(300.0, 0.005) > SATISFACTION_MOS);
        // …while a 1 s-RTT path is clearly unsatisfactory (< 2.9 per the
        // paper's baseline tail).
        assert!(m.mos_from_rtt(1000.0, 0.005) < 2.9);
    }

    #[test]
    fn advantage_factor_raises_rating() {
        let plain = EModel::new(Codec::G729aVad);
        let mobile = EModel::new(Codec::G729aVad).with_advantage(10.0);
        assert!(mobile.rating(100.0, 0.01) > plain.rating(100.0, 0.01));
    }

    #[test]
    fn rating_clamped_to_valid_range() {
        let m = EModel::new(Codec::G7231);
        assert_eq!(m.rating(10_000.0, 1.0), 0.0);
        let boosted = EModel::new(Codec::G711).with_base_r(120.0);
        assert_eq!(boosted.rating(0.0, 0.0), 100.0);
    }
}
