//! The ITU-T G.114 one-way delay budget.
//!
//! G.114 recommends 150 ms as the upper limit of one-way mouth-to-ear
//! delay for most interactive applications; the ASAP paper derives from it
//! the 300 ms RTT threshold that defines a *quality path*. The mouth-to-ear
//! delay is not just network propagation: the codec, packetization, and
//! the playout (jitter) buffer all consume part of the budget, so the
//! network's share is smaller — [`DelayBudget::network_budget_ms`]
//! computes it.

use crate::codec::Codec;

/// G.114 upper limit of one-way mouth-to-ear delay for interactive
/// speech, in milliseconds.
pub const ONE_WAY_LIMIT_MS: f64 = 150.0;

/// The RTT threshold for a *quality path* derived from the G.114 one-way
/// limit (paper §6.2: "latT can be set close to 300 ms, since the one-way
/// delay upper limit of a path is 150 ms").
pub const RTT_LIMIT_MS: f64 = 2.0 * ONE_WAY_LIMIT_MS;

/// Breakdown of the one-way mouth-to-ear delay budget for a codec
/// configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayBudget {
    codec: Codec,
    frames_per_packet: u32,
    playout_ms: f64,
}

impl DelayBudget {
    /// A budget for `codec` packing `frames_per_packet` codec frames per
    /// RTP packet with a playout buffer of `playout_ms`.
    ///
    /// # Panics
    ///
    /// Panics if `frames_per_packet` is zero.
    pub fn new(codec: Codec, frames_per_packet: u32, playout_ms: f64) -> Self {
        assert!(frames_per_packet > 0, "at least one codec frame per packet");
        DelayBudget {
            codec,
            frames_per_packet,
            playout_ms: playout_ms.max(0.0),
        }
    }

    /// A typical configuration: two frames per packet, 40 ms playout
    /// buffer.
    pub fn typical(codec: Codec) -> Self {
        DelayBudget::new(codec, 2, 40.0)
    }

    /// Packetization delay: frames per packet × frame duration.
    pub fn packetization_ms(&self) -> f64 {
        self.frames_per_packet as f64 * self.codec.frame_ms()
    }

    /// Total end-system delay (codec processing + packetization + playout).
    pub fn end_system_ms(&self) -> f64 {
        self.codec.processing_ms() + self.packetization_ms() + self.playout_ms
    }

    /// The one-way *network* delay budget left inside the G.114 limit
    /// (zero when the end systems alone exceed it).
    pub fn network_budget_ms(&self) -> f64 {
        (ONE_WAY_LIMIT_MS - self.end_system_ms()).max(0.0)
    }

    /// Whether a path with the given one-way network delay fits the G.114
    /// budget under this configuration.
    pub fn fits(&self, network_one_way_ms: f64) -> bool {
        network_one_way_ms <= self.network_budget_ms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtt_limit_is_twice_one_way() {
        assert_eq!(RTT_LIMIT_MS, 300.0);
    }

    #[test]
    fn g729a_typical_budget() {
        let b = DelayBudget::typical(Codec::G729aVad);
        // 15 ms processing + 20 ms packetization + 40 ms playout = 75 ms.
        assert!((b.end_system_ms() - 75.0).abs() < 1e-9);
        assert!((b.network_budget_ms() - 75.0).abs() < 1e-9);
        assert!(b.fits(75.0));
        assert!(!b.fits(76.0));
    }

    #[test]
    fn heavy_codec_config_can_exhaust_the_budget() {
        // G.723.1 with 4 frames per packet and a large playout buffer.
        let b = DelayBudget::new(Codec::G7231, 4, 60.0);
        assert_eq!(b.network_budget_ms(), 0.0);
        assert!(!b.fits(1.0));
        assert!(b.fits(0.0));
    }

    #[test]
    #[should_panic(expected = "at least one codec frame")]
    fn zero_frames_per_packet_panics() {
        DelayBudget::new(Codec::G711, 0, 40.0);
    }

    #[test]
    fn negative_playout_clamped() {
        let b = DelayBudget::new(Codec::G711, 1, -5.0);
        assert!(b.end_system_ms() >= 0.0);
    }
}
