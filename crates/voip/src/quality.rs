//! Quality-path requirements and per-path quality reports.

use crate::codec::Codec;
use crate::emodel::{EModel, SATISFACTION_MOS};

/// The requirement a relay path must meet to count as a *quality path*
/// (paper §7.1: "VoIP user satisfaction demands RTT latency be below 300
/// ms and MOS be above 3.6").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityRequirement {
    /// Maximum acceptable round-trip time in milliseconds.
    pub max_rtt_ms: f64,
    /// Maximum acceptable packet loss probability in [0, 1].
    pub max_loss: f64,
    /// Minimum acceptable MOS.
    pub min_mos: f64,
}

impl Default for QualityRequirement {
    fn default() -> Self {
        QualityRequirement {
            max_rtt_ms: crate::budget::RTT_LIMIT_MS,
            max_loss: 0.05,
            min_mos: SATISFACTION_MOS,
        }
    }
}

impl QualityRequirement {
    /// Whether a path with the given RTT satisfies the latency part of the
    /// requirement (the predicate ASAP's `select-close-relay()` applies).
    pub fn rtt_ok(&self, rtt_ms: f64) -> bool {
        rtt_ms < self.max_rtt_ms
    }

    /// Evaluates a full path report against the requirement.
    pub fn satisfied_by(&self, q: &PathQuality) -> bool {
        self.rtt_ok(q.rtt_ms) && q.loss <= self.max_loss && q.mos >= self.min_mos
    }
}

/// The quality of one (direct or relay) path: its measured RTT and loss
/// and the E-model MOS they imply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathQuality {
    /// Round-trip time in milliseconds.
    pub rtt_ms: f64,
    /// Packet loss probability in [0, 1].
    pub loss: f64,
    /// Mean Opinion Score under the configured codec.
    pub mos: f64,
}

impl PathQuality {
    /// Scores a path from its RTT and loss under `codec` (one-way delay =
    /// RTT/2, as the paper assumes when scoring by RTT).
    pub fn score(rtt_ms: f64, loss: f64, codec: Codec) -> Self {
        PathQuality {
            rtt_ms,
            loss,
            mos: EModel::new(codec).mos_from_rtt(rtt_ms, loss),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_requirement_matches_paper() {
        let req = QualityRequirement::default();
        assert_eq!(req.max_rtt_ms, 300.0);
        assert_eq!(req.min_mos, 3.6);
    }

    #[test]
    fn strict_inequality_on_rtt() {
        let req = QualityRequirement::default();
        assert!(req.rtt_ok(299.9));
        assert!(!req.rtt_ok(300.0));
    }

    #[test]
    fn good_path_satisfies() {
        let req = QualityRequirement::default();
        let q = PathQuality::score(120.0, 0.005, Codec::G729aVad);
        assert!(req.satisfied_by(&q));
    }

    #[test]
    fn lossy_path_fails_even_with_low_rtt() {
        let req = QualityRequirement::default();
        let q = PathQuality::score(50.0, 0.2, Codec::G729aVad);
        assert!(!req.satisfied_by(&q));
    }

    #[test]
    fn slow_path_fails() {
        let req = QualityRequirement::default();
        let q = PathQuality::score(450.0, 0.005, Codec::G729aVad);
        assert!(!req.satisfied_by(&q));
    }
}
