//! Property-based tests for the E-model and quality predicates.

use asap_voip::budget::DelayBudget;
use asap_voip::emodel::{r_to_mos, EModel};
use asap_voip::{Codec, PathQuality, QualityRequirement};
use proptest::prelude::*;

fn arb_codec() -> impl Strategy<Value = Codec> {
    prop_oneof![
        Just(Codec::G711),
        Just(Codec::G711Plc),
        Just(Codec::G729),
        Just(Codec::G729aVad),
        Just(Codec::G7231),
    ]
}

proptest! {
    #[test]
    fn mos_is_always_in_range(codec in arb_codec(), delay in 0.0f64..5_000.0, loss in 0.0f64..1.0) {
        let mos = EModel::new(codec).mos(delay, loss);
        prop_assert!((1.0..=4.5).contains(&mos), "MOS {mos} out of range");
    }

    #[test]
    fn mos_monotone_in_delay(codec in arb_codec(), d1 in 0.0f64..2_000.0, d2 in 0.0f64..2_000.0, loss in 0.0f64..0.5) {
        let m = EModel::new(codec);
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(m.mos(lo, loss) >= m.mos(hi, loss) - 1e-12);
    }

    #[test]
    fn mos_monotone_in_loss(codec in arb_codec(), delay in 0.0f64..2_000.0, l1 in 0.0f64..1.0, l2 in 0.0f64..1.0) {
        let m = EModel::new(codec);
        let (lo, hi) = if l1 <= l2 { (l1, l2) } else { (l2, l1) };
        prop_assert!(m.mos(delay, lo) >= m.mos(delay, hi) - 1e-12);
    }

    #[test]
    fn r_to_mos_monotone_and_clamped(r1 in -50.0f64..150.0, r2 in -50.0f64..150.0) {
        let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        prop_assert!(r_to_mos(lo) <= r_to_mos(hi) + 1e-12);
        prop_assert!((1.0..=4.5).contains(&r_to_mos(r1)));
    }

    #[test]
    fn rtt_and_one_way_agree(codec in arb_codec(), rtt in 0.0f64..2_000.0, loss in 0.0f64..0.5) {
        let m = EModel::new(codec);
        prop_assert_eq!(m.mos_from_rtt(rtt, loss), m.mos(rtt / 2.0, loss));
    }

    #[test]
    fn better_codec_never_hurts_at_zero_loss(delay in 0.0f64..1_000.0) {
        // G.711 (Ie = 0) upper-bounds every other codec at zero loss.
        let g711 = EModel::new(Codec::G711).mos(delay, 0.0);
        for codec in [Codec::G729, Codec::G729aVad, Codec::G7231] {
            prop_assert!(g711 >= EModel::new(codec).mos(delay, 0.0) - 1e-12);
        }
    }

    #[test]
    fn quality_requirement_consistency(rtt in 0.0f64..2_000.0, loss in 0.0f64..0.2) {
        let req = QualityRequirement::default();
        let q = PathQuality::score(rtt, loss, Codec::G729aVad);
        if req.satisfied_by(&q) {
            prop_assert!(rtt < req.max_rtt_ms);
            prop_assert!(loss <= req.max_loss);
            prop_assert!(q.mos >= req.min_mos);
        }
        // A path that satisfies keeps satisfying when strictly improved.
        if req.satisfied_by(&q) && rtt > 1.0 {
            let better = PathQuality::score(rtt - 1.0, loss, Codec::G729aVad);
            prop_assert!(req.satisfied_by(&better));
        }
    }

    #[test]
    fn delay_budget_partition(frames in 1u32..6, playout in 0.0f64..120.0, codec in arb_codec()) {
        let b = DelayBudget::new(codec, frames, playout);
        let total = b.end_system_ms() + b.network_budget_ms();
        // Either the budget partitions exactly at 150 ms, or the end
        // system already exceeds it and the network share is zero.
        if b.network_budget_ms() > 0.0 {
            prop_assert!((total - 150.0).abs() < 1e-9);
        } else {
            prop_assert!(b.end_system_ms() >= 150.0 - 1e-9);
        }
        prop_assert!(b.fits(b.network_budget_ms()));
    }
}
