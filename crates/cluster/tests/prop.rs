//! Property-based tests for the prefix trie and clustering invariants.

use asap_cluster::{Asn, ClusterLevel, Clustering, Ip, Prefix, PrefixTable, PrefixTrie};
use proptest::prelude::*;

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(base, len)| Prefix::new(Ip(base), len))
}

/// Brute-force longest-prefix match over a plain list, the reference
/// implementation the trie must agree with.
fn brute_force_lpm(entries: &[(Prefix, u32)], ip: Ip) -> Option<(Prefix, u32)> {
    entries
        .iter()
        .filter(|(p, _)| p.contains(ip))
        .max_by_key(|(p, _)| p.len())
        .copied()
}

proptest! {
    #[test]
    fn trie_longest_match_agrees_with_brute_force(
        entries in proptest::collection::vec((arb_prefix(), any::<u32>()), 0..64),
        probes in proptest::collection::vec(any::<u32>(), 0..64),
    ) {
        // Deduplicate by prefix, keeping the last value, matching trie
        // replace semantics.
        let mut dedup: Vec<(Prefix, u32)> = Vec::new();
        for (p, v) in &entries {
            if let Some(slot) = dedup.iter_mut().find(|(q, _)| q == p) {
                slot.1 = *v;
            } else {
                dedup.push((*p, *v));
            }
        }
        let trie: PrefixTrie<u32> = dedup.iter().copied().collect();
        prop_assert_eq!(trie.len(), dedup.len());
        for raw in probes {
            let ip = Ip(raw);
            let got = trie.longest_match(ip).map(|(p, v)| (p, *v));
            let want = brute_force_lpm(&dedup, ip);
            prop_assert_eq!(got, want, "mismatch for {}", ip);
        }
    }

    #[test]
    fn trie_exact_get_matches_inserted(entries in proptest::collection::vec((arb_prefix(), any::<u32>()), 1..48)) {
        let mut trie = PrefixTrie::new();
        let mut last: std::collections::HashMap<Prefix, u32> = Default::default();
        for (p, v) in &entries {
            trie.insert(*p, *v);
            last.insert(*p, *v);
        }
        for (p, v) in &last {
            prop_assert_eq!(trie.get(*p), Some(v));
        }
    }

    #[test]
    fn prefix_masking_is_idempotent(base in any::<u32>(), len in 0u8..=32) {
        let p = Prefix::new(Ip(base), len);
        let q = Prefix::new(p.base(), len);
        prop_assert_eq!(p, q);
        prop_assert!(p.contains(p.base()));
    }

    #[test]
    fn clustering_partitions_matched_ips(
        raw_ips in proptest::collection::vec(any::<u32>(), 1..128),
        prefixes in proptest::collection::vec((arb_prefix(), 1u32..50), 1..16),
    ) {
        let table: PrefixTable = prefixes.iter().map(|(p, a)| (*p, Asn(*a))).collect();
        let ips: Vec<Ip> = raw_ips.iter().map(|&r| Ip(r)).collect();
        let clustering = Clustering::from_ips(&ips, &table, ClusterLevel::Prefix);

        // Every unique input IP is either clustered or unmatched, never both.
        let mut unique: Vec<Ip> = ips.clone();
        unique.sort();
        unique.dedup();
        let clustered: usize = clustering.clusters().iter().map(|c| c.len()).sum();
        prop_assert_eq!(clustered + clustering.unmatched().len(), unique.len());

        // Members of each cluster share the cluster's prefix, and the
        // delegate is a member.
        for c in clustering.clusters() {
            prop_assert!(!c.is_empty());
            for &m in c.members() {
                prop_assert!(c.prefix().contains(m));
                prop_assert_eq!(clustering.cluster_of(m), Some(c.id()));
            }
            prop_assert!(c.members().contains(&c.delegate()));
        }
    }

    #[test]
    fn as_level_never_has_more_clusters_than_prefix_level(
        raw_ips in proptest::collection::vec(any::<u32>(), 1..128),
        prefixes in proptest::collection::vec((arb_prefix(), 1u32..8), 1..16),
    ) {
        let table: PrefixTable = prefixes.iter().map(|(p, a)| (*p, Asn(*a))).collect();
        let ips: Vec<Ip> = raw_ips.iter().map(|&r| Ip(r)).collect();
        let by_prefix = Clustering::from_ips(&ips, &table, ClusterLevel::Prefix);
        let by_as = Clustering::from_ips(&ips, &table, ClusterLevel::As);
        prop_assert!(by_as.cluster_count() <= by_prefix.cluster_count());
        prop_assert_eq!(by_as.peer_count(), by_prefix.peer_count());
    }

    #[test]
    fn ip_display_parse_roundtrip(raw in any::<u32>()) {
        let ip = Ip(raw);
        let back: Ip = ip.to_string().parse().unwrap();
        prop_assert_eq!(ip, back);
    }

    #[test]
    fn prefix_display_parse_roundtrip(base in any::<u32>(), len in 0u8..=32) {
        let p = Prefix::new(Ip(base), len);
        let back: Prefix = p.to_string().parse().unwrap();
        prop_assert_eq!(p, back);
    }
}

proptest! {
    /// Whatever bytes a BGP feed throws at the dump parser, it answers
    /// with Ok or Err — it never panics — and a whole dump of such
    /// lines likewise builds or reports the offending line number.
    #[test]
    fn dump_parser_never_panics_on_garbage(
        byte_lines in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..40),
            0..20,
        ),
    ) {
        // Lossy UTF-8 keeps arbitrary bytes while staying &str-typed;
        // newlines are stripped so each fuzzed blob stays one line.
        let lines: Vec<String> = byte_lines
            .iter()
            .map(|bs| {
                String::from_utf8_lossy(bs)
                    .chars()
                    .filter(|c| *c != '\n' && *c != '\r')
                    .collect()
            })
            .collect();
        for line in &lines {
            let _ = asap_cluster::parse_dump_line(line);
        }
        let dump = lines.join("\n");
        if let Err(e) = PrefixTable::from_dump(&dump) {
            prop_assert!(e.line >= 1 && e.line <= lines.len());
        }
    }

    /// Well-formed dump lines always parse, and the parsed entry
    /// round-trips the prefix and the AS-path origin exactly.
    #[test]
    fn dump_parser_accepts_valid_lines(
        base in any::<u32>(),
        len in 0u8..=32,
        path in proptest::collection::vec(0u32..1_000_000, 1..6),
        spaces in 1usize..=3,
    ) {
        let prefix = Prefix::new(Ip(base), len);
        let path_text: Vec<String> = path.iter().map(u32::to_string).collect();
        let line = format!("{prefix}{}{}", " ".repeat(spaces), path_text.join(" "));
        let parsed = asap_cluster::parse_dump_line(&line).unwrap();
        prop_assert_eq!(parsed, Some((prefix, Asn(*path.last().unwrap()))));
    }
}
