//! The IP-prefix → origin-AS mapping table.

use std::fmt;

use crate::asn::Asn;
use crate::ip::{Ip, Prefix};
use crate::trie::PrefixTrie;

/// Error from parsing a BGP routing-table dump.
///
/// Carries the 1-based line number and the offending line so a bad feed
/// is diagnosable; malformed input must surface here, never as a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDumpError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// The offending line, truncated to 80 bytes for display.
    pub content: String,
    /// What was wrong with it.
    pub reason: &'static str,
}

impl fmt::Display for ParseDumpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bad routing-table line {}: {} ({:?})",
            self.line, self.reason, self.content
        )
    }
}

impl std::error::Error for ParseDumpError {}

fn dump_error(line: usize, content: &str, reason: &'static str) -> ParseDumpError {
    let mut content = content.to_owned();
    if content.len() > 80 {
        let mut cut = 80;
        while !content.is_char_boundary(cut) {
            cut -= 1;
        }
        content.truncate(cut);
    }
    ParseDumpError {
        line,
        content,
        reason,
    }
}

/// Parses one routing-table dump line into `(prefix, origin AS)`.
///
/// The accepted shape is `<prefix> <as-path…>` — an announced CIDR
/// prefix followed by a whitespace-separated AS path whose *last*
/// element is the originating AS (the convention of `show ip bgp`-style
/// dumps, which is where the paper's bootstrap nodes get the table).
/// AS numbers parse with or without an `AS` prefix. Blank lines and
/// `#`-comments yield `Ok(None)`.
///
/// Any malformed field — garbage prefix, empty AS path, non-numeric
/// origin — returns `Err`; this function never panics, whatever the
/// input bytes.
pub fn parse_dump_line(line: &str) -> Result<Option<(Prefix, Asn)>, ParseDumpError> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(None);
    }
    let mut fields = trimmed.split_whitespace();
    let prefix_field = fields.next().expect("non-blank line has a first field");
    let prefix: Prefix = prefix_field
        .parse()
        .map_err(|_| dump_error(1, line, "malformed CIDR prefix"))?;
    let origin_field = fields
        .last()
        .ok_or_else(|| dump_error(1, line, "missing AS path"))?;
    let origin: Asn = origin_field
        .parse()
        .map_err(|_| dump_error(1, line, "malformed origin AS"))?;
    Ok(Some((prefix, origin)))
}

/// An IP-prefix → origin-AS mapping table.
///
/// The ASAP bootstrap nodes build this table from BGP routing table entries
/// and updates: every announced prefix maps to the AS that originated the
/// announcement (the last AS on the AS path). The table answers two
/// questions the protocol needs:
///
/// * [`origin_as`](PrefixTable::origin_as) — which AS does an end host's IP
///   belong to (longest-prefix match)?
/// * [`matched_prefix`](PrefixTable::matched_prefix) — which prefix cluster
///   does an end host fall into?
///
/// ```
/// use asap_cluster::{Asn, PrefixTable};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut table = PrefixTable::new();
/// table.insert("10.0.0.0/8".parse()?, Asn(1));
/// table.insert("10.64.0.0/10".parse()?, Asn(2));
/// assert_eq!(table.origin_as("10.64.1.1".parse()?), Some(Asn(2)));
/// assert_eq!(table.origin_as("10.0.1.1".parse()?), Some(Asn(1)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct PrefixTable {
    trie: PrefixTrie<Asn>,
}

impl PrefixTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        PrefixTable {
            trie: PrefixTrie::new(),
        }
    }

    /// Inserts (or replaces) the origin AS of `prefix`, returning the
    /// previous origin if the prefix was already mapped.
    pub fn insert(&mut self, prefix: Prefix, origin: Asn) -> Option<Asn> {
        self.trie.insert(prefix, origin)
    }

    /// Removes the mapping for `prefix` (a BGP withdrawal), returning the
    /// previous origin if it was mapped.
    pub fn remove(&mut self, prefix: Prefix) -> Option<Asn> {
        self.trie.remove(prefix)
    }

    /// Number of mapped prefixes.
    pub fn len(&self) -> usize {
        self.trie.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.trie.is_empty()
    }

    /// The origin AS of the longest prefix matching `ip`, if any.
    pub fn origin_as(&self, ip: Ip) -> Option<Asn> {
        self.trie.longest_match(ip).map(|(_, asn)| *asn)
    }

    /// The longest matched prefix for `ip`, with its origin AS.
    pub fn matched_prefix(&self, ip: Ip) -> Option<(Prefix, Asn)> {
        self.trie.longest_match(ip).map(|(p, asn)| (p, *asn))
    }

    /// The origin AS mapped to exactly `prefix`, if present.
    pub fn origin_of_prefix(&self, prefix: Prefix) -> Option<Asn> {
        self.trie.get(prefix).copied()
    }

    /// Iterates over all `(prefix, origin AS)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, Asn)> + '_ {
        self.trie.iter().map(|(p, asn)| (p, *asn))
    }

    /// Builds a table from a whole routing-table dump.
    ///
    /// Each non-blank, non-comment line must parse per
    /// [`parse_dump_line`]; the first malformed line aborts with an
    /// error carrying its 1-based line number. Later announcements of
    /// an already-mapped prefix replace the earlier origin, matching
    /// BGP update semantics.
    pub fn from_dump(dump: &str) -> Result<PrefixTable, ParseDumpError> {
        let mut table = PrefixTable::new();
        for (i, line) in dump.lines().enumerate() {
            match parse_dump_line(line) {
                Ok(Some((prefix, origin))) => {
                    table.insert(prefix, origin);
                }
                Ok(None) => {}
                Err(e) => {
                    return Err(ParseDumpError { line: i + 1, ..e });
                }
            }
        }
        Ok(table)
    }
}

impl FromIterator<(Prefix, Asn)> for PrefixTable {
    fn from_iter<I: IntoIterator<Item = (Prefix, Asn)>>(iter: I) -> Self {
        PrefixTable {
            trie: iter.into_iter().collect(),
        }
    }
}

impl Extend<(Prefix, Asn)> for PrefixTable {
    fn extend<I: IntoIterator<Item = (Prefix, Asn)>>(&mut self, iter: I) {
        self.trie.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn longest_match_wins() {
        let table: PrefixTable = vec![(p("10.0.0.0/8"), Asn(1)), (p("10.1.0.0/16"), Asn(2))]
            .into_iter()
            .collect();
        assert_eq!(table.origin_as("10.1.0.1".parse().unwrap()), Some(Asn(2)));
        assert_eq!(table.origin_as("10.2.0.1".parse().unwrap()), Some(Asn(1)));
        assert_eq!(table.origin_as("11.0.0.1".parse().unwrap()), None);
    }

    #[test]
    fn an_as_can_originate_multiple_prefixes() {
        let table: PrefixTable = vec![(p("10.0.0.0/16"), Asn(7)), (p("20.0.0.0/16"), Asn(7))]
            .into_iter()
            .collect();
        assert_eq!(table.len(), 2);
        assert_eq!(table.origin_as("10.0.1.1".parse().unwrap()), Some(Asn(7)));
        assert_eq!(table.origin_as("20.0.1.1".parse().unwrap()), Some(Asn(7)));
    }

    #[test]
    fn reinsert_replaces_origin() {
        let mut table = PrefixTable::new();
        table.insert(p("10.0.0.0/8"), Asn(1));
        assert_eq!(table.insert(p("10.0.0.0/8"), Asn(9)), Some(Asn(1)));
        assert_eq!(table.origin_as("10.0.0.1".parse().unwrap()), Some(Asn(9)));
    }

    #[test]
    fn matched_prefix_returns_the_prefix() {
        let mut table = PrefixTable::new();
        table.insert(p("10.1.0.0/16"), Asn(3));
        let (prefix, asn) = table.matched_prefix("10.1.2.3".parse().unwrap()).unwrap();
        assert_eq!(prefix, p("10.1.0.0/16"));
        assert_eq!(asn, Asn(3));
    }

    #[test]
    fn dump_lines_parse_paths_comments_and_blanks() {
        assert_eq!(
            parse_dump_line("10.0.0.0/8 7018 3356 65001").unwrap(),
            Some((p("10.0.0.0/8"), Asn(65001)))
        );
        assert_eq!(
            parse_dump_line("  192.168.0.0/16\tAS7018  ").unwrap(),
            Some((p("192.168.0.0/16"), Asn(7018)))
        );
        assert_eq!(parse_dump_line("").unwrap(), None);
        assert_eq!(parse_dump_line("   ").unwrap(), None);
        assert_eq!(parse_dump_line("# a comment").unwrap(), None);
    }

    #[test]
    fn malformed_dump_lines_return_err_not_panic() {
        for bad in [
            "10.0.0.0/8",          // no AS path
            "10.0.0.0 7018",       // no prefix length
            "10.0.0.0/33 7018",    // length out of range
            "300.0.0.0/8 7018",    // octet out of range
            "10.0.0.0/8 ASx",      // non-numeric origin
            "10.0.0.0/8 1 2 woof", // garbage origin at path end
            "not a line at all",
        ] {
            assert!(parse_dump_line(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn from_dump_builds_a_table_and_reports_the_bad_line() {
        let table = PrefixTable::from_dump(
            "# origin table\n10.0.0.0/8 7018 1\n\n10.64.0.0/10 AS2\n10.0.0.0/8 9\n",
        )
        .unwrap();
        assert_eq!(table.len(), 2);
        // The later announcement replaced the /8's origin.
        assert_eq!(table.origin_of_prefix(p("10.0.0.0/8")), Some(Asn(9)));
        assert_eq!(table.origin_of_prefix(p("10.64.0.0/10")), Some(Asn(2)));

        let err = PrefixTable::from_dump("10.0.0.0/8 1\nbogus\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("bogus"));
    }
}
