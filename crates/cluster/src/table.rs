//! The IP-prefix → origin-AS mapping table.

use crate::asn::Asn;
use crate::ip::{Ip, Prefix};
use crate::trie::PrefixTrie;

/// An IP-prefix → origin-AS mapping table.
///
/// The ASAP bootstrap nodes build this table from BGP routing table entries
/// and updates: every announced prefix maps to the AS that originated the
/// announcement (the last AS on the AS path). The table answers two
/// questions the protocol needs:
///
/// * [`origin_as`](PrefixTable::origin_as) — which AS does an end host's IP
///   belong to (longest-prefix match)?
/// * [`matched_prefix`](PrefixTable::matched_prefix) — which prefix cluster
///   does an end host fall into?
///
/// ```
/// use asap_cluster::{Asn, PrefixTable};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut table = PrefixTable::new();
/// table.insert("10.0.0.0/8".parse()?, Asn(1));
/// table.insert("10.64.0.0/10".parse()?, Asn(2));
/// assert_eq!(table.origin_as("10.64.1.1".parse()?), Some(Asn(2)));
/// assert_eq!(table.origin_as("10.0.1.1".parse()?), Some(Asn(1)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct PrefixTable {
    trie: PrefixTrie<Asn>,
}

impl PrefixTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        PrefixTable {
            trie: PrefixTrie::new(),
        }
    }

    /// Inserts (or replaces) the origin AS of `prefix`, returning the
    /// previous origin if the prefix was already mapped.
    pub fn insert(&mut self, prefix: Prefix, origin: Asn) -> Option<Asn> {
        self.trie.insert(prefix, origin)
    }

    /// Removes the mapping for `prefix` (a BGP withdrawal), returning the
    /// previous origin if it was mapped.
    pub fn remove(&mut self, prefix: Prefix) -> Option<Asn> {
        self.trie.remove(prefix)
    }

    /// Number of mapped prefixes.
    pub fn len(&self) -> usize {
        self.trie.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.trie.is_empty()
    }

    /// The origin AS of the longest prefix matching `ip`, if any.
    pub fn origin_as(&self, ip: Ip) -> Option<Asn> {
        self.trie.longest_match(ip).map(|(_, asn)| *asn)
    }

    /// The longest matched prefix for `ip`, with its origin AS.
    pub fn matched_prefix(&self, ip: Ip) -> Option<(Prefix, Asn)> {
        self.trie.longest_match(ip).map(|(p, asn)| (p, *asn))
    }

    /// The origin AS mapped to exactly `prefix`, if present.
    pub fn origin_of_prefix(&self, prefix: Prefix) -> Option<Asn> {
        self.trie.get(prefix).copied()
    }

    /// Iterates over all `(prefix, origin AS)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, Asn)> + '_ {
        self.trie.iter().map(|(p, asn)| (p, *asn))
    }
}

impl FromIterator<(Prefix, Asn)> for PrefixTable {
    fn from_iter<I: IntoIterator<Item = (Prefix, Asn)>>(iter: I) -> Self {
        PrefixTable {
            trie: iter.into_iter().collect(),
        }
    }
}

impl Extend<(Prefix, Asn)> for PrefixTable {
    fn extend<I: IntoIterator<Item = (Prefix, Asn)>>(&mut self, iter: I) {
        self.trie.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn longest_match_wins() {
        let table: PrefixTable = vec![(p("10.0.0.0/8"), Asn(1)), (p("10.1.0.0/16"), Asn(2))]
            .into_iter()
            .collect();
        assert_eq!(table.origin_as("10.1.0.1".parse().unwrap()), Some(Asn(2)));
        assert_eq!(table.origin_as("10.2.0.1".parse().unwrap()), Some(Asn(1)));
        assert_eq!(table.origin_as("11.0.0.1".parse().unwrap()), None);
    }

    #[test]
    fn an_as_can_originate_multiple_prefixes() {
        let table: PrefixTable = vec![(p("10.0.0.0/16"), Asn(7)), (p("20.0.0.0/16"), Asn(7))]
            .into_iter()
            .collect();
        assert_eq!(table.len(), 2);
        assert_eq!(table.origin_as("10.0.1.1".parse().unwrap()), Some(Asn(7)));
        assert_eq!(table.origin_as("20.0.1.1".parse().unwrap()), Some(Asn(7)));
    }

    #[test]
    fn reinsert_replaces_origin() {
        let mut table = PrefixTable::new();
        table.insert(p("10.0.0.0/8"), Asn(1));
        assert_eq!(table.insert(p("10.0.0.0/8"), Asn(9)), Some(Asn(1)));
        assert_eq!(table.origin_as("10.0.0.1".parse().unwrap()), Some(Asn(9)));
    }

    #[test]
    fn matched_prefix_returns_the_prefix() {
        let mut table = PrefixTable::new();
        table.insert(p("10.1.0.0/16"), Asn(3));
        let (prefix, asn) = table.matched_prefix("10.1.2.3".parse().unwrap()).unwrap();
        assert_eq!(prefix, p("10.1.0.0/16"));
        assert_eq!(asn, Asn(3));
    }
}
