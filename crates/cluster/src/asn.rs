//! Autonomous-system numbers.

use std::fmt;
use std::str::FromStr;

/// An Autonomous System number, e.g. `AS7018`.
///
/// The Internet consists of ASes, each administrated by a single
/// organization that enforces its own routing policy; inter-AS routing is
/// governed by BGP. ASAP's relay selection reasons at AS granularity, so
/// this identifier appears throughout the workspace.
///
/// ```
/// use asap_cluster::Asn;
/// let asn: Asn = "AS7018".parse()?;
/// assert_eq!(asn, Asn(7018));
/// assert_eq!(asn.to_string(), "AS7018");
/// # Ok::<(), asap_cluster::ParseAsnError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Asn(pub u32);

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl From<u32> for Asn {
    fn from(raw: u32) -> Self {
        Asn(raw)
    }
}

/// Error returned when parsing an [`Asn`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAsnError {
    input: String,
}

impl fmt::Display for ParseAsnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid AS number syntax: {:?}", self.input)
    }
}

impl std::error::Error for ParseAsnError {}

impl FromStr for Asn {
    type Err = ParseAsnError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseAsnError {
            input: s.to_owned(),
        };
        let digits = s
            .strip_prefix("AS")
            .or_else(|| s.strip_prefix("as"))
            .unwrap_or(s);
        digits.parse::<u32>().map(Asn).map_err(|_| err())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_with_and_without_prefix() {
        assert_eq!("AS65000".parse::<Asn>().unwrap(), Asn(65000));
        assert_eq!("as12".parse::<Asn>().unwrap(), Asn(12));
        assert_eq!("7018".parse::<Asn>().unwrap(), Asn(7018));
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in ["", "AS", "ASx", "AS-1", "4294967296"] {
            assert!(s.parse::<Asn>().is_err(), "{s} should not parse");
        }
    }

    #[test]
    fn display() {
        assert_eq!(Asn(7018).to_string(), "AS7018");
    }
}
