//! IPv4 addresses and CIDR prefixes.

use std::fmt;
use std::str::FromStr;

/// A compact IPv4 address.
///
/// Stored as a host-order `u32` so that prefix arithmetic (masking, bit
/// extraction) is cheap. Formats and parses in the usual dotted-quad
/// notation.
///
/// ```
/// use asap_cluster::Ip;
/// let ip: Ip = "192.168.1.7".parse()?;
/// assert_eq!(ip.octets(), [192, 168, 1, 7]);
/// assert_eq!(ip.to_string(), "192.168.1.7");
/// # Ok::<(), asap_cluster::ParseIpError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ip(pub u32);

impl Ip {
    /// Builds an address from four dotted-quad octets.
    pub fn from_octets(o: [u8; 4]) -> Self {
        Ip(u32::from_be_bytes(o))
    }

    /// Returns the four dotted-quad octets.
    pub fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// Returns bit `i` of the address, counting from the most significant
    /// bit (bit 0 is the top bit of the first octet).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 32`.
    pub fn bit(self, i: u8) -> u8 {
        assert!(i < 32, "bit index {i} out of range for an IPv4 address");
        ((self.0 >> (31 - i)) & 1) as u8
    }
}

impl fmt::Display for Ip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

impl From<[u8; 4]> for Ip {
    fn from(o: [u8; 4]) -> Self {
        Ip::from_octets(o)
    }
}

impl From<u32> for Ip {
    fn from(raw: u32) -> Self {
        Ip(raw)
    }
}

/// Error returned when parsing an [`Ip`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseIpError {
    input: String,
}

impl fmt::Display for ParseIpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid IPv4 address syntax: {:?}", self.input)
    }
}

impl std::error::Error for ParseIpError {}

impl FromStr for Ip {
    type Err = ParseIpError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseIpError {
            input: s.to_owned(),
        };
        let mut octets = [0u8; 4];
        let mut parts = s.split('.');
        for slot in &mut octets {
            let part = parts.next().ok_or_else(err)?;
            if part.is_empty() || part.len() > 3 || (part.len() > 1 && part.starts_with('0')) {
                return Err(err());
            }
            *slot = part.parse().map_err(|_| err())?;
        }
        if parts.next().is_some() {
            return Err(err());
        }
        Ok(Ip::from_octets(octets))
    }
}

/// An IPv4 CIDR prefix such as `10.1.0.0/16`.
///
/// Invariant: all host bits below the prefix length are zero; constructors
/// enforce this by masking.
///
/// ```
/// use asap_cluster::{Ip, Prefix};
/// let p: Prefix = "10.1.0.0/16".parse()?;
/// assert!(p.contains("10.1.200.3".parse::<Ip>().unwrap()));
/// assert!(!p.contains("10.2.0.1".parse::<Ip>().unwrap()));
/// # Ok::<(), asap_cluster::ParsePrefixError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Prefix {
    base: Ip,
    len: u8,
}

impl Prefix {
    /// Creates a prefix from a base address and a length in bits, masking
    /// away any host bits.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32`.
    pub fn new(base: Ip, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} exceeds 32 bits");
        Prefix {
            base: Ip(base.0 & Self::mask(len)),
            len,
        }
    }

    /// The network mask for a prefix of length `len`.
    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// The (masked) base address of the prefix.
    pub fn base(self) -> Ip {
        self.base
    }

    /// The prefix length in bits.
    pub fn len(self) -> u8 {
        self.len
    }

    /// Whether this is the zero-length default prefix `0.0.0.0/0`.
    pub fn is_empty(self) -> bool {
        self.len == 0
    }

    /// Tests whether `ip` falls inside this prefix.
    pub fn contains(self, ip: Ip) -> bool {
        (ip.0 & Self::mask(self.len)) == self.base.0
    }

    /// Tests whether `other` is fully contained in (or equal to) `self`.
    pub fn covers(self, other: Prefix) -> bool {
        self.len <= other.len && self.contains(other.base)
    }

    /// The number of addresses in the prefix (2^(32−len)), saturating for
    /// `/0`.
    pub fn size(self) -> u64 {
        1u64 << (32 - self.len as u64)
    }

    /// The `i`-th address inside the prefix, wrapping within the prefix
    /// size. Useful for deterministically enumerating host addresses.
    pub fn nth(self, i: u64) -> Ip {
        Ip(self.base.0.wrapping_add((i % self.size()) as u32))
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.base, self.len)
    }
}

/// Error returned when parsing a [`Prefix`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePrefixError {
    input: String,
}

impl fmt::Display for ParsePrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid CIDR prefix syntax: {:?}", self.input)
    }
}

impl std::error::Error for ParsePrefixError {}

impl FromStr for Prefix {
    type Err = ParsePrefixError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParsePrefixError {
            input: s.to_owned(),
        };
        let (addr, len) = s.split_once('/').ok_or_else(err)?;
        let base: Ip = addr.parse().map_err(|_| err())?;
        let len: u8 = len.parse().map_err(|_| err())?;
        if len > 32 {
            return Err(err());
        }
        Ok(Prefix::new(base, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ip_roundtrip() {
        for s in ["0.0.0.0", "255.255.255.255", "10.1.2.3", "192.168.0.1"] {
            let ip: Ip = s.parse().unwrap();
            assert_eq!(ip.to_string(), s);
        }
    }

    #[test]
    fn ip_rejects_garbage() {
        for s in [
            "",
            "1.2.3",
            "1.2.3.4.5",
            "256.0.0.1",
            "a.b.c.d",
            "01.2.3.4",
            "1..2.3",
        ] {
            assert!(s.parse::<Ip>().is_err(), "{s} should not parse");
        }
    }

    #[test]
    fn ip_bits() {
        let ip: Ip = "128.0.0.1".parse().unwrap();
        assert_eq!(ip.bit(0), 1);
        assert_eq!(ip.bit(1), 0);
        assert_eq!(ip.bit(31), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn ip_bit_out_of_range_panics() {
        Ip(0).bit(32);
    }

    #[test]
    fn prefix_masks_host_bits() {
        let p = Prefix::new("10.1.2.3".parse().unwrap(), 16);
        assert_eq!(p.to_string(), "10.1.0.0/16");
    }

    #[test]
    fn prefix_contains() {
        let p: Prefix = "10.1.0.0/16".parse().unwrap();
        assert!(p.contains("10.1.0.0".parse().unwrap()));
        assert!(p.contains("10.1.255.255".parse().unwrap()));
        assert!(!p.contains("10.2.0.0".parse().unwrap()));
    }

    #[test]
    fn default_prefix_contains_everything() {
        let p: Prefix = "0.0.0.0/0".parse().unwrap();
        assert!(p.contains(Ip(0)));
        assert!(p.contains(Ip(u32::MAX)));
        assert_eq!(p.size(), 1 << 32);
    }

    #[test]
    fn prefix_covers() {
        let p16: Prefix = "10.1.0.0/16".parse().unwrap();
        let p24: Prefix = "10.1.2.0/24".parse().unwrap();
        assert!(p16.covers(p24));
        assert!(!p24.covers(p16));
        assert!(p16.covers(p16));
    }

    #[test]
    fn prefix_nth_stays_inside() {
        let p: Prefix = "10.1.2.0/24".parse().unwrap();
        for i in [0u64, 1, 255, 256, 1000] {
            assert!(p.contains(p.nth(i)), "nth({i}) escaped the prefix");
        }
    }

    #[test]
    fn prefix_rejects_garbage() {
        for s in ["10.0.0.0", "10.0.0.0/33", "10.0.0.0/", "/8", "10.0.0.0/x"] {
            assert!(s.parse::<Prefix>().is_err(), "{s} should not parse");
        }
    }
}
