//! IP-prefix clustering substrate for the ASAP VoIP peer-relay system.
//!
//! The ASAP paper (Ren, Guo, Zhang — ICDCS 2006) groups peer IP addresses
//! into *clusters*: all hosts sharing the same longest-matched BGP prefix
//! (or, coarser, the same origin AS). Hosts inside a cluster are assumed to
//! be topologically close to each other (Krishnamurthy & Wang, SIGCOMM'00),
//! so the direct IP routing latency between two clusters can be estimated by
//! measuring any pair of member hosts — in practice one *delegate* host per
//! cluster.
//!
//! This crate provides the addressing and clustering machinery that the rest
//! of the workspace builds on:
//!
//! * [`Ip`] and [`Prefix`] — compact IPv4 address / CIDR prefix types.
//! * [`Asn`] — autonomous-system numbers.
//! * [`PrefixTrie`] — a binary trie supporting longest-prefix match, the
//!   same lookup BGP routers perform.
//! * [`PrefixTable`] — an IP-prefix → origin-AS mapping table, as extracted
//!   from BGP routing table dumps.
//! * [`Clustering`] — groups a peer population into prefix-level or AS-level
//!   clusters and selects per-cluster delegates.
//!
//! # Example
//!
//! ```
//! use asap_cluster::{Ip, Prefix, Asn, PrefixTable, Clustering, ClusterLevel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut table = PrefixTable::new();
//! table.insert("10.1.0.0/16".parse()?, Asn(65001));
//! table.insert("10.1.2.0/24".parse()?, Asn(65002));
//!
//! // Longest-prefix match: 10.1.2.3 falls in the /24, not the /16.
//! assert_eq!(table.origin_as("10.1.2.3".parse()?), Some(Asn(65002)));
//!
//! let ips: Vec<Ip> = vec!["10.1.2.3".parse()?, "10.1.2.9".parse()?, "10.1.5.1".parse()?];
//! let clustering = Clustering::from_ips(&ips, &table, ClusterLevel::Prefix);
//! assert_eq!(clustering.cluster_count(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asn;
mod cluster;
mod ip;
mod table;
mod trie;

pub use asn::{Asn, ParseAsnError};
pub use cluster::{Cluster, ClusterId, ClusterLevel, Clustering};
pub use ip::{Ip, ParseIpError, ParsePrefixError, Prefix};
pub use table::{parse_dump_line, ParseDumpError, PrefixTable};
pub use trie::PrefixTrie;
