//! A binary trie keyed by IPv4 prefixes, supporting longest-prefix match.

use crate::ip::{Ip, Prefix};

/// Arena index of a trie node. `u32::MAX` is reserved as "absent".
type NodeIdx = u32;

const NIL: NodeIdx = u32::MAX;

#[derive(Debug, Clone)]
struct Node<V> {
    children: [NodeIdx; 2],
    /// Value stored at this node, if a prefix terminates here.
    value: Option<(Prefix, V)>,
}

impl<V> Node<V> {
    fn empty() -> Self {
        Node {
            children: [NIL, NIL],
            value: None,
        }
    }
}

/// A binary (radix-1) trie over IPv4 prefixes.
///
/// Supports exact insert/lookup by [`Prefix`] and *longest-prefix match* by
/// [`Ip`] — the lookup a BGP router performs when forwarding a packet, and
/// the one the ASAP paper uses to group peer IPs into clusters.
///
/// Nodes are kept in a flat arena (`Vec`) so the structure is compact and
/// cache-friendly; no per-node allocation beyond the arena.
///
/// ```
/// use asap_cluster::{Prefix, PrefixTrie};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut trie = PrefixTrie::new();
/// trie.insert("10.0.0.0/8".parse()?, "coarse");
/// trie.insert("10.1.0.0/16".parse()?, "fine");
///
/// let (prefix, value) = trie.longest_match("10.1.2.3".parse()?).unwrap();
/// assert_eq!(prefix, "10.1.0.0/16".parse::<Prefix>()?);
/// assert_eq!(*value, "fine");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PrefixTrie<V> {
    nodes: Vec<Node<V>>,
    len: usize,
}

impl<V> Default for PrefixTrie<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> PrefixTrie<V> {
    /// Creates an empty trie.
    pub fn new() -> Self {
        PrefixTrie {
            nodes: vec![Node::empty()],
            len: 0,
        }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trie stores no prefixes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `prefix` with `value`, returning the previous value if the
    /// prefix was already present.
    pub fn insert(&mut self, prefix: Prefix, value: V) -> Option<V> {
        let mut idx: NodeIdx = 0;
        for depth in 0..prefix.len() {
            let bit = prefix.base().bit(depth) as usize;
            if self.nodes[idx as usize].children[bit] == NIL {
                let new_idx = self.nodes.len() as NodeIdx;
                self.nodes.push(Node::empty());
                self.nodes[idx as usize].children[bit] = new_idx;
            }
            idx = self.nodes[idx as usize].children[bit];
        }
        let slot = &mut self.nodes[idx as usize].value;
        let old = slot.take().map(|(_, v)| v);
        *slot = Some((prefix, value));
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Looks up the value stored for exactly `prefix`.
    pub fn get(&self, prefix: Prefix) -> Option<&V> {
        let mut idx: NodeIdx = 0;
        for depth in 0..prefix.len() {
            let bit = prefix.base().bit(depth) as usize;
            idx = self.nodes[idx as usize].children[bit];
            if idx == NIL {
                return None;
            }
        }
        self.nodes[idx as usize].value.as_ref().map(|(_, v)| v)
    }

    /// Removes `prefix`, returning its value if it was present. Interior
    /// nodes are kept (the arena never shrinks), which is fine for the
    /// BGP-update workload where withdrawn prefixes are usually
    /// re-announced shortly after.
    pub fn remove(&mut self, prefix: Prefix) -> Option<V> {
        let mut idx: NodeIdx = 0;
        for depth in 0..prefix.len() {
            let bit = prefix.base().bit(depth) as usize;
            idx = self.nodes[idx as usize].children[bit];
            if idx == NIL {
                return None;
            }
        }
        let old = self.nodes[idx as usize].value.take().map(|(_, v)| v);
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Returns the longest stored prefix containing `ip`, with its value.
    pub fn longest_match(&self, ip: Ip) -> Option<(Prefix, &V)> {
        let mut idx: NodeIdx = 0;
        let mut best: Option<(Prefix, &V)> = None;
        for depth in 0..=32u8 {
            if let Some((p, v)) = &self.nodes[idx as usize].value {
                best = Some((*p, v));
            }
            if depth == 32 {
                break;
            }
            let bit = ip.bit(depth) as usize;
            idx = self.nodes[idx as usize].children[bit];
            if idx == NIL {
                break;
            }
        }
        best
    }

    /// Iterates over all stored `(prefix, value)` pairs in depth-first
    /// (lexicographic-by-bits) order.
    pub fn iter(&self) -> Iter<'_, V> {
        Iter {
            trie: self,
            stack: vec![0],
        }
    }
}

impl<V> FromIterator<(Prefix, V)> for PrefixTrie<V> {
    fn from_iter<I: IntoIterator<Item = (Prefix, V)>>(iter: I) -> Self {
        let mut trie = PrefixTrie::new();
        for (p, v) in iter {
            trie.insert(p, v);
        }
        trie
    }
}

impl<V> Extend<(Prefix, V)> for PrefixTrie<V> {
    fn extend<I: IntoIterator<Item = (Prefix, V)>>(&mut self, iter: I) {
        for (p, v) in iter {
            self.insert(p, v);
        }
    }
}

/// Iterator over the `(prefix, value)` pairs of a [`PrefixTrie`], produced
/// by [`PrefixTrie::iter`].
#[derive(Debug)]
pub struct Iter<'a, V> {
    trie: &'a PrefixTrie<V>,
    stack: Vec<NodeIdx>,
}

impl<'a, V> Iterator for Iter<'a, V> {
    type Item = (Prefix, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some(idx) = self.stack.pop() {
            let node = &self.trie.nodes[idx as usize];
            // Push right then left so left (bit 0) is visited first.
            for bit in [1usize, 0] {
                if node.children[bit] != NIL {
                    self.stack.push(node.children[bit]);
                }
            }
            if let Some((p, v)) = &node.value {
                return Some((*p, v));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn ip(s: &str) -> Ip {
        s.parse().unwrap()
    }

    #[test]
    fn insert_and_get() {
        let mut t = PrefixTrie::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(p("10.0.0.0/8")), Some(&2));
        assert_eq!(t.get(p("10.0.0.0/9")), None);
    }

    #[test]
    fn longest_match_prefers_more_specific() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), "a");
        t.insert(p("10.1.0.0/16"), "b");
        t.insert(p("10.1.2.0/24"), "c");
        assert_eq!(t.longest_match(ip("10.1.2.3")).unwrap().1, &"c");
        assert_eq!(t.longest_match(ip("10.1.9.1")).unwrap().1, &"b");
        assert_eq!(t.longest_match(ip("10.9.9.9")).unwrap().1, &"a");
        assert_eq!(t.longest_match(ip("11.0.0.1")), None);
    }

    #[test]
    fn default_route_matches_everything() {
        let mut t = PrefixTrie::new();
        t.insert(p("0.0.0.0/0"), "default");
        assert_eq!(t.longest_match(ip("1.2.3.4")).unwrap().1, &"default");
        assert_eq!(t.longest_match(Ip(u32::MAX)).unwrap().1, &"default");
    }

    #[test]
    fn host_route_matches_only_itself() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.1/32"), ());
        assert!(t.longest_match(ip("10.0.0.1")).is_some());
        assert!(t.longest_match(ip("10.0.0.2")).is_none());
    }

    #[test]
    fn iter_yields_all_entries() {
        let mut t = PrefixTrie::new();
        let prefixes = ["10.0.0.0/8", "10.1.0.0/16", "192.168.0.0/24", "0.0.0.0/0"];
        for (i, s) in prefixes.iter().enumerate() {
            t.insert(p(s), i);
        }
        let mut got: Vec<Prefix> = t.iter().map(|(pr, _)| pr).collect();
        got.sort();
        let mut want: Vec<Prefix> = prefixes.iter().map(|s| p(s)).collect();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn remove_deletes_and_preserves_others() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), 1);
        t.insert(p("10.1.0.0/16"), 2);
        assert_eq!(t.remove(p("10.1.0.0/16")), Some(2));
        assert_eq!(t.remove(p("10.1.0.0/16")), None);
        assert_eq!(t.remove(p("12.0.0.0/8")), None);
        assert_eq!(t.len(), 1);
        // The /8 still matches what the /16 used to cover.
        assert_eq!(t.longest_match(ip("10.1.2.3")).unwrap().1, &1);
    }

    #[test]
    fn remove_then_reinsert() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), 1);
        t.remove(p("10.0.0.0/8"));
        assert!(t.is_empty());
        t.insert(p("10.0.0.0/8"), 9);
        assert_eq!(t.get(p("10.0.0.0/8")), Some(&9));
    }

    #[test]
    fn from_iterator_collects() {
        let t: PrefixTrie<u32> = vec![(p("10.0.0.0/8"), 1), (p("11.0.0.0/8"), 2)]
            .into_iter()
            .collect();
        assert_eq!(t.len(), 2);
    }
}
