//! Grouping peer IPs into prefix-level or AS-level clusters.

use std::collections::HashMap;

use crate::asn::Asn;
use crate::ip::{Ip, Prefix};
use crate::table::PrefixTable;

/// Dense identifier of a cluster within one [`Clustering`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ClusterId(pub u32);

impl std::fmt::Display for ClusterId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// Granularity at which peers are grouped.
///
/// The paper groups its 269,413 Gnutella IPs both ways: 103,625 of them
/// matched 7,171 IP prefixes and belonged to 1,461 ASes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ClusterLevel {
    /// One cluster per longest-matched BGP prefix (finer; the level ASAP
    /// surrogates operate at).
    #[default]
    Prefix,
    /// One cluster per origin AS (coarser).
    As,
}

/// One cluster: the set of member peers sharing a prefix (or AS), plus the
/// delegate used for latency measurements.
#[derive(Debug, Clone)]
pub struct Cluster {
    id: ClusterId,
    prefix: Prefix,
    asn: Asn,
    members: Vec<Ip>,
    delegate: usize,
}

impl Cluster {
    /// The cluster's identifier.
    pub fn id(&self) -> ClusterId {
        self.id
    }

    /// The longest-matched prefix shared by the members. For AS-level
    /// clusterings this is the prefix of the first member seen.
    pub fn prefix(&self) -> Prefix {
        self.prefix
    }

    /// The origin AS of the cluster.
    pub fn asn(&self) -> Asn {
        self.asn
    }

    /// The member peer IPs.
    pub fn members(&self) -> &[Ip] {
        &self.members
    }

    /// Number of member peers.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the cluster has no members (never true for clusters produced
    /// by [`Clustering::from_ips`]).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The delegate peer chosen to represent the cluster in pairwise
    /// latency measurements.
    pub fn delegate(&self) -> Ip {
        self.members[self.delegate]
    }

    /// Re-selects the delegate by member index (used when the previous
    /// delegate goes offline).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn set_delegate_index(&mut self, index: usize) {
        assert!(
            index < self.members.len(),
            "delegate index {index} out of bounds"
        );
        self.delegate = index;
    }
}

/// The result of grouping a peer population into clusters.
///
/// Built by [`Clustering::from_ips`]: every input IP that matches some
/// prefix in the [`PrefixTable`] is assigned to exactly one cluster;
/// unmatched IPs are reported via [`unmatched`](Clustering::unmatched)
/// (the paper likewise only kept the 103,625 of 269,413 crawled IPs that
/// matched a BGP prefix).
#[derive(Debug, Clone)]
pub struct Clustering {
    level: ClusterLevel,
    clusters: Vec<Cluster>,
    by_ip: HashMap<Ip, ClusterId>,
    unmatched: Vec<Ip>,
}

impl Clustering {
    /// Groups `ips` using `table` at the requested `level`.
    ///
    /// The delegate of each cluster is its first member in input order —
    /// deterministic, so experiments are reproducible; callers wanting a
    /// randomized delegate can use [`Cluster::set_delegate_index`].
    pub fn from_ips(ips: &[Ip], table: &PrefixTable, level: ClusterLevel) -> Self {
        let mut clusters: Vec<Cluster> = Vec::new();
        let mut by_ip = HashMap::new();
        let mut unmatched = Vec::new();
        // Key is the matched prefix at Prefix level, the origin AS at As level.
        let mut key_to_cluster: HashMap<(u32, u8, u32), usize> = HashMap::new();

        for &ip in ips {
            if by_ip.contains_key(&ip) {
                continue; // duplicate input IP
            }
            let Some((prefix, asn)) = table.matched_prefix(ip) else {
                unmatched.push(ip);
                continue;
            };
            let key = match level {
                ClusterLevel::Prefix => (prefix.base().0, prefix.len(), 0),
                ClusterLevel::As => (0, 0, asn.0),
            };
            let idx = *key_to_cluster.entry(key).or_insert_with(|| {
                let id = ClusterId(clusters.len() as u32);
                clusters.push(Cluster {
                    id,
                    prefix,
                    asn,
                    members: Vec::new(),
                    delegate: 0,
                });
                clusters.len() - 1
            });
            clusters[idx].members.push(ip);
            by_ip.insert(ip, clusters[idx].id);
        }

        Clustering {
            level,
            clusters,
            by_ip,
            unmatched,
        }
    }

    /// The granularity this clustering was built at.
    pub fn level(&self) -> ClusterLevel {
        self.level
    }

    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Total number of clustered (matched) peers.
    pub fn peer_count(&self) -> usize {
        self.by_ip.len()
    }

    /// All clusters, indexable by `ClusterId.0`.
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// The cluster with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this clustering.
    pub fn cluster(&self, id: ClusterId) -> &Cluster {
        &self.clusters[id.0 as usize]
    }

    /// The cluster a peer IP belongs to, if it was matched.
    pub fn cluster_of(&self, ip: Ip) -> Option<ClusterId> {
        self.by_ip.get(&ip).copied()
    }

    /// Input IPs that matched no prefix and were therefore dropped.
    pub fn unmatched(&self) -> &[Ip] {
        &self.unmatched
    }

    /// Iterates over the delegate IP of every cluster.
    pub fn delegates(&self) -> impl Iterator<Item = (ClusterId, Ip)> + '_ {
        self.clusters.iter().map(|c| (c.id, c.delegate()))
    }

    /// Distribution of cluster sizes, as a sorted `Vec` of member counts.
    /// Used by the §6.3 load analysis ("90% of the clusters contain no more
    /// than 100 online end hosts").
    pub fn size_distribution(&self) -> Vec<usize> {
        let mut sizes: Vec<usize> = self.clusters.iter().map(|c| c.len()).collect();
        sizes.sort_unstable();
        sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> PrefixTable {
        vec![("10.1.0.0/16", 1u32), ("10.2.0.0/16", 1), ("20.0.0.0/8", 2)]
            .into_iter()
            .map(|(p, a)| (p.parse().unwrap(), Asn(a)))
            .collect()
    }

    fn ip(s: &str) -> Ip {
        s.parse().unwrap()
    }

    #[test]
    fn prefix_level_splits_by_prefix() {
        let ips = vec![
            ip("10.1.0.1"),
            ip("10.1.0.2"),
            ip("10.2.0.1"),
            ip("20.0.0.1"),
        ];
        let c = Clustering::from_ips(&ips, &table(), ClusterLevel::Prefix);
        assert_eq!(c.cluster_count(), 3);
        assert_eq!(c.peer_count(), 4);
        assert_ne!(c.cluster_of(ip("10.1.0.1")), c.cluster_of(ip("10.2.0.1")));
    }

    #[test]
    fn as_level_merges_same_origin() {
        let ips = vec![ip("10.1.0.1"), ip("10.2.0.1"), ip("20.0.0.1")];
        let c = Clustering::from_ips(&ips, &table(), ClusterLevel::As);
        assert_eq!(c.cluster_count(), 2);
        assert_eq!(c.cluster_of(ip("10.1.0.1")), c.cluster_of(ip("10.2.0.1")));
    }

    #[test]
    fn unmatched_ips_are_reported() {
        let ips = vec![ip("10.1.0.1"), ip("99.0.0.1")];
        let c = Clustering::from_ips(&ips, &table(), ClusterLevel::Prefix);
        assert_eq!(c.peer_count(), 1);
        assert_eq!(c.unmatched(), &[ip("99.0.0.1")]);
        assert_eq!(c.cluster_of(ip("99.0.0.1")), None);
    }

    #[test]
    fn duplicates_are_ignored() {
        let ips = vec![ip("10.1.0.1"), ip("10.1.0.1")];
        let c = Clustering::from_ips(&ips, &table(), ClusterLevel::Prefix);
        assert_eq!(c.peer_count(), 1);
        assert_eq!(c.cluster(c.cluster_of(ip("10.1.0.1")).unwrap()).len(), 1);
    }

    #[test]
    fn delegate_is_first_member_and_replaceable() {
        let ips = vec![ip("10.1.0.1"), ip("10.1.0.2")];
        let mut c = Clustering::from_ips(&ips, &table(), ClusterLevel::Prefix);
        let id = c.cluster_of(ip("10.1.0.1")).unwrap();
        assert_eq!(c.cluster(id).delegate(), ip("10.1.0.1"));
        c.clusters[id.0 as usize].set_delegate_index(1);
        assert_eq!(c.cluster(id).delegate(), ip("10.1.0.2"));
    }

    #[test]
    fn size_distribution_is_sorted() {
        let ips = vec![
            ip("10.1.0.1"),
            ip("10.1.0.2"),
            ip("10.1.0.3"),
            ip("20.0.0.1"),
        ];
        let c = Clustering::from_ips(&ips, &table(), ClusterLevel::Prefix);
        assert_eq!(c.size_distribution(), vec![1, 3]);
    }
}
