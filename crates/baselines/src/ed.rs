//! ED: the earliest-divergence relay heuristic.
//!
//! §4 of the paper discusses Fei, Tao, Gao & Guerin's earliest-divergence
//! heuristic (INFOCOM'06) for finding *independent* routing paths: prefer
//! the relay whose path from the source diverges from the direct path as
//! early as possible, maximizing disjointness. The paper's point — which
//! this implementation lets the evaluation demonstrate — is that "when
//! used in VoIP applications, ED cannot guarantee to find good relay
//! nodes to satisfy the VoIP quality requirements": disjointness is about
//! *reliability*, not latency.

use asap_telemetry::{LedgerScope, MessageKind};
use asap_voip::QualityRequirement;
use asap_workload::sessions::Session;
use asap_workload::{HostId, Scenario};

use crate::rand_sel::RandSel;
use crate::selector::{eval_one_hop, RelaySelector, SelectionOutcome};

/// The earliest-divergence baseline: probes the same random candidates as
/// [`RandSel`], but *ranks* them by how early the caller→relay AS path
/// diverges from the caller→callee direct path (ties by RTT). The best
/// path reported is the most-disjoint one, not the fastest.
#[derive(Debug, Clone)]
pub struct EarliestDivergence {
    sampler: RandSel,
    scope: LedgerScope,
}

impl EarliestDivergence {
    /// Probes `count` random candidates per session (deterministic per
    /// seed/session, identical candidate sets to `RandSel::new(count,
    /// seed)` for apples-to-apples comparisons).
    pub fn new(count: usize, seed: u64) -> Self {
        EarliestDivergence {
            sampler: RandSel::new(count, seed),
            scope: LedgerScope::detached(),
        }
    }

    /// Records this method's probes into `scope` (e.g. a shared ledger's
    /// `"ED"` scope) instead of the default detached one.
    pub fn with_scope(mut self, scope: LedgerScope) -> Self {
        self.scope = scope;
        self
    }

    /// The number of leading ASes the relay path shares with the direct
    /// path (0 = diverges immediately at the source AS; smaller = more
    /// disjoint).
    pub fn shared_prefix_len(scenario: &Scenario, session: Session, relay: HostId) -> usize {
        let (caller, callee, r) = (
            scenario.population.host(session.caller).asn,
            scenario.population.host(session.callee).asn,
            scenario.population.host(relay).asn,
        );
        let Some(direct) = scenario.net.as_path(caller, callee) else {
            return 0;
        };
        let Some(via) = scenario.net.as_path(caller, r) else {
            return 0;
        };
        direct
            .iter()
            .zip(via.iter())
            .take_while(|(a, b)| a == b)
            .count()
    }
}

impl RelaySelector for EarliestDivergence {
    fn name(&self) -> &'static str {
        "ED"
    }

    fn select(
        &self,
        scenario: &Scenario,
        session: Session,
        requirement: &QualityRequirement,
    ) -> SelectionOutcome {
        let mut out = SelectionOutcome::default();
        let mut ranked: Vec<(usize, f64, crate::selector::RelayPath)> = Vec::new();
        let candidates = self.sampler.candidates(scenario, session);
        // One message per probed candidate, as in the seed accounting.
        self.scope
            .record(MessageKind::ProbeRequest, candidates.len() as u64);
        for r in candidates {
            let Some(path) = eval_one_hop(scenario, session, r) else {
                continue;
            };
            out.probed_nodes += 1;
            if requirement.rtt_ok(path.rtt_ms) {
                out.quality_paths += 1;
            }
            let shared = Self::shared_prefix_len(scenario, session, r);
            ranked.push((shared, path.rtt_ms, path));
        }
        // Earliest divergence first; RTT only breaks ties.
        ranked.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
        out.best = ranked.into_iter().next().map(|(_, _, p)| p);
        out
    }

    fn scope(&self) -> &LedgerScope {
        &self.scope
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_workload::{Scenario, ScenarioConfig};

    fn scenario() -> Scenario {
        Scenario::build(ScenarioConfig::tiny(), 64)
    }

    #[test]
    fn ed_probes_the_same_candidates_as_rand() {
        let s = scenario();
        let sess = Session {
            caller: HostId(0),
            callee: HostId(101),
        };
        let ed = EarliestDivergence::new(40, 5);
        let rand = RandSel::new(40, 5);
        let req = QualityRequirement::default();
        let (a, a_spent) = crate::selector::select_metered(&ed, &s, sess, &req);
        let (b, b_spent) = crate::selector::select_metered(&rand, &s, sess, &req);
        assert_eq!(a.quality_paths, b.quality_paths);
        assert_eq!(a_spent, b_spent);
    }

    #[test]
    fn ed_picks_most_disjoint_not_fastest() {
        let req = QualityRequirement::default();
        let ed = EarliestDivergence::new(60, 9);
        let rand = RandSel::new(60, 9);
        let mut ed_slower_somewhere = false;
        // Whether disjointness costs latency depends on the topology draw,
        // so scan a few scenario seeds; the invariants hold on every draw.
        for scenario_seed in 64..70u64 {
            let s = Scenario::build(ScenarioConfig::tiny(), scenario_seed);
            for i in 0..20u32 {
                let sess = Session {
                    caller: HostId(i),
                    callee: HostId(200 + i),
                };
                let (Some(e), Some(r)) = (
                    ed.select(&s, sess, &req).best,
                    rand.select(&s, sess, &req).best,
                ) else {
                    continue;
                };
                // RAND keeps the fastest probe, so ED can only be ≥.
                assert!(e.rtt_ms >= r.rtt_ms - 1e-9);
                if e.rtt_ms > r.rtt_ms + 1.0 {
                    ed_slower_somewhere = true;
                }
                // And the chosen relay really is (one of) the most disjoint.
                let chosen_shared = EarliestDivergence::shared_prefix_len(&s, sess, e.relays[0]);
                for cand in ed.sampler.candidates(&s, sess) {
                    if eval_one_hop(&s, sess, cand).is_some() {
                        assert!(
                            chosen_shared <= EarliestDivergence::shared_prefix_len(&s, sess, cand),
                            "a more disjoint candidate existed"
                        );
                    }
                }
            }
            if ed_slower_somewhere {
                break;
            }
        }
        assert!(
            ed_slower_somewhere,
            "ED should pay a latency price for disjointness somewhere (the paper's point)"
        );
    }
}
