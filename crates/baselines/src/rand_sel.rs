//! RAND: random relay probing (SOSR-like).

use asap_telemetry::{LedgerScope, MessageKind};
use asap_voip::QualityRequirement;
use asap_workload::sessions::Session;
use asap_workload::{HostId, Scenario};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::selector::{eval_one_hop, RelayLoad, RelaySelector, SelectionOutcome};

/// The SOSR-like baseline: each session probes `count` uniformly random
/// peers as one-hop relays (§7.1: "RAND randomly selects 200 nodes").
///
/// SOSR showed random one-hop intermediaries recover well from path
/// *failures*, but random probing "cannot guarantee to find a short
/// one-hop routing path with a moderate number of probings" (§4) — which
/// is exactly what the Fig. 13/14 comparison shows.
#[derive(Debug, Clone)]
pub struct RandSel {
    count: usize,
    seed: u64,
    scope: LedgerScope,
    load: Option<RelayLoad>,
}

impl RandSel {
    /// Probes `count` random peers per session; candidate choice is
    /// deterministic per (seed, session).
    pub fn new(count: usize, seed: u64) -> Self {
        RandSel {
            count,
            seed,
            scope: LedgerScope::detached(),
            load: None,
        }
    }

    /// Charges each session's chosen relay path to `load` — the
    /// relay-load parity measurement the overload evaluation compares
    /// against ASAP's bounded slots.
    pub fn with_load(mut self, load: RelayLoad) -> Self {
        self.load = Some(load);
        self
    }

    /// Records this method's probes into `scope` (e.g. a shared ledger's
    /// `"RAND"` scope) instead of the default detached one.
    pub fn with_scope(mut self, scope: LedgerScope) -> Self {
        self.scope = scope;
        self
    }

    /// The deterministic candidate list for one session.
    pub fn candidates(&self, scenario: &Scenario, session: Session) -> Vec<HostId> {
        let n = scenario.population.hosts().len();
        let mut rng = StdRng::seed_from_u64(
            self.seed
                ^ (u64::from(session.caller.0) << 32)
                ^ u64::from(session.callee.0).rotate_left(13),
        );
        (0..self.count)
            .map(|_| HostId(rng.gen_range(0..n) as u32))
            .collect()
    }
}

impl RelaySelector for RandSel {
    fn name(&self) -> &'static str {
        "RAND"
    }

    fn select(
        &self,
        scenario: &Scenario,
        session: Session,
        requirement: &QualityRequirement,
    ) -> SelectionOutcome {
        // One message per probed candidate, as in the seed accounting.
        self.scope
            .record(MessageKind::ProbeRequest, self.count as u64);
        let mut out = SelectionOutcome::default();
        for r in self.candidates(scenario, session) {
            if let Some(path) = eval_one_hop(scenario, session, r) {
                out.consider(path, requirement);
            }
        }
        if let (Some(load), Some(best)) = (&self.load, &out.best) {
            load.record(&best.relays);
        }
        out
    }

    fn scope(&self) -> &LedgerScope {
        &self.scope
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_workload::ScenarioConfig;

    #[test]
    fn candidates_are_deterministic_per_session() {
        let s = Scenario::build(ScenarioConfig::tiny(), 5);
        let r = RandSel::new(20, 7);
        let sess = Session {
            caller: HostId(1),
            callee: HostId(2),
        };
        assert_eq!(r.candidates(&s, sess), r.candidates(&s, sess));
        let other = Session {
            caller: HostId(3),
            callee: HostId(4),
        };
        assert_ne!(r.candidates(&s, sess), r.candidates(&s, other));
    }

    #[test]
    fn messages_equal_probe_budget() {
        let s = Scenario::build(ScenarioConfig::tiny(), 5);
        let r = RandSel::new(50, 7);
        let sess = Session {
            caller: HostId(0),
            callee: HostId(9),
        };
        let (_, spent) =
            crate::selector::select_metered(&r, &s, sess, &QualityRequirement::default());
        assert_eq!(spent, 50);
    }

    #[test]
    fn endpoints_are_never_counted_as_relays() {
        let s = Scenario::build(ScenarioConfig::tiny(), 5);
        let r = RandSel::new(300, 1);
        let sess = Session {
            caller: HostId(5),
            callee: HostId(6),
        };
        let out = r.select(&s, sess, &QualityRequirement::default());
        if let Some(best) = out.best {
            assert!(!best.relays.contains(&sess.caller));
            assert!(!best.relays.contains(&sess.callee));
        }
    }
}
