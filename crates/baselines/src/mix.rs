//! MIX: dedicated plus random relays.

use asap_telemetry::LedgerScope;
use asap_voip::QualityRequirement;
use asap_workload::sessions::Session;
use asap_workload::Scenario;

use crate::dedi::Dedi;
use crate::rand_sel::RandSel;
use crate::selector::{RelayLoad, RelaySelector, SelectionOutcome};

/// The combination baseline of §7.1: "MIX probes 160 nodes, including 40
/// dedicated nodes and 120 randomly probed nodes".
#[derive(Debug, Clone)]
pub struct Mix {
    dedi: Dedi,
    rand: RandSel,
    scope: LedgerScope,
    load: Option<RelayLoad>,
}

impl Mix {
    /// Builds a MIX of `dedicated` high-degree nodes and `random` random
    /// probes per session. Both components record into MIX's own scope.
    pub fn new(scenario: &Scenario, dedicated: usize, random: usize, seed: u64) -> Self {
        let scope = LedgerScope::detached();
        Mix {
            dedi: Dedi::new(scenario, dedicated).with_scope(scope.clone()),
            rand: RandSel::new(random, seed).with_scope(scope.clone()),
            scope,
            load: None,
        }
    }

    /// Charges each session's *combined* best relay path to `load`. Only
    /// MIX's own pick is recorded — the components keep their trackers
    /// unset so a session is never charged to both a dedicated and a
    /// random candidate.
    pub fn with_load(mut self, load: RelayLoad) -> Self {
        self.load = Some(load);
        self
    }

    /// Records this method's probes (both components) into `scope`
    /// instead of the default detached one.
    pub fn with_scope(mut self, scope: LedgerScope) -> Self {
        self.dedi = self.dedi.with_scope(scope.clone());
        self.rand = self.rand.with_scope(scope.clone());
        self.scope = scope;
        self
    }

    /// The dedicated component.
    pub fn dedicated(&self) -> &Dedi {
        &self.dedi
    }
}

impl RelaySelector for Mix {
    fn name(&self) -> &'static str {
        "MIX"
    }

    fn select(
        &self,
        scenario: &Scenario,
        session: Session,
        requirement: &QualityRequirement,
    ) -> SelectionOutcome {
        let a = self.dedi.select(scenario, session, requirement);
        let b = self.rand.select(scenario, session, requirement);
        let mut out = SelectionOutcome {
            quality_paths: a.quality_paths + b.quality_paths,
            best: None,
            probed_nodes: a.probed_nodes + b.probed_nodes,
        };
        out.best = match (a.best, b.best) {
            (Some(x), Some(y)) => Some(if x.rtt_ms <= y.rtt_ms { x } else { y }),
            (x, y) => x.or(y),
        };
        if let (Some(load), Some(best)) = (&self.load, &out.best) {
            load.record(&best.relays);
        }
        out
    }

    fn scope(&self) -> &LedgerScope {
        &self.scope
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_workload::{HostId, ScenarioConfig};

    #[test]
    fn combines_budgets() {
        let s = Scenario::build(ScenarioConfig::tiny(), 5);
        let mix = Mix::new(&s, 10, 30, 3);
        let sess = Session {
            caller: HostId(0),
            callee: HostId(77),
        };
        let (_, spent) =
            crate::selector::select_metered(&mix, &s, sess, &QualityRequirement::default());
        assert_eq!(spent, 40);
    }

    #[test]
    fn best_is_no_worse_than_either_component() {
        let s = Scenario::build(ScenarioConfig::tiny(), 5);
        let mix = Mix::new(&s, 10, 30, 3);
        let sess = Session {
            caller: HostId(0),
            callee: HostId(77),
        };
        let req = QualityRequirement::default();
        let combined = mix.select(&s, sess, &req).best.map(|p| p.rtt_ms);
        let d = mix
            .dedicated()
            .select(&s, sess, &req)
            .best
            .map(|p| p.rtt_ms);
        if let (Some(c), Some(d)) = (combined, d) {
            assert!(c <= d);
        }
    }
}
