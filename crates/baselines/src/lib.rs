//! Baseline relay-selection methods for the ASAP evaluation.
//!
//! §7.1 of the paper compares five relay node selection methods:
//!
//! 1. **DEDI** — RON-like: a fixed set of dedicated relay nodes placed in
//!    the clusters whose ASes have the largest connection degrees
//!    ([`Dedi`]).
//! 2. **RAND** — SOSR-like: randomly chosen peer relays ([`RandSel`]).
//! 3. **MIX** — both dedicated and random relays ([`Mix`]).
//! 4. **ASAP** — the paper's contribution, implemented in `asap-core`
//!    (which plugs into the same [`RelaySelector`] trait).
//! 5. **OPT** — the offline optimum with all latency data on hand
//!    ([`Opt`]).
//!
//! §4 also discusses the **earliest-divergence** heuristic for finding
//! independent paths ([`EarliestDivergence`]) — implemented so the
//! evaluation can show why disjointness alone does not meet VoIP's
//! latency requirement.
//!
//! This crate also hosts the **Skype-like prober** ([`skype`]): a
//! behavioral model of Skype's AS-unaware relay hunting that regenerates
//! the four limits of §5 (suboptimal major paths, same-AS probing, long
//! stabilization / relay bounce, probing overhead).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dedi;
mod ed;
mod mix;
mod opt;
mod rand_sel;
mod selector;
pub mod skype;

pub use dedi::Dedi;
pub use ed::EarliestDivergence;
pub use mix::Mix;
pub use opt::Opt;
pub use rand_sel::RandSel;
pub use selector::{select_metered, RelayLoad, RelayPath, RelaySelector, SelectionOutcome};
