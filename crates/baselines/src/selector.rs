//! The common interface all relay-selection methods implement.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use asap_telemetry::LedgerScope;
use asap_voip::QualityRequirement;
use asap_workload::sessions::Session;
use asap_workload::{HostId, Scenario};

/// A shared per-relay load tally: how many sessions each relay host ended
/// up carrying under a selection method. ASAP bounds this with relay-call
/// slots and spillover; the baselines have no such mechanism, so the
/// overload evaluation needs the same measurement on their side to show
/// the difference (DEDI concentrates its whole workload on a fixed node
/// set, RAND spreads it thin, MIX sits in between).
///
/// Clones share the same tally, so one tracker can be threaded through a
/// method and read by the harness.
#[derive(Debug, Clone, Default)]
pub struct RelayLoad {
    counts: Arc<Mutex<BTreeMap<u32, u64>>>,
}

impl RelayLoad {
    /// An empty tally.
    pub fn new() -> Self {
        RelayLoad::default()
    }

    /// Charges one session to every host on the chosen relay path.
    pub fn record(&self, relays: &[HostId]) {
        let mut counts = self.counts.lock().expect("relay-load poisoned");
        for r in relays {
            *counts.entry(r.0).or_insert(0) += 1;
        }
    }

    /// Sessions charged to `host` so far.
    pub fn load_of(&self, host: HostId) -> u64 {
        self.counts
            .lock()
            .expect("relay-load poisoned")
            .get(&host.0)
            .copied()
            .unwrap_or(0)
    }

    /// The hottest relay's session count — the number the capacity model
    /// bounds on the ASAP side.
    pub fn max_load(&self) -> u64 {
        self.counts
            .lock()
            .expect("relay-load poisoned")
            .values()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Total relay-host charges across all sessions.
    pub fn total(&self) -> u64 {
        self.counts
            .lock()
            .expect("relay-load poisoned")
            .values()
            .sum()
    }

    /// Number of distinct relay hosts that carried at least one session.
    pub fn relays_used(&self) -> u64 {
        self.counts.lock().expect("relay-load poisoned").len() as u64
    }

    /// The full tally in ascending host-id order (deterministic for
    /// snapshot comparison).
    pub fn snapshot(&self) -> Vec<(u32, u64)> {
        self.counts
            .lock()
            .expect("relay-load poisoned")
            .iter()
            .map(|(&h, &n)| (h, n))
            .collect()
    }
}

/// One candidate relay path: one or two intermediary hosts with the
/// resulting end-to-end RTT and loss.
#[derive(Debug, Clone, PartialEq)]
pub struct RelayPath {
    /// The intermediary relay host(s): one for one-hop, two for two-hop.
    pub relays: Vec<HostId>,
    /// End-to-end RTT including per-relay forwarding delay, milliseconds.
    pub rtt_ms: f64,
    /// End-to-end loss probability.
    pub loss: f64,
}

/// The result of running one relay-selection method on one session.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelectionOutcome {
    /// Number of *quality paths* found — relay paths satisfying the RTT
    /// requirement. ASAP counts member-host granularity (every host of a
    /// qualifying close cluster is a usable relay), probing methods count
    /// their probed nodes that qualified.
    pub quality_paths: u64,
    /// The best (shortest-RTT) relay path found, if any candidate was
    /// evaluated successfully.
    pub best: Option<RelayPath>,
    /// Number of relay nodes whose paths were actually probed/evaluated.
    pub probed_nodes: u64,
}

impl SelectionOutcome {
    /// Records a candidate path: counts it if it meets the requirement and
    /// keeps it if it is the best so far.
    pub fn consider(&mut self, path: RelayPath, requirement: &QualityRequirement) {
        self.probed_nodes += 1;
        if requirement.rtt_ok(path.rtt_ms) {
            self.quality_paths += 1;
        }
        let better = match &self.best {
            Some(b) => path.rtt_ms < b.rtt_ms,
            None => true,
        };
        if better {
            self.best = Some(path);
        }
    }

    /// Like [`consider`](Self::consider) but with an explicit quality-path
    /// weight (ASAP counts every member host of a qualifying cluster).
    pub fn consider_weighted(
        &mut self,
        path: RelayPath,
        weight: u64,
        requirement: &QualityRequirement,
    ) {
        self.probed_nodes += 1;
        if requirement.rtt_ok(path.rtt_ms) {
            self.quality_paths += weight;
        }
        let better = match &self.best {
            Some(b) => path.rtt_ms < b.rtt_ms,
            None => true,
        };
        if better {
            self.best = Some(path);
        }
    }
}

/// Evaluates host `r` as a one-hop relay for `session`, returning the
/// resulting path, or `None` when `r` is an endpoint or a leg is
/// unroutable.
pub fn eval_one_hop(scenario: &Scenario, session: Session, r: HostId) -> Option<RelayPath> {
    if r == session.caller || r == session.callee {
        return None;
    }
    let rtt_ms = scenario.one_hop_rtt_ms(session.caller, r, session.callee)?;
    let loss = scenario.one_hop_loss(session.caller, r, session.callee)?;
    Some(RelayPath {
        relays: vec![r],
        rtt_ms,
        loss,
    })
}

/// A relay node selection method, as compared in §7 of the paper.
pub trait RelaySelector {
    /// Short display name (`"DEDI"`, `"ASAP"`, …).
    fn name(&self) -> &'static str;

    /// Selects relay paths for `session` under `requirement`.
    fn select(
        &self,
        scenario: &Scenario,
        session: Session,
        requirement: &QualityRequirement,
    ) -> SelectionOutcome;

    /// The ledger scope this method records its protocol messages into —
    /// the single source of truth for the Fig. 18 overhead metric
    /// (replacing the per-outcome `messages` counter this trait used to
    /// carry).
    fn scope(&self) -> &LedgerScope;
}

/// Runs `sel.select(..)` and meters its message cost: returns the
/// outcome together with how many ledger messages the selection spent,
/// read as a before/after delta on the method's scope.
pub fn select_metered<S: RelaySelector + ?Sized>(
    sel: &S,
    scenario: &Scenario,
    session: Session,
    requirement: &QualityRequirement,
) -> (SelectionOutcome, u64) {
    let before = sel.scope().total();
    let out = sel.select(scenario, session, requirement);
    let spent = sel.scope().total() - before;
    (out, spent)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(rtt: f64) -> RelayPath {
        RelayPath {
            relays: vec![HostId(1)],
            rtt_ms: rtt,
            loss: 0.005,
        }
    }

    #[test]
    fn consider_counts_and_keeps_best() {
        let req = QualityRequirement::default();
        let mut out = SelectionOutcome::default();
        out.consider(path(400.0), &req);
        out.consider(path(120.0), &req);
        out.consider(path(250.0), &req);
        assert_eq!(out.probed_nodes, 3);
        assert_eq!(out.quality_paths, 2); // 120 and 250 qualify
        assert_eq!(out.best.as_ref().unwrap().rtt_ms, 120.0);
    }

    #[test]
    fn weighted_counting() {
        let req = QualityRequirement::default();
        let mut out = SelectionOutcome::default();
        out.consider_weighted(path(100.0), 57, &req);
        out.consider_weighted(path(500.0), 99, &req);
        assert_eq!(out.quality_paths, 57);
    }

    #[test]
    fn best_is_kept_even_if_not_quality() {
        let req = QualityRequirement::default();
        let mut out = SelectionOutcome::default();
        out.consider(path(500.0), &req);
        assert_eq!(out.quality_paths, 0);
        assert!(out.best.is_some());
    }

    #[test]
    fn relay_load_tallies_per_host() {
        let load = RelayLoad::new();
        load.record(&[HostId(3)]);
        load.record(&[HostId(3)]);
        load.record(&[HostId(7), HostId(9)]); // a two-hop path charges both
        assert_eq!(load.load_of(HostId(3)), 2);
        assert_eq!(load.load_of(HostId(9)), 1);
        assert_eq!(load.load_of(HostId(1)), 0);
        assert_eq!(load.max_load(), 2);
        assert_eq!(load.total(), 4);
        assert_eq!(load.relays_used(), 3);
        assert_eq!(load.snapshot(), vec![(3, 2), (7, 1), (9, 1)]);
    }

    #[test]
    fn relay_load_clones_share_the_tally() {
        let load = RelayLoad::new();
        let shared = load.clone();
        shared.record(&[HostId(5)]);
        assert_eq!(load.load_of(HostId(5)), 1);
    }

    #[test]
    fn dedi_concentrates_load_on_its_fixed_nodes() {
        use crate::dedi::Dedi;
        use asap_workload::ScenarioConfig;
        let s = Scenario::build(ScenarioConfig::tiny(), 5);
        let load = RelayLoad::new();
        let dedi = Dedi::new(&s, 5).with_load(load.clone());
        let req = QualityRequirement::default();
        let mut picked = 0u64;
        for i in 0..40u32 {
            let sess = Session {
                caller: HostId(i),
                callee: HostId(200 + i),
            };
            if dedi.select(&s, sess, &req).best.is_some() {
                picked += 1;
            }
        }
        // Every session that found a path charged exactly one relay, and
        // all charges land on the fixed dedicated node set.
        assert_eq!(load.total(), picked);
        assert!(load.relays_used() <= 5);
        for (host, _) in load.snapshot() {
            assert!(dedi.nodes().contains(&HostId(host)));
        }
    }

    #[test]
    fn mix_charges_one_relay_path_per_session() {
        use crate::mix::Mix;
        use asap_workload::ScenarioConfig;
        let s = Scenario::build(ScenarioConfig::tiny(), 5);
        let load = RelayLoad::new();
        let mix = Mix::new(&s, 5, 10, 3).with_load(load.clone());
        let req = QualityRequirement::default();
        let sess = Session {
            caller: HostId(0),
            callee: HostId(77),
        };
        let out = mix.select(&s, sess, &req);
        // The combined pick is charged once — never both components.
        assert_eq!(load.total(), u64::from(out.best.is_some()));
    }
}
