//! A behavioral model of Skype's AS-unaware relay hunting.
//!
//! Skype's routing is closed and encrypted, so the paper characterizes it
//! from packet captures of 14 sessions (§5) and identifies four limits:
//!
//! 1. **Suboptimal major paths** — sessions settle on relays with RTTs
//!    above 350 ms although better relays exist.
//! 2. **Same-AS probing** — multiple probed relays sit in one AS, sharing
//!    bottlenecks (Table 2).
//! 3. **Long stabilization / relay bounce** — up to 329 s of switching
//!    before the *major relay* is settled (Fig. 7(a)).
//! 4. **Probing overhead** — tens of relays probed per session, and 3–6
//!    more even after stabilization (Fig. 7(b,c)).
//!
//! This module reproduces the *mechanism* behind those observations: a
//! caller that knows a random sample of supernodes, probes them in rounds
//! with noisy measurements, switches to whatever currently measures best
//! (relay bounce), and keeps background-probing after settling. Nothing
//! here consults the AS topology — that is the point.

use asap_netsim::events::{EventQueue, SimTime};
use asap_workload::sessions::Session;
use asap_workload::{HostId, Scenario};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Tunables of the Skype-like prober.
#[derive(Debug, Clone)]
pub struct SkypeConfig {
    /// Number of supernodes the client learns from the overlay (sampled
    /// by bandwidth, AS-unaware).
    pub candidate_pool: usize,
    /// Relays probed per probing round.
    pub probes_per_round: usize,
    /// Base interval between probing rounds, milliseconds.
    pub probe_interval_ms: u64,
    /// Rounds without a switch after which probing slows down (×4
    /// interval) — the background probing regime.
    pub slowdown_after_rounds: u32,
    /// Measured-RTT improvement (ms) required to switch relays.
    pub switch_margin_ms: f64,
    /// Per-probe multiplicative measurement noise half-width.
    pub measurement_noise: f64,
    /// Simulated call duration, milliseconds.
    pub call_duration_ms: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SkypeConfig {
    fn default() -> Self {
        SkypeConfig {
            candidate_pool: 40,
            probes_per_round: 3,
            probe_interval_ms: 5_000,
            slowdown_after_rounds: 8,
            switch_margin_ms: 5.0,
            measurement_noise: 0.20,
            call_duration_ms: 420_000,
            seed: 0,
        }
    }
}

/// One probe observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeRecord {
    /// When the probe was sent.
    pub at: SimTime,
    /// The probed relay (`None` = the direct path).
    pub relay: Option<HostId>,
    /// The *measured* (noisy) path RTT in milliseconds.
    pub measured_rtt_ms: f64,
}

/// A relay switch during the call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Switch {
    /// When the client switched.
    pub at: SimTime,
    /// The new current path (`None` = direct).
    pub to: Option<HostId>,
    /// The measured RTT that triggered the switch.
    pub measured_rtt_ms: f64,
}

/// The full record of one simulated Skype-like call direction.
#[derive(Debug, Clone)]
pub struct SkypeReport {
    /// The simulated session.
    pub session: Session,
    /// Every probe, in time order (Fig. 6's time series).
    pub probes: Vec<ProbeRecord>,
    /// Every switch, in time order.
    pub switches: Vec<Switch>,
    /// The major path's relay after the call (`None` = direct).
    pub major_relay: Option<HostId>,
    /// True (noise-free) RTT of the major path, milliseconds.
    pub major_rtt_ms: f64,
    /// Stabilization time: seconds from call start until the last switch
    /// (0 if the client never left the direct path).
    pub stabilization_s: f64,
    /// Distinct relay nodes probed over the whole call (Fig. 7(b)).
    pub probed_total: usize,
    /// Distinct relay nodes probed through the voice-data port after the
    /// hunt settled into the background regime (Fig. 7(c): "most sessions
    /// have probed 3-6 relay nodes after the stabilization time").
    pub probed_after_stabilization: usize,
    /// Pairs of distinct probed relays located in the same AS — the
    /// Table 2 pathology an AS-aware protocol would avoid.
    pub same_as_pairs: usize,
}

/// Events driving the simulated call.
#[derive(Debug, Clone, Copy)]
enum Event {
    ProbeRound,
    EndCall,
}

/// Simulates one call direction under the Skype-like prober.
///
/// # Panics
///
/// Panics if the population is smaller than three hosts (no candidate
/// relays exist).
pub fn simulate_call(scenario: &Scenario, session: Session, config: &SkypeConfig) -> SkypeReport {
    let pop = &scenario.population;
    assert!(pop.hosts().len() >= 3, "need at least one candidate relay");
    let mut rng = StdRng::seed_from_u64(
        config.seed ^ (u64::from(session.caller.0) << 32) ^ u64::from(session.callee.0),
    );

    // Candidate supernodes: sampled by bandwidth (powerful peers become
    // supernodes), never the endpoints, AS-unaware.
    let mut candidates: Vec<HostId> = Vec::new();
    let hosts = pop.hosts();
    while candidates.len() < config.candidate_pool.min(hosts.len().saturating_sub(2)) {
        let h = &hosts[rng.gen_range(0..hosts.len())];
        if h.id == session.caller || h.id == session.callee || candidates.contains(&h.id) {
            continue;
        }
        // Bandwidth-biased acceptance: fast peers are more likely
        // supernodes.
        let accept = (h.nodal.bandwidth_kbps as f64 / 100_000.0).clamp(0.05, 1.0);
        if rng.gen_bool(accept) {
            candidates.push(h.id);
        }
    }

    let true_rtt = |relay: Option<HostId>| -> Option<f64> {
        match relay {
            None => scenario.host_rtt_ms(session.caller, session.callee),
            Some(r) => scenario.one_hop_rtt_ms(session.caller, r, session.callee),
        }
    };

    let mut probes = Vec::new();
    let mut switches = Vec::new();
    let mut queue: EventQueue<Event> = EventQueue::new();

    // Measure the direct path first; it is the initial current path.
    let mut current: Option<HostId> = None;
    let mut current_measured = f64::INFINITY;
    if let Some(direct) = true_rtt(None) {
        let measured = direct * (1.0 + config.measurement_noise * (2.0 * rng.gen::<f64>() - 1.0));
        probes.push(ProbeRecord {
            at: SimTime::ZERO,
            relay: None,
            measured_rtt_ms: measured,
        });
        current_measured = measured;
    }

    queue.schedule(SimTime(0), Event::ProbeRound);
    queue.schedule(SimTime(config.call_duration_ms), Event::EndCall);

    let mut rounds_without_switch = 0u32;
    let mut probed: Vec<HostId> = Vec::new();
    let mut best_known: Vec<HostId> = Vec::new();
    let mut background_probed: std::collections::HashSet<HostId> = Default::default();
    'sim: while let Some((now, event)) = queue.pop() {
        match event {
            Event::EndCall => break 'sim,
            Event::ProbeRound => {
                // In the background regime (no recent switch) the client
                // mostly re-measures its handful of best-known relays and
                // only occasionally tries a fresh one — the paper observes
                // 3–6 distinct relays probed after stabilization.
                let background = rounds_without_switch > config.slowdown_after_rounds;
                let probes_now = if background {
                    1
                } else {
                    config.probes_per_round
                };
                for _ in 0..probes_now {
                    let pick_known = background && !best_known.is_empty() && rng.gen_bool(0.95);
                    let relay = if pick_known {
                        best_known[rng.gen_range(0..best_known.len())]
                    } else {
                        match candidates.choose(&mut rng) {
                            Some(&r) => r,
                            None => break,
                        }
                    };
                    let Some(truth) = true_rtt(Some(relay)) else {
                        continue;
                    };
                    let noise = 1.0 + config.measurement_noise * (2.0 * rng.gen::<f64>() - 1.0);
                    let measured = truth * noise;
                    probes.push(ProbeRecord {
                        at: now,
                        relay: Some(relay),
                        measured_rtt_ms: measured,
                    });
                    if !probed.contains(&relay) {
                        probed.push(relay);
                    }
                    if background {
                        background_probed.insert(relay);
                    }
                    // Track the few best-measured relays for background
                    // re-probing.
                    if !best_known.contains(&relay) {
                        best_known.push(relay);
                        best_known.sort_by(|&x, &y| {
                            let m = |h: HostId| {
                                probes
                                    .iter()
                                    .rev()
                                    .find(|p| p.relay == Some(h))
                                    .map(|p| p.measured_rtt_ms)
                                    .unwrap_or(f64::INFINITY)
                            };
                            m(x).total_cmp(&m(y))
                        });
                        best_known.truncate(4);
                    }
                    if measured + config.switch_margin_ms < current_measured {
                        current = Some(relay);
                        current_measured = measured;
                        switches.push(Switch {
                            at: now,
                            to: current,
                            measured_rtt_ms: measured,
                        });
                        rounds_without_switch = 0;
                    }
                }
                rounds_without_switch = rounds_without_switch.saturating_add(1);
                let interval = if rounds_without_switch > config.slowdown_after_rounds {
                    config.probe_interval_ms * 4
                } else {
                    config.probe_interval_ms
                };
                // Jittered next round.
                let jitter = rng.gen_range(0..=interval / 4);
                queue.schedule(now.after_ms(interval + jitter), Event::ProbeRound);
            }
        }
    }

    let stabilization = switches.last().map(|s| s.at).unwrap_or(SimTime::ZERO);
    let mut same_as_pairs = 0;
    for i in 0..probed.len() {
        for j in (i + 1)..probed.len() {
            if pop.host(probed[i]).asn == pop.host(probed[j]).asn {
                same_as_pairs += 1;
            }
        }
    }

    SkypeReport {
        session,
        major_rtt_ms: true_rtt(current).unwrap_or(f64::INFINITY),
        major_relay: current,
        stabilization_s: stabilization.as_secs_f64(),
        probed_total: probed.len(),
        probed_after_stabilization: background_probed.len(),
        same_as_pairs,
        probes,
        switches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_workload::{Scenario, ScenarioConfig};

    fn scenario() -> Scenario {
        Scenario::build(ScenarioConfig::tiny(), 9)
    }

    fn session(s: &Scenario, i: usize, j: usize) -> Session {
        let hosts = s.population.hosts();
        Session {
            caller: hosts[i].id,
            callee: hosts[j].id,
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let s = scenario();
        let sess = session(&s, 0, 120);
        let a = simulate_call(&s, sess, &SkypeConfig::default());
        let b = simulate_call(&s, sess, &SkypeConfig::default());
        assert_eq!(a.probes, b.probes);
        assert_eq!(a.major_relay, b.major_relay);
    }

    #[test]
    fn probes_are_time_ordered_and_bounded_by_call() {
        let s = scenario();
        let r = simulate_call(&s, session(&s, 1, 90), &SkypeConfig::default());
        let cfg = SkypeConfig::default();
        for w in r.probes.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        assert!(r
            .probes
            .iter()
            .all(|p| p.at.as_ms() <= cfg.call_duration_ms));
    }

    #[test]
    fn stabilization_is_the_last_switch() {
        let s = scenario();
        let r = simulate_call(&s, session(&s, 2, 77), &SkypeConfig::default());
        match r.switches.last() {
            Some(last) => assert_eq!(r.stabilization_s, last.at.as_secs_f64()),
            None => assert_eq!(r.stabilization_s, 0.0),
        }
    }

    #[test]
    fn probed_counts_are_consistent() {
        let s = scenario();
        let r = simulate_call(&s, session(&s, 3, 60), &SkypeConfig::default());
        assert!(r.probed_after_stabilization <= r.probed_total);
        assert!(r.probed_total <= SkypeConfig::default().candidate_pool);
    }

    #[test]
    fn different_directions_can_choose_different_majors() {
        // Asymmetric sessions (§5.1): forward and backward directions are
        // independent hunts. With different seeds at least the probe
        // streams differ.
        let s = scenario();
        let fwd = simulate_call(&s, session(&s, 4, 140), &SkypeConfig::default());
        let bwd = simulate_call(
            &s,
            Session {
                caller: fwd.session.callee,
                callee: fwd.session.caller,
            },
            &SkypeConfig::default(),
        );
        assert_ne!(fwd.probes, bwd.probes);
    }

    #[test]
    fn switching_only_improves_measured_rtt() {
        let s = scenario();
        let r = simulate_call(&s, session(&s, 5, 130), &SkypeConfig::default());
        for w in r.switches.windows(2) {
            assert!(w[1].measured_rtt_ms < w[0].measured_rtt_ms);
        }
    }

    #[test]
    fn same_as_probing_happens_without_as_awareness() {
        // Limit 2: over several sessions, an AS-unaware prober will probe
        // multiple relays in one AS at least once.
        let s = scenario();
        let mut total_same_as = 0;
        for i in 0..8 {
            let r = simulate_call(&s, session(&s, i, 100 + i), &SkypeConfig::default());
            total_same_as += r.same_as_pairs;
        }
        assert!(
            total_same_as > 0,
            "expected at least one same-AS relay pair"
        );
    }
}
