//! OPT: the offline optimal relay selection.

use std::collections::HashMap;

use asap_cluster::Asn;
use asap_netsim::RELAY_DELAY_RTT_MS;
use asap_telemetry::LedgerScope;
use asap_voip::QualityRequirement;
use asap_workload::sessions::Session;
use asap_workload::{HostId, Scenario};

use crate::selector::{RelayPath, RelaySelector, SelectionOutcome};

/// The offline optimum of §7.1: "OPT always chooses relay nodes that give
/// the shortest overlay routing latency. This is an offline method with
/// all latency data on hand through one-hop and two-hop relay paths
/// iterations."
///
/// One-hop paths are enumerated exhaustively over every peer. Exhaustive
/// two-hop enumeration is O(hosts²) per session, which even the paper's
/// authors could only afford offline; we bound it by pairing the
/// `two_hop_candidates` best caller-side relays with the same number of
/// best callee-side relays (the optimal two-hop path overwhelmingly
/// combines short legs, so the bound loses nothing in practice — see
/// DESIGN.md). OPT spends no protocol messages: it is an oracle, not a
/// protocol.
#[derive(Debug, Clone)]
pub struct Opt {
    two_hop_candidates: usize,
    scope: LedgerScope,
}

impl Default for Opt {
    fn default() -> Self {
        Opt::new()
    }
}

impl Opt {
    /// One-hop-exhaustive OPT with a 32-candidate two-hop bound.
    pub fn new() -> Self {
        Opt {
            two_hop_candidates: 32,
            scope: LedgerScope::detached(),
        }
    }

    /// Sets the per-side candidate bound for two-hop enumeration (0
    /// disables two-hop search).
    pub fn with_two_hop_candidates(mut self, candidates: usize) -> Self {
        self.two_hop_candidates = candidates;
        self
    }

    /// Binds the (always-empty) scope — OPT is an oracle and records no
    /// messages, but the uniform binding keeps metered comparisons
    /// honest: its Fig. 18 cost really is zero in the same ledger.
    pub fn with_scope(mut self, scope: LedgerScope) -> Self {
        self.scope = scope;
        self
    }
}

impl RelaySelector for Opt {
    fn name(&self) -> &'static str {
        "OPT"
    }

    fn select(
        &self,
        scenario: &Scenario,
        session: Session,
        requirement: &QualityRequirement,
    ) -> SelectionOutcome {
        let pop = &scenario.population;
        let caller = pop.host(session.caller);
        let callee = pop.host(session.callee);

        // Cache AS-level leg RTTs: relay legs only differ by the relay's
        // AS and access delay.
        let mut leg_a: HashMap<Asn, Option<f64>> = HashMap::new();
        let mut leg_b: HashMap<Asn, Option<f64>> = HashMap::new();

        let mut out = SelectionOutcome::default();
        // (rtt, host) heaps of the best per-side legs for two-hop pairing.
        let mut best_from_a: Vec<(f64, HostId)> = Vec::new();
        let mut best_to_b: Vec<(f64, HostId)> = Vec::new();

        for host in pop.hosts() {
            if host.id == session.caller || host.id == session.callee {
                continue;
            }
            let a_leg = *leg_a
                .entry(host.asn)
                .or_insert_with(|| scenario.net.as_rtt_ms(caller.asn, host.asn));
            let b_leg = *leg_b
                .entry(host.asn)
                .or_insert_with(|| scenario.net.as_rtt_ms(host.asn, callee.asn));
            let access = 2.0 * host.access_ms;
            let (Some(a_leg), Some(b_leg)) = (a_leg, b_leg) else {
                continue;
            };
            let a_full = a_leg + 2.0 * caller.access_ms + access;
            let b_full = b_leg + access + 2.0 * callee.access_ms;
            let rtt = a_full + b_full + RELAY_DELAY_RTT_MS;
            let loss = {
                let la = scenario.net.as_loss(caller.asn, host.asn).unwrap_or(0.0);
                let lb = scenario.net.as_loss(host.asn, callee.asn).unwrap_or(0.0);
                1.0 - (1.0 - la) * (1.0 - lb)
            };
            out.consider(
                RelayPath {
                    relays: vec![host.id],
                    rtt_ms: rtt,
                    loss,
                },
                requirement,
            );
            if self.two_hop_candidates > 0 {
                push_best(&mut best_from_a, (a_full, host.id), self.two_hop_candidates);
                push_best(&mut best_to_b, (b_full, host.id), self.two_hop_candidates);
            }
        }

        // Two-hop: pair the best caller-side legs with the best
        // callee-side legs.
        for &(a_full, r1) in &best_from_a {
            for &(b_full, r2) in &best_to_b {
                if r1 == r2 {
                    continue;
                }
                let (h1, h2) = (pop.host(r1), pop.host(r2));
                let Some(mid) = scenario.net.as_rtt_ms(h1.asn, h2.asn) else {
                    continue;
                };
                let mid_full = mid + 2.0 * h1.access_ms + 2.0 * h2.access_ms;
                let rtt = a_full + mid_full + b_full + 2.0 * RELAY_DELAY_RTT_MS;
                let loss = scenario
                    .host_loss(session.caller, r1)
                    .and_then(|l1| {
                        let l2 = scenario.host_loss(r1, r2)?;
                        let l3 = scenario.host_loss(r2, session.callee)?;
                        Some(1.0 - (1.0 - l1) * (1.0 - l2) * (1.0 - l3))
                    })
                    .unwrap_or(0.0);
                // Two-hop paths are extra candidates for the shortest RTT;
                // they do not add to the quality-path count (Figs. 11/12
                // compare protocols, not the oracle).
                let better = match &out.best {
                    Some(b) => rtt < b.rtt_ms,
                    None => true,
                };
                if better {
                    out.best = Some(RelayPath {
                        relays: vec![r1, r2],
                        rtt_ms: rtt,
                        loss,
                    });
                }
            }
        }

        out
    }

    fn scope(&self) -> &LedgerScope {
        &self.scope
    }
}

/// Keeps the `cap` smallest entries (by RTT) in `heap`.
fn push_best(heap: &mut Vec<(f64, HostId)>, entry: (f64, HostId), cap: usize) {
    if heap.len() < cap {
        heap.push(entry);
        if heap.len() == cap {
            heap.sort_by(|a, b| a.0.total_cmp(&b.0));
        }
        return;
    }
    // Heap is full and sorted: replace the worst if better.
    if entry.0 < heap[cap - 1].0 {
        heap[cap - 1] = entry;
        let mut i = cap - 1;
        while i > 0 && heap[i].0 < heap[i - 1].0 {
            heap.swap(i, i - 1);
            i -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_workload::ScenarioConfig;

    #[test]
    fn opt_beats_or_matches_every_probing_method() {
        let s = Scenario::build(ScenarioConfig::tiny(), 5);
        let sess = Session {
            caller: HostId(0),
            callee: HostId(123),
        };
        let req = QualityRequirement::default();
        let opt = Opt::new().select(&s, sess, &req);
        let rand = crate::RandSel::new(50, 1).select(&s, sess, &req);
        let dedi = crate::Dedi::new(&s, 20).select(&s, sess, &req);
        let o = opt.best.as_ref().unwrap().rtt_ms;
        if let Some(r) = rand.best {
            assert!(o <= r.rtt_ms + 1e-9);
        }
        if let Some(d) = dedi.best {
            assert!(o <= d.rtt_ms + 1e-9);
        }
    }

    #[test]
    fn opt_one_hop_matches_scenario_arithmetic() {
        let s = Scenario::build(ScenarioConfig::tiny(), 5);
        let sess = Session {
            caller: HostId(0),
            callee: HostId(123),
        };
        let req = QualityRequirement::default();
        let opt = Opt::new().with_two_hop_candidates(0).select(&s, sess, &req);
        let best = opt.best.unwrap();
        assert_eq!(best.relays.len(), 1);
        let direct_eval = s
            .one_hop_rtt_ms(sess.caller, best.relays[0], sess.callee)
            .unwrap();
        assert!(
            (best.rtt_ms - direct_eval).abs() < 1e-9,
            "{} vs {direct_eval}",
            best.rtt_ms
        );
    }

    #[test]
    fn two_hop_never_hurts() {
        let s = Scenario::build(ScenarioConfig::tiny(), 5);
        let sess = Session {
            caller: HostId(7),
            callee: HostId(200),
        };
        let req = QualityRequirement::default();
        let one = Opt::new().with_two_hop_candidates(0).select(&s, sess, &req);
        let two = Opt::new()
            .with_two_hop_candidates(16)
            .select(&s, sess, &req);
        assert!(two.best.unwrap().rtt_ms <= one.best.unwrap().rtt_ms + 1e-9);
    }

    #[test]
    fn opt_spends_no_messages() {
        let s = Scenario::build(ScenarioConfig::tiny(), 5);
        let sess = Session {
            caller: HostId(0),
            callee: HostId(10),
        };
        let opt = Opt::new();
        let (_, spent) =
            crate::selector::select_metered(&opt, &s, sess, &QualityRequirement::default());
        assert_eq!(spent, 0);
    }

    #[test]
    fn push_best_keeps_smallest() {
        let mut heap = Vec::new();
        for (i, v) in [5.0, 1.0, 9.0, 3.0, 7.0, 2.0].iter().enumerate() {
            push_best(&mut heap, (*v, HostId(i as u32)), 3);
        }
        let vals: Vec<f64> = heap.iter().map(|e| e.0).collect();
        assert_eq!(vals, vec![1.0, 2.0, 3.0]);
    }
}
