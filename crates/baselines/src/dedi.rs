//! DEDI: dedicated relay nodes (RON-like).

use asap_telemetry::{LedgerScope, MessageKind};
use asap_voip::QualityRequirement;
use asap_workload::sessions::Session;
use asap_workload::{HostId, Scenario};

use crate::selector::{eval_one_hop, RelayLoad, RelaySelector, SelectionOutcome};

/// The RON-like baseline: a fixed set of dedicated relay nodes, one per
/// cluster, placed in the clusters whose ASes have the largest connection
/// degrees (§7.1: "DEDI probes 80 nodes in 80 clusters with the largest
/// connection degrees"). Every session probes all of them.
///
/// Like RON, this needs dedicated infrastructure and probes pairwise
/// regardless of the session — which is why it finds few quality paths
/// per probe and does not scale with the population.
#[derive(Debug, Clone)]
pub struct Dedi {
    nodes: Vec<HostId>,
    scope: LedgerScope,
    load: Option<RelayLoad>,
}

impl Dedi {
    /// Chooses the dedicated nodes for `scenario`: delegates of the
    /// `count` clusters with the largest AS connection degrees (ties by
    /// cluster id for determinism).
    pub fn new(scenario: &Scenario, count: usize) -> Self {
        let clustering = scenario.population.clustering();
        let graph = &scenario.internet.graph;
        let mut ranked: Vec<(usize, asap_cluster::ClusterId)> = clustering
            .clusters()
            .iter()
            .map(|c| (graph.degree(c.asn()), c.id()))
            .collect();
        ranked.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let nodes = ranked
            .iter()
            .take(count)
            .map(|&(_, id)| scenario.delegate_of(id))
            .collect();
        Dedi {
            nodes,
            scope: LedgerScope::detached(),
            load: None,
        }
    }

    /// Charges each session's chosen relay path to `load` — the
    /// relay-load parity measurement the overload evaluation compares
    /// against ASAP's bounded slots.
    pub fn with_load(mut self, load: RelayLoad) -> Self {
        self.load = Some(load);
        self
    }

    /// Records this method's probes into `scope` (e.g. a shared ledger's
    /// `"DEDI"` scope) instead of the default detached one.
    pub fn with_scope(mut self, scope: LedgerScope) -> Self {
        self.scope = scope;
        self
    }

    /// The dedicated relay nodes.
    pub fn nodes(&self) -> &[HostId] {
        &self.nodes
    }
}

impl RelaySelector for Dedi {
    fn name(&self) -> &'static str {
        "DEDI"
    }

    fn select(
        &self,
        scenario: &Scenario,
        session: Session,
        requirement: &QualityRequirement,
    ) -> SelectionOutcome {
        // One message per probed node, as in the seed accounting.
        self.scope
            .record(MessageKind::ProbeRequest, self.nodes.len() as u64);
        let mut out = SelectionOutcome::default();
        for &r in &self.nodes {
            if let Some(path) = eval_one_hop(scenario, session, r) {
                out.consider(path, requirement);
            }
        }
        if let (Some(load), Some(best)) = (&self.load, &out.best) {
            load.record(&best.relays);
        }
        out
    }

    fn scope(&self) -> &LedgerScope {
        &self.scope
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_workload::ScenarioConfig;

    #[test]
    fn picks_high_degree_clusters() {
        let s = Scenario::build(ScenarioConfig::tiny(), 5);
        let dedi = Dedi::new(&s, 5);
        assert_eq!(dedi.nodes().len(), 5);
        let g = &s.internet.graph;
        let deg_of = |h: HostId| g.degree(s.population.host(h).asn);
        let min_picked = dedi.nodes().iter().map(|&h| deg_of(h)).min().unwrap();
        // No unpicked cluster may have a strictly larger degree than every
        // picked one's minimum… check against the global maximum instead:
        let max_any = s
            .population
            .clustering()
            .clusters()
            .iter()
            .map(|c| g.degree(c.asn()))
            .max()
            .unwrap();
        let max_picked = dedi.nodes().iter().map(|&h| deg_of(h)).max().unwrap();
        assert_eq!(max_picked, max_any);
        let _ = min_picked;
    }

    #[test]
    fn probes_cost_one_message_each() {
        let s = Scenario::build(ScenarioConfig::tiny(), 5);
        let dedi = Dedi::new(&s, 8);
        let sess = Session {
            caller: HostId(0),
            callee: HostId(42),
        };
        let (out, spent) =
            crate::selector::select_metered(&dedi, &s, sess, &QualityRequirement::default());
        assert_eq!(spent, 8);
        assert_eq!(dedi.scope().count(MessageKind::ProbeRequest), 8);
        assert!(out.probed_nodes <= 8);
    }

    #[test]
    fn count_larger_than_clusters_is_capped() {
        let s = Scenario::build(ScenarioConfig::tiny(), 5);
        let dedi = Dedi::new(&s, 10_000);
        assert_eq!(dedi.nodes().len(), s.cluster_count());
    }

    #[test]
    fn deterministic() {
        let s = Scenario::build(ScenarioConfig::tiny(), 5);
        assert_eq!(Dedi::new(&s, 10).nodes(), Dedi::new(&s, 10).nodes());
    }
}
