//! Calibration of the synthetic latency distribution against the paper's
//! Fig. 2(a): of 10^5 random sessions, ~10^4 exceed 200 ms, ~10^3 exceed
//! 300 ms, and a handful exceed 5 s. The exact counts depend on the 2005
//! Internet; we assert the *shape* — a heavy tail with roughly the right
//! decades — at a reduced session count for test speed.

use asap_workload::{sessions, PopulationConfig, Scenario, ScenarioConfig};

#[test]
fn direct_rtt_tail_has_the_papers_shape() {
    // Needs a full-size AS topology: at the tiny test scale there are too
    // few transit ASes for congestion episodes to land on session paths.
    let mut cfg = ScenarioConfig::eval_scale();
    cfg.population = PopulationConfig {
        target_hosts: 4_000,
        ..Default::default()
    };
    let scenario = Scenario::build(cfg, 1234);
    let all = sessions::generate(&scenario.population, 4_000, 5);
    let with = sessions::with_direct_routes(&scenario, &all);
    let n = with.len() as f64;
    assert!(n >= 3_500.0, "too many unroutable sessions: {n}");

    let frac_above = |ms: f64| with.iter().filter(|s| s.direct_rtt_ms > ms).count() as f64 / n;

    let above200 = frac_above(200.0);
    let above300 = frac_above(300.0);
    let above5000 = frac_above(5_000.0);

    // Paper: ~10% above 200 ms, ~1% above 300 ms, ~0.01% above 5 s.
    assert!(
        (0.02..0.30).contains(&above200),
        "fraction above 200 ms = {above200:.4}, want ~0.10"
    );
    assert!(
        (0.002..0.08).contains(&above300),
        "fraction above 300 ms = {above300:.4}, want ~0.01"
    );
    assert!(
        above5000 <= 0.01,
        "fraction above 5 s = {above5000:.5}, want ~0.0001"
    );
    assert!(above200 > above300, "tail must thin with the threshold");
}
