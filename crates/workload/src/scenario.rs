//! The one-stop experiment scenario: Internet + network model +
//! population, with the host- and cluster-level latency queries every
//! relay-selection method needs.

use std::sync::Arc;

use asap_cluster::{Asn, ClusterId};
use asap_netsim::faults::FaultKind;
use asap_netsim::{AsCondition, NetConfig, NetModel, RELAY_DELAY_RTT_MS};
use asap_topology::{InternetConfig, InternetGenerator, SyntheticInternet};

use crate::population::{HostId, Population, PopulationConfig};

/// Configuration bundle for [`Scenario::build`].
#[derive(Debug, Clone, Default)]
pub struct ScenarioConfig {
    /// Topology generation parameters.
    pub internet: InternetConfig,
    /// Latency/loss model parameters.
    pub net: NetConfig,
    /// Population synthesis parameters.
    pub population: PopulationConfig,
}

impl ScenarioConfig {
    /// A small scenario for fast tests (a few hundred peers over ~150
    /// ASes).
    pub fn tiny() -> Self {
        ScenarioConfig {
            internet: InternetConfig::tiny(),
            net: NetConfig::default(),
            population: PopulationConfig::tiny(),
        }
    }

    /// The evaluation scale used throughout the paper's §7.2 figures:
    /// 23,366 online peers. Topology defaults (~4,000 ASes) keep a single
    /// run in the seconds range.
    pub fn eval_scale() -> Self {
        ScenarioConfig {
            internet: InternetConfig::default(),
            net: NetConfig::default(),
            population: PopulationConfig {
                target_hosts: 23_366,
                ..Default::default()
            },
        }
    }

    /// The §7.3 scalability scale: 103,625 online peers (4.434 × the
    /// evaluation scale).
    pub fn scalability_scale() -> Self {
        ScenarioConfig {
            internet: InternetConfig::default(),
            net: NetConfig::default(),
            population: PopulationConfig {
                target_hosts: 103_625,
                ..Default::default()
            },
        }
    }
}

/// A fully built experiment world.
///
/// ```
/// use asap_workload::{Scenario, ScenarioConfig};
///
/// let s = Scenario::build(ScenarioConfig::tiny(), 7);
/// let a = s.population.hosts()[0].id;
/// let b = s.population.hosts()[99].id;
/// let direct = s.host_rtt_ms(a, b).expect("routable");
/// // Relaying through some host r always costs at least the 40 ms
/// // round-trip forwarding delay on top of the two legs.
/// let r = s.population.hosts()[50].id;
/// let relayed = s.one_hop_rtt_ms(a, r, b).unwrap();
/// assert!(relayed >= s.host_rtt_ms(a, r).unwrap() + s.host_rtt_ms(r, b).unwrap());
/// let _ = direct;
/// ```
#[derive(Debug)]
pub struct Scenario {
    /// The synthetic Internet.
    pub internet: Arc<SyntheticInternet>,
    /// The latency/loss model over it.
    pub net: NetModel,
    /// The peer population.
    pub population: Population,
}

impl Scenario {
    /// Generates topology, network model, and population from one master
    /// seed (sub-seeds are derived so the three stages stay independent).
    pub fn build(config: ScenarioConfig, seed: u64) -> Self {
        let internet = Arc::new(InternetGenerator::new(config.internet, seed ^ 0x7090).generate());
        let net = NetModel::new(internet.clone(), config.net, seed ^ 0x1e7);
        let mut pop_cfg = config.population;
        pop_cfg.seed = seed ^ 0x90b;
        let population = Population::generate(&internet, &pop_cfg);
        Scenario {
            internet,
            net,
            population,
        }
    }

    /// Direct IP-routing RTT between two hosts (AS-level route plus both
    /// access links), or `None` if their ASes cannot reach each other.
    pub fn host_rtt_ms(&self, a: HostId, b: HostId) -> Option<f64> {
        let (ha, hb) = (self.population.host(a), self.population.host(b));
        self.net
            .host_rtt_ms((ha.asn, ha.access_ms), (hb.asn, hb.access_ms))
    }

    /// End-to-end loss probability of the direct route between two hosts.
    pub fn host_loss(&self, a: HostId, b: HostId) -> Option<f64> {
        let (ha, hb) = (self.population.host(a), self.population.host(b));
        self.net.as_loss(ha.asn, hb.asn)
    }

    /// RTT of the one-hop relay path `a → r → b`: both legs' RTTs plus the
    /// relay's 40 ms round-trip forwarding delay (paper §3.2).
    pub fn one_hop_rtt_ms(&self, a: HostId, r: HostId, b: HostId) -> Option<f64> {
        Some(self.host_rtt_ms(a, r)? + self.host_rtt_ms(r, b)? + RELAY_DELAY_RTT_MS)
    }

    /// RTT of the two-hop relay path `a → r1 → r2 → b` (two forwarding
    /// delays).
    pub fn two_hop_rtt_ms(&self, a: HostId, r1: HostId, r2: HostId, b: HostId) -> Option<f64> {
        Some(
            self.host_rtt_ms(a, r1)?
                + self.host_rtt_ms(r1, r2)?
                + self.host_rtt_ms(r2, b)?
                + 2.0 * RELAY_DELAY_RTT_MS,
        )
    }

    /// Loss of the one-hop relay path (legs are independent: the packet
    /// survives iff it survives both).
    pub fn one_hop_loss(&self, a: HostId, r: HostId, b: HostId) -> Option<f64> {
        let (l1, l2) = (self.host_loss(a, r)?, self.host_loss(r, b)?);
        Some(1.0 - (1.0 - l1) * (1.0 - l2))
    }

    /// The delegate host of a cluster.
    ///
    /// # Panics
    ///
    /// Panics if the cluster id is out of range.
    pub fn delegate_of(&self, cluster: ClusterId) -> HostId {
        let ip = self.population.clustering().cluster(cluster).delegate();
        self.population
            .host_by_ip(ip)
            .expect("delegate is a population host")
            .id
    }

    /// Cluster-to-cluster RTT, estimated delegate-to-delegate as the paper
    /// does ("the direct IP routing latency between two peers in two
    /// different clusters can be estimated by the direct IP routing
    /// latency between any pair of nodes in their corresponding
    /// clusters").
    pub fn cluster_rtt_ms(&self, a: ClusterId, b: ClusterId) -> Option<f64> {
        self.host_rtt_ms(self.delegate_of(a), self.delegate_of(b))
    }

    /// Cluster-to-cluster loss, delegate-to-delegate.
    pub fn cluster_loss(&self, a: ClusterId, b: ClusterId) -> Option<f64> {
        self.host_loss(self.delegate_of(a), self.delegate_of(b))
    }

    /// Number of clusters in the population.
    pub fn cluster_count(&self) -> usize {
        self.population.clustering().cluster_count()
    }

    /// Starts a transient congestion burst inside `asn`: every route
    /// crossing it pays the extra RTT and loss until
    /// [`Scenario::clear_as_condition`] heals it. No-op (returning
    /// `false`) when the AS is not in the topology.
    pub fn apply_as_congestion(&mut self, asn: Asn, added_rtt_ms: f64, added_loss: f64) -> bool {
        if self.net.internet().graph.index_of(asn).is_none() {
            return false;
        }
        self.net.set_condition(
            asn,
            AsCondition::Congested {
                added_rtt_ms,
                added_loss,
            },
        );
        true
    }

    /// Heals `asn` back to [`AsCondition::Healthy`]. No-op (returning
    /// `false`) when the AS is not in the topology.
    pub fn clear_as_condition(&mut self, asn: Asn) -> bool {
        if self.net.internet().graph.index_of(asn).is_none() {
            return false;
        }
        self.net.set_condition(asn, AsCondition::Healthy);
        true
    }

    /// Partitions `asn` from the rest of the network: every path
    /// crossing it fails until [`Scenario::clear_as_condition`] heals it.
    /// No-op (returning `false`) when the AS is not in the topology.
    pub fn apply_as_partition(&mut self, asn: Asn) -> bool {
        if self.net.internet().graph.index_of(asn).is_none() {
            return false;
        }
        self.net.set_condition(asn, AsCondition::Failed);
        true
    }

    /// Applies a scheduled fault to the live network model, for
    /// owned-scenario experiment drivers. Only network-level faults
    /// change anything here ([`FaultKind::AsCongestion`] and
    /// [`FaultKind::AsPartition`]); host- and protocol-level faults
    /// (crashes, message drops, stale epochs) belong to the protocol
    /// runtime and return `false` untouched.
    pub fn apply_fault(&mut self, kind: &FaultKind) -> bool {
        match *kind {
            FaultKind::AsCongestion {
                asn,
                added_rtt_ms,
                added_loss,
                ..
            } => self.apply_as_congestion(Asn(asn), added_rtt_ms, added_loss),
            FaultKind::AsPartition { asn, .. } => self.apply_as_partition(Asn(asn)),
            FaultKind::SurrogateCrash { .. }
            | FaultKind::HostCrash { .. }
            | FaultKind::MessageDropWindow { .. }
            | FaultKind::StaleCloseSet { .. } => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> Scenario {
        Scenario::build(ScenarioConfig::tiny(), 11)
    }

    /// The parallel session engine shares one `Scenario` across shard
    /// worker threads by reference; this pins the thread-safety
    /// contract so an interior-mutability change cannot silently break
    /// it.
    #[test]
    fn scenario_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Scenario>();
        assert_send_sync::<ScenarioConfig>();
    }

    #[test]
    fn build_is_deterministic() {
        let a = scenario();
        let b = scenario();
        assert_eq!(a.population.hosts(), b.population.hosts());
        let (h1, h2) = (a.population.hosts()[0].id, a.population.hosts()[50].id);
        assert_eq!(a.host_rtt_ms(h1, h2), b.host_rtt_ms(h1, h2));
    }

    #[test]
    fn relay_path_costs_forwarding_delay() {
        let s = scenario();
        let hosts = s.population.hosts();
        let (a, r, b) = (hosts[0].id, hosts[20].id, hosts[40].id);
        let one_hop = s.one_hop_rtt_ms(a, r, b).unwrap();
        let legs = s.host_rtt_ms(a, r).unwrap() + s.host_rtt_ms(r, b).unwrap();
        assert!((one_hop - legs - RELAY_DELAY_RTT_MS).abs() < 1e-9);
    }

    #[test]
    fn two_hop_costs_two_forwarding_delays() {
        let s = scenario();
        let h = s.population.hosts();
        let (a, r1, r2, b) = (h[0].id, h[10].id, h[30].id, h[60].id);
        let two = s.two_hop_rtt_ms(a, r1, r2, b).unwrap();
        let legs = s.host_rtt_ms(a, r1).unwrap()
            + s.host_rtt_ms(r1, r2).unwrap()
            + s.host_rtt_ms(r2, b).unwrap();
        assert!((two - legs - 2.0 * RELAY_DELAY_RTT_MS).abs() < 1e-9);
    }

    #[test]
    fn relay_loss_composes_independently() {
        let s = scenario();
        let h = s.population.hosts();
        let (a, r, b) = (h[3].id, h[33].id, h[63].id);
        let composed = s.one_hop_loss(a, r, b).unwrap();
        let (l1, l2) = (s.host_loss(a, r).unwrap(), s.host_loss(r, b).unwrap());
        assert!(composed >= l1.max(l2));
        assert!(composed <= l1 + l2 + 1e-12);
    }

    #[test]
    fn congestion_fault_inflates_and_heals() {
        let mut s = scenario();
        let hosts = s.population.hosts();
        // Two hosts in different ASes, routable.
        let a = hosts[0].id;
        let b = hosts
            .iter()
            .find(|h| h.asn != s.population.host(a).asn && s.host_rtt_ms(a, h.id).is_some())
            .expect("a routable cross-AS pair")
            .id;
        let asn = s.population.host(a).asn;
        let before = s.host_rtt_ms(a, b).unwrap();
        // Make sure we start from a healthy AS so before/after compare.
        assert!(s.clear_as_condition(asn));
        let baseline = s.host_rtt_ms(a, b).unwrap();
        let fault = FaultKind::AsCongestion {
            asn: asn.0,
            added_rtt_ms: 250.0,
            added_loss: 0.2,
            duration_ms: 30_000,
        };
        assert!(s.apply_fault(&fault));
        let congested = s.host_rtt_ms(a, b).unwrap();
        assert!(
            congested >= baseline + 250.0 - 1e-9,
            "congestion did not inflate: {baseline} → {congested}"
        );
        assert!(s.clear_as_condition(asn));
        assert_eq!(s.host_rtt_ms(a, b).unwrap(), baseline);
        // Protocol-level faults leave the network model alone.
        assert!(!s.apply_fault(&FaultKind::HostCrash { host: 0 }));
        let _ = before;
    }

    #[test]
    fn cluster_rtt_uses_delegates() {
        let s = scenario();
        let c0 = s.population.cluster_of(s.population.hosts()[0].id);
        let c_other = s.population.cluster_of(s.population.hosts()[150].id);
        if c0 != c_other {
            let via_cluster = s.cluster_rtt_ms(c0, c_other);
            let via_hosts = s.host_rtt_ms(s.delegate_of(c0), s.delegate_of(c_other));
            assert_eq!(via_cluster, via_hosts);
        }
    }
}
