//! Synthetic peer populations.

use asap_cluster::{Asn, ClusterLevel, Clustering, Ip, Prefix, PrefixTable};
use asap_topology::SyntheticInternet;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Dense identifier of a host within one [`Population`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct HostId(pub u32);

impl std::fmt::Display for HostId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "H{}", self.0)
    }
}

/// Nodal information a peer publishes to its cluster surrogate (paper
/// §6.1: "nodal information includes bandwidth, continuous online time,
/// node processing power, and other related information").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodalInfo {
    /// Uplink bandwidth in kbit/s.
    pub bandwidth_kbps: u32,
    /// Continuous online time in hours.
    pub uptime_hours: f64,
    /// Relative processing-power score in [0, 1].
    pub cpu_score: f64,
}

impl NodalInfo {
    /// A scalar capability score used to rank surrogate candidates: a
    /// powerful, stable, well-connected host scores high.
    pub fn capability(&self) -> f64 {
        let bw = (self.bandwidth_kbps as f64 / 10_000.0).min(1.0);
        let up = (self.uptime_hours / 168.0).min(1.0);
        0.4 * bw + 0.4 * up + 0.2 * self.cpu_score
    }
}

/// One VoIP peer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Host {
    /// Dense identifier within the population.
    pub id: HostId,
    /// The host's IP address.
    pub ip: Ip,
    /// The AS the host's prefix is originated by.
    pub asn: Asn,
    /// One-way access-link delay in milliseconds.
    pub access_ms: f64,
    /// Published nodal information.
    pub nodal: NodalInfo,
}

/// Parameters of population synthesis.
#[derive(Debug, Clone)]
pub struct PopulationConfig {
    /// Approximate number of peers to generate.
    pub target_hosts: usize,
    /// Maximum number of prefixes (clusters) a single AS originates.
    pub max_prefixes_per_as: usize,
    /// Range of per-host access-link one-way delays in milliseconds,
    /// drawn heavy-tailed (most hosts broadband near the low end; the
    /// 2005 Gnutella population skews broadband).
    pub access_ms: (f64, f64),
    /// RNG seed for cluster sizes, IPs, and nodal info.
    pub seed: u64,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            target_hosts: 20_000,
            max_prefixes_per_as: 3,
            access_ms: (0.5, 15.0),
            seed: 0,
        }
    }
}

impl PopulationConfig {
    /// A small population for fast tests.
    pub fn tiny() -> Self {
        PopulationConfig {
            target_hosts: 300,
            ..Default::default()
        }
    }
}

/// A synthesized peer population over a synthetic Internet.
///
/// Invariants: every host's IP falls in exactly one announced prefix; the
/// prefix's origin AS is the host's AS; cluster sizes are heavy-tailed
/// (90% ≤ 100 hosts).
#[derive(Debug, Clone)]
pub struct Population {
    hosts: Vec<Host>,
    by_ip: std::collections::HashMap<Ip, HostId>,
    announcements: Vec<(Prefix, Asn)>,
    prefix_table: PrefixTable,
    clustering: Clustering,
}

impl Population {
    /// Synthesizes a population on the stub ASes of `internet`.
    ///
    /// Host access delays are sampled from the hash stream of
    /// `config.seed` (heavy-tailed: mostly broadband, occasional
    /// modem-like stragglers), mirroring
    /// `asap_netsim::NetModel::sample_access_ms`.
    ///
    /// # Panics
    ///
    /// Panics if the Internet has no stub ASes.
    pub fn generate(internet: &SyntheticInternet, config: &PopulationConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut stubs = internet.stub_asns();
        assert!(!stubs.is_empty(), "internet has no stub ASes to host peers");
        stubs.shuffle(&mut rng);

        let mut hosts = Vec::new();
        let mut announcements = Vec::new();
        let mut prefix_counter = 0u32;
        let mut stub_iter = stubs.iter().cycle();

        while hosts.len() < config.target_hosts {
            let &asn = stub_iter.next().expect("cycle never ends");
            let prefixes = rng.gen_range(1..=config.max_prefixes_per_as);
            for _ in 0..prefixes {
                if hosts.len() >= config.target_hosts {
                    break;
                }
                // Heavy-tailed cluster size: Pareto with α ≈ 0.6 capped at
                // 1,000 — median ~3 hosts, ~94% of clusters ≤ 100 hosts,
                // a few ~1,000-host clusters, matching the paper's §6.3
                // statistics (103,625 IPs over 7,171 prefixes).
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                let size = (u.powf(-1.0 / 0.6).ceil() as usize).min(1_000);
                let size = size.min(config.target_hosts - hosts.len()).max(1);
                // A /22 holds up to 1022 hosts; allocate from a private
                // counter so prefixes never collide.
                let base = Ip((10 << 24) | (prefix_counter << 10));
                prefix_counter += 1;
                let prefix = Prefix::new(base, 22);
                announcements.push((prefix, asn));
                for i in 0..size {
                    let id = HostId(hosts.len() as u32);
                    let ip = prefix.nth(1 + i as u64);
                    let access_u: f64 = rng.gen();
                    let nodal = NodalInfo {
                        bandwidth_kbps: *[256u32, 768, 1_500, 3_000, 10_000, 100_000]
                            .choose(&mut rng)
                            .unwrap(),
                        uptime_hours: rng.gen_range(0.0..400.0f64),
                        cpu_score: rng.gen_range(0.0..1.0),
                    };
                    let (alo, ahi) = config.access_ms;
                    hosts.push(Host {
                        id,
                        ip,
                        asn,
                        access_ms: alo + access_u.powi(4) * (ahi - alo),
                        nodal,
                    });
                }
            }
        }

        let prefix_table: PrefixTable = announcements.iter().copied().collect();
        let ips: Vec<Ip> = hosts.iter().map(|h| h.ip).collect();
        let clustering = Clustering::from_ips(&ips, &prefix_table, ClusterLevel::Prefix);
        debug_assert_eq!(clustering.peer_count(), hosts.len());
        let by_ip = hosts.iter().map(|h| (h.ip, h.id)).collect();

        Population {
            hosts,
            by_ip,
            announcements,
            prefix_table,
            clustering,
        }
    }

    /// All hosts, indexable by `HostId.0`.
    pub fn hosts(&self) -> &[Host] {
        &self.hosts
    }

    /// The host with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn host(&self, id: HostId) -> &Host {
        &self.hosts[id.0 as usize]
    }

    /// The host owning `ip`, if any.
    pub fn host_by_ip(&self, ip: Ip) -> Option<&Host> {
        self.by_ip.get(&ip).map(|&id| self.host(id))
    }

    /// The `(prefix, origin AS)` announcements backing this population
    /// (input to RIB synthesis).
    pub fn announcements(&self) -> &[(Prefix, Asn)] {
        &self.announcements
    }

    /// The prefix → origin-AS table.
    pub fn prefix_table(&self) -> &PrefixTable {
        &self.prefix_table
    }

    /// The prefix-level clustering of the population.
    pub fn clustering(&self) -> &Clustering {
        &self.clustering
    }

    /// The cluster a host belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn cluster_of(&self, id: HostId) -> asap_cluster::ClusterId {
        self.clustering
            .cluster_of(self.host(id).ip)
            .expect("every host is clustered")
    }

    /// All member hosts of a cluster.
    pub fn cluster_members(&self, cluster: asap_cluster::ClusterId) -> Vec<HostId> {
        self.clustering
            .cluster(cluster)
            .members()
            .iter()
            .map(|&ip| self.host_by_ip(ip).expect("member is a host").id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_topology::{InternetConfig, InternetGenerator};

    fn population() -> (SyntheticInternet, Population) {
        let net = InternetGenerator::new(InternetConfig::tiny(), 1).generate();
        let pop = Population::generate(
            &net,
            &PopulationConfig {
                target_hosts: 800,
                ..Default::default()
            },
        );
        (net, pop)
    }

    #[test]
    fn hosts_reach_target() {
        let (_, pop) = population();
        assert_eq!(pop.hosts().len(), 800);
    }

    #[test]
    fn every_host_matches_its_announced_prefix_and_as() {
        let (_, pop) = population();
        for h in pop.hosts() {
            let (prefix, origin) = pop
                .prefix_table()
                .matched_prefix(h.ip)
                .expect("host IP mapped");
            assert!(prefix.contains(h.ip));
            assert_eq!(origin, h.asn, "host {} AS mismatch", h.ip);
        }
    }

    #[test]
    fn hosts_live_on_stub_ases() {
        let (net, pop) = population();
        let stubs: std::collections::HashSet<Asn> = net.stub_asns().into_iter().collect();
        assert!(pop.hosts().iter().all(|h| stubs.contains(&h.asn)));
    }

    #[test]
    fn cluster_sizes_are_heavy_tailed() {
        let net = InternetGenerator::new(InternetConfig::default(), 2).generate();
        let pop = Population::generate(
            &net,
            &PopulationConfig {
                target_hosts: 20_000,
                seed: 3,
                ..Default::default()
            },
        );
        let sizes = pop.clustering().size_distribution();
        let small = sizes.iter().filter(|&&s| s <= 100).count();
        let frac = small as f64 / sizes.len() as f64;
        assert!(frac >= 0.85, "only {frac:.2} of clusters ≤ 100 hosts");
        assert!(*sizes.last().unwrap() > 100, "no large cluster at all");
    }

    #[test]
    fn clustering_covers_all_hosts() {
        let (_, pop) = population();
        assert_eq!(pop.clustering().peer_count(), pop.hosts().len());
        for h in pop.hosts() {
            let c = pop.cluster_of(h.id);
            assert!(pop.cluster_members(c).contains(&h.id));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let net = InternetGenerator::new(InternetConfig::tiny(), 1).generate();
        let cfg = PopulationConfig {
            target_hosts: 200,
            seed: 9,
            ..Default::default()
        };
        let a = Population::generate(&net, &cfg);
        let b = Population::generate(&net, &cfg);
        assert_eq!(a.hosts(), b.hosts());
    }

    #[test]
    fn capability_rewards_power_and_stability() {
        let strong = NodalInfo {
            bandwidth_kbps: 100_000,
            uptime_hours: 300.0,
            cpu_score: 0.9,
        };
        let weak = NodalInfo {
            bandwidth_kbps: 256,
            uptime_hours: 0.5,
            cpu_score: 0.1,
        };
        assert!(strong.capability() > weak.capability());
    }

    #[test]
    fn host_by_ip_roundtrips() {
        let (_, pop) = population();
        let h = &pop.hosts()[17];
        assert_eq!(pop.host_by_ip(h.ip).unwrap().id, h.id);
    }
}
