//! Experiment trace (de)serialization.
//!
//! Experiment binaries in `asap-bench` dump their per-session results as
//! JSON lines so that EXPERIMENTS.md tables can be regenerated and so
//! that runs at different scales can be diffed. One line = one
//! [`SessionRecord`].

use std::io::{self, BufRead, Write};

use serde::{Deserialize, Serialize};

/// Per-session result row, common to all relay-selection methods.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionRecord {
    /// Experiment identifier (e.g. `"fig12"`).
    pub experiment: String,
    /// Relay-selection method (e.g. `"ASAP"`, `"DEDI"`).
    pub method: String,
    /// Session index within the run.
    pub session: u32,
    /// Direct IP-routing RTT in milliseconds.
    pub direct_rtt_ms: f64,
    /// Number of quality relay paths found.
    pub quality_paths: u64,
    /// Shortest relay-path RTT found, if any path was found.
    pub shortest_rtt_ms: Option<f64>,
    /// Highest MOS among found paths, if any.
    pub highest_mos: Option<f64>,
    /// Protocol messages spent on the selection.
    pub messages: u64,
}

/// Writes records as JSON lines.
///
/// # Errors
///
/// Returns any I/O or serialization error.
pub fn write_jsonl<W: Write>(mut w: W, records: &[SessionRecord]) -> io::Result<()> {
    for r in records {
        serde_json::to_writer(&mut w, r)?;
        writeln!(w)?;
    }
    Ok(())
}

/// Reads records from JSON lines, skipping blank lines.
///
/// # Errors
///
/// Returns any I/O or deserialization error.
pub fn read_jsonl<R: BufRead>(r: R) -> io::Result<Vec<SessionRecord>> {
    let mut out = Vec::new();
    for line in r.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        out.push(serde_json::from_str(&line)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<SessionRecord> {
        vec![
            SessionRecord {
                experiment: "fig12".into(),
                method: "ASAP".into(),
                session: 0,
                direct_rtt_ms: 412.5,
                quality_paths: 10_432,
                shortest_rtt_ms: Some(88.2),
                highest_mos: Some(4.02),
                messages: 214,
            },
            SessionRecord {
                experiment: "fig12".into(),
                method: "RAND".into(),
                session: 0,
                direct_rtt_ms: 412.5,
                quality_paths: 3,
                shortest_rtt_ms: None,
                highest_mos: None,
                messages: 200,
            },
        ]
    }

    #[test]
    fn jsonl_roundtrip() {
        let records = sample();
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &records).unwrap();
        let back = read_jsonl(io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &sample()).unwrap();
        buf.extend_from_slice(b"\n\n");
        let back = read_jsonl(io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn garbage_is_an_error() {
        let back = read_jsonl(io::BufReader::new(&b"not json"[..]));
        assert!(back.is_err());
    }
}
