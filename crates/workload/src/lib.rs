//! Workload generation for the ASAP VoIP peer-relay system.
//!
//! The paper's workload is a crawl of 269,413 Gnutella peer IPs, of which
//! 103,625 matched BGP prefixes and fell into 7,171 prefix clusters /
//! 1,461 ASes, with 100,000 random peer pairs as VoIP calling sessions.
//! This crate synthesizes the equivalent:
//!
//! * [`Population`] — peers spread over the synthetic Internet's stub
//!   ASes with heavy-tailed cluster sizes (90% of clusters hold ≤ 100
//!   hosts, a few reach ~1,000 — the §6.3 load-analysis statistics),
//!   per-host access delays, and nodal information (bandwidth, uptime,
//!   processing power) for surrogate election.
//! * [`sessions`] — seeded random session generation and the >300 ms
//!   "latent session" filter of §7.1.
//! * [`Scenario`] — the one-stop bundle (Internet + network model +
//!   population) every experiment, test, and example builds on.
//! * [`trace`] — JSON-lines (de)serialization of experiment results.
//!
//! # Example
//!
//! ```
//! use asap_workload::{Scenario, ScenarioConfig};
//!
//! let scenario = Scenario::build(ScenarioConfig::tiny(), 42);
//! assert!(scenario.population.hosts().len() >= 200);
//! let sessions = asap_workload::sessions::generate(&scenario.population, 10, 1);
//! for s in &sessions {
//!     // Every generated session connects two distinct live hosts.
//!     assert_ne!(s.caller, s.callee);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod population;
mod scenario;
pub mod sessions;
pub mod trace;

pub use population::{Host, HostId, NodalInfo, Population, PopulationConfig};
pub use scenario::{Scenario, ScenarioConfig};
