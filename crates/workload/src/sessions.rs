//! VoIP calling-session generation.
//!
//! The paper "randomly generate\[s\] 100,000 pairs of peers from \[the\]
//! collected Gnutella IP address pool to represent 100,000 VoIP calling
//! sessions, among which there are about 1,000 sessions having their
//! direct IP routing RTTs above 300 ms" (§7.1). These *latent sessions*
//! are the ones relay selection is evaluated on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::population::{HostId, Population};
use crate::scenario::Scenario;

/// One VoIP calling session between two peers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Session {
    /// The calling host.
    pub caller: HostId,
    /// The called host.
    pub callee: HostId,
}

/// Generates `n` random sessions between distinct hosts, seeded.
///
/// # Panics
///
/// Panics if the population has fewer than two hosts.
pub fn generate(population: &Population, n: usize, seed: u64) -> Vec<Session> {
    let count = population.hosts().len();
    assert!(count >= 2, "need at least two hosts to form a session");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let caller = HostId(rng.gen_range(0..count) as u32);
            let callee = loop {
                let c = HostId(rng.gen_range(0..count) as u32);
                if c != caller {
                    break c;
                }
            };
            Session { caller, callee }
        })
        .collect()
}

/// A session with its measured direct-route properties.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionWithDirect {
    /// The session.
    pub session: Session,
    /// Direct IP-routing RTT in milliseconds.
    pub direct_rtt_ms: f64,
    /// Direct-route loss probability.
    pub direct_loss: f64,
}

/// Evaluates the direct route of every session, dropping unroutable pairs
/// (the measurement analogue of King non-responses).
pub fn with_direct_routes(scenario: &Scenario, sessions: &[Session]) -> Vec<SessionWithDirect> {
    sessions
        .iter()
        .filter_map(|&session| {
            let direct_rtt_ms = scenario.host_rtt_ms(session.caller, session.callee)?;
            let direct_loss = scenario.host_loss(session.caller, session.callee)?;
            Some(SessionWithDirect {
                session,
                direct_rtt_ms,
                direct_loss,
            })
        })
        .collect()
}

/// Filters to the *latent sessions*: direct RTT above `threshold_ms`
/// (300 ms in the paper).
pub fn latent_sessions(
    sessions: &[SessionWithDirect],
    threshold_ms: f64,
) -> Vec<SessionWithDirect> {
    sessions
        .iter()
        .copied()
        .filter(|s| s.direct_rtt_ms > threshold_ms)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scenario, ScenarioConfig};

    #[test]
    fn sessions_are_distinct_pairs_and_deterministic() {
        let s = Scenario::build(ScenarioConfig::tiny(), 3);
        let a = generate(&s.population, 50, 7);
        let b = generate(&s.population, 50, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|x| x.caller != x.callee));
        assert_ne!(a, generate(&s.population, 50, 8));
    }

    #[test]
    fn direct_routes_are_populated() {
        let s = Scenario::build(ScenarioConfig::tiny(), 3);
        let sessions = generate(&s.population, 100, 1);
        let with = with_direct_routes(&s, &sessions);
        assert!(!with.is_empty());
        for sw in &with {
            assert!(sw.direct_rtt_ms > 0.0);
            assert!((0.0..=1.0).contains(&sw.direct_loss));
        }
    }

    #[test]
    fn latent_filter_respects_threshold() {
        let s = Scenario::build(ScenarioConfig::tiny(), 3);
        let with = with_direct_routes(&s, &generate(&s.population, 200, 2));
        let latent = latent_sessions(&with, 300.0);
        assert!(latent.iter().all(|s| s.direct_rtt_ms > 300.0));
        let non_latent = with.len() - latent.len();
        assert!(
            non_latent > 0,
            "some sessions should be below the threshold"
        );
    }

    #[test]
    #[should_panic(expected = "at least two hosts")]
    fn generation_needs_two_hosts() {
        let s = Scenario::build(ScenarioConfig::tiny(), 3);
        // Build an empty population view by requesting from a tiny one…
        // simplest: call with a population of one host is impossible to
        // construct cheaply, so simulate via direct panic check on n = 0
        // hosts using an empty slice is not possible; instead assert the
        // guard using the real API with a 1-host population.
        let mut cfg = crate::population::PopulationConfig::tiny();
        cfg.target_hosts = 1;
        let pop = crate::population::Population::generate(&s.internet, &cfg);
        let _ = generate(&pop, 1, 0);
    }
}
