//! Property tests for the log-scale histogram: bucket placement,
//! quantile error bounds, and merge semantics — plus the shard-merge
//! algebra the deterministic parallel session engine relies on
//! (associative, order-insensitive folds of registries and ledgers).

use asap_telemetry::{
    bucket_bounds, bucket_index, Histogram, MessageKind, Telemetry, BUCKETS, MESSAGE_KINDS,
    OVERFLOW, UNDERFLOW,
};
use proptest::prelude::*;

/// One shard's worth of synthetic telemetry activity.
#[derive(Debug, Clone)]
struct ShardFeed {
    counter_adds: Vec<(u8, u64)>,
    gauge_highs: Vec<(u8, i64)>,
    histogram_values: Vec<f64>,
    ledger_records: Vec<(u8, u64)>,
}

fn shard_feed() -> impl Strategy<Value = ShardFeed> {
    (
        proptest::collection::vec((0u8..4, 0u64..1000), 0..12),
        proptest::collection::vec((0u8..3, 0i64..1000), 0..8),
        proptest::collection::vec(0.01f64..1e6, 0..20),
        proptest::collection::vec((0u8..13, 0u64..50), 0..12),
    )
        .prop_map(
            |(counter_adds, gauge_highs, histogram_values, ledger_records)| ShardFeed {
                counter_adds,
                gauge_highs,
                histogram_values,
                ledger_records,
            },
        )
}

fn apply_feed(t: &Telemetry, feed: &ShardFeed) {
    for &(which, n) in &feed.counter_adds {
        t.registry().counter(&format!("c{which}")).add(n);
    }
    for &(which, v) in &feed.gauge_highs {
        let g = t.registry().gauge(&format!("g{which}"));
        g.set(g.get().max(v));
    }
    for &v in &feed.histogram_values {
        t.registry().histogram("h").record(v);
    }
    for &(kind, n) in &feed.ledger_records {
        t.ledger()
            .scope("S")
            .record_for_cluster(u32::from(kind), MESSAGE_KINDS[kind as usize], n);
    }
}

fn merged_snapshot(feeds: &[ShardFeed], order: &[usize]) -> String {
    let root = Telemetry::new();
    for &i in order {
        let shard = Telemetry::new();
        apply_feed(&shard, &feeds[i]);
        root.merge_from(&shard);
    }
    root.snapshot_json()
}

proptest! {
    /// Every positive finite value lands in a bucket whose bounds
    /// contain it.
    #[test]
    fn recorded_values_land_in_their_bucket(v in 1e-6f64..1e12) {
        let i = bucket_index(v);
        prop_assert!(i < BUCKETS);
        let (lo, hi) = bucket_bounds(i);
        prop_assert!(
            v >= lo && v < hi,
            "{v} placed in bucket {i} with bounds [{lo}, {hi})"
        );
    }

    /// Bucket bounds tile the positive axis: consecutive finite buckets
    /// share an edge, so no value can fall between buckets.
    #[test]
    fn buckets_tile_without_gaps(i in (UNDERFLOW + 1)..(OVERFLOW - 1)) {
        let (_, hi) = bucket_bounds(i);
        let (next_lo, _) = bucket_bounds(i + 1);
        prop_assert_eq!(hi, next_lo);
    }

    /// The quantile estimate is within one bucket width of the true
    /// quantile of the recorded stream (values kept in the finite
    /// bucket range so width is well defined).
    #[test]
    fn quantile_within_one_bucket_width(
        values in proptest::collection::vec(0.01f64..1e6, 1..200),
        q in 0.0f64..=1.0,
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut values = values;
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((q * (values.len() - 1) as f64).floor() as usize).min(values.len() - 1);
        let truth = values[rank];
        let estimate = h.quantile(q).unwrap();
        let (lo, hi) = bucket_bounds(bucket_index(truth));
        let width = hi - lo;
        prop_assert!(
            (estimate - truth).abs() <= width,
            "estimate {estimate} vs true {truth}, bucket width {width}"
        );
    }

    /// Merging two histograms equals one histogram fed the concatenated
    /// stream — same buckets, count, sum, and quantiles.
    #[test]
    fn merge_equals_concatenated_stream(
        xs in proptest::collection::vec(0.001f64..1e9, 0..100),
        ys in proptest::collection::vec(0.001f64..1e9, 0..100),
    ) {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for &v in &xs {
            a.record(v);
            all.record(v);
        }
        for &v in &ys {
            b.record(v);
            all.record(v);
        }
        a.merge_from(&b);
        prop_assert_eq!(a.snapshot(), all.snapshot());
    }

    /// Quantiles are never NaN: empty histograms answer `None` for
    /// every q, and any non-empty histogram answers a finite value.
    #[test]
    fn quantile_is_none_on_empty_and_finite_otherwise(
        values in proptest::collection::vec(0.0001f64..1e10, 0..50),
        q in 0.0f64..=1.0,
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        match h.quantile(q) {
            None => prop_assert!(values.is_empty()),
            Some(est) => {
                prop_assert!(!values.is_empty());
                prop_assert!(est.is_finite(), "quantile({q}) = {est}");
            }
        }
    }

    /// Folding shard telemetry is order-insensitive: merging the same
    /// shard feeds in two different orders yields byte-identical
    /// snapshots. This is the property that makes the parallel engine's
    /// output independent of scheduling.
    #[test]
    fn shard_merge_is_order_insensitive(
        feeds in proptest::collection::vec(shard_feed(), 1..5),
        seed in 0u64..1000,
    ) {
        let forward: Vec<usize> = (0..feeds.len()).collect();
        let mut shuffled = forward.clone();
        // Deterministic Fisher-Yates driven by the seed input.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        for i in (1..shuffled.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            shuffled.swap(i, (state as usize) % (i + 1));
        }
        prop_assert_eq!(
            merged_snapshot(&feeds, &forward),
            merged_snapshot(&feeds, &shuffled)
        );
    }

    /// Folding shard telemetry is associative: merging shards one at a
    /// time into the root equals pre-merging them pairwise first.
    #[test]
    fn shard_merge_is_associative(feeds in proptest::collection::vec(shard_feed(), 3..6)) {
        let flat: Vec<usize> = (0..feeds.len()).collect();
        let flat_result = merged_snapshot(&feeds, &flat);

        // Grouped: fold shards into two intermediate contexts, then
        // fold those into the root.
        let root = Telemetry::new();
        let mid = feeds.len() / 2;
        for group in [&feeds[..mid], &feeds[mid..]] {
            let intermediate = Telemetry::new();
            for feed in group {
                let shard = Telemetry::new();
                apply_feed(&shard, feed);
                intermediate.merge_from(&shard);
            }
            root.merge_from(&intermediate);
        }
        prop_assert_eq!(root.snapshot_json(), flat_result);
    }
}

#[test]
fn empty_histogram_quantile_is_none_not_nan() {
    let h = Histogram::new();
    for q in [0.0, 0.5, 0.99, 1.0] {
        assert_eq!(h.quantile(q), None);
    }
    let snap = h.snapshot();
    assert_eq!(snap.count, 0);
    assert_eq!(snap.p50, None);
    assert_eq!(snap.p99, None);
}

#[test]
fn single_value_histogram_quantiles_are_finite() {
    let h = Histogram::new();
    h.record(42.0);
    for q in [0.0, 0.5, 0.99, 1.0] {
        let est = h.quantile(q).expect("non-empty histogram yields Some");
        assert!(est.is_finite());
    }
}

#[test]
fn gauge_merge_keeps_high_water_mark() {
    let a = Telemetry::new();
    let b = Telemetry::new();
    a.registry().gauge("depth").set(12);
    b.registry().gauge("depth").set(9);
    a.merge_from(&b);
    assert_eq!(a.registry().gauge("depth").get(), 12);
    // And the other direction: the larger shard value wins.
    let c = Telemetry::new();
    c.registry().gauge("depth").set(40);
    a.merge_from(&c);
    assert_eq!(a.registry().gauge("depth").get(), 40);
}

#[test]
fn ledger_merge_sums_attribution_maps() {
    let a = Telemetry::new();
    let b = Telemetry::new();
    a.ledger()
        .scope("S")
        .record_for_node(3, MessageKind::Heartbeat, 2);
    b.ledger()
        .scope("S")
        .record_for_node(3, MessageKind::Heartbeat, 5);
    b.ledger()
        .scope("S")
        .record_for_node(8, MessageKind::Publish, 1);
    a.merge_from(&b);
    let snap = a.ledger().snapshot();
    assert_eq!(snap["S"].nodes[&3]["heartbeat"], 7);
    assert_eq!(snap["S"].nodes[&8]["publish"], 1);
    assert_eq!(snap["S"].total, 8);
}
