//! Property tests for the log-scale histogram: bucket placement,
//! quantile error bounds, and merge semantics.

use asap_telemetry::{bucket_bounds, bucket_index, Histogram, BUCKETS, OVERFLOW, UNDERFLOW};
use proptest::prelude::*;

proptest! {
    /// Every positive finite value lands in a bucket whose bounds
    /// contain it.
    #[test]
    fn recorded_values_land_in_their_bucket(v in 1e-6f64..1e12) {
        let i = bucket_index(v);
        prop_assert!(i < BUCKETS);
        let (lo, hi) = bucket_bounds(i);
        prop_assert!(
            v >= lo && v < hi,
            "{v} placed in bucket {i} with bounds [{lo}, {hi})"
        );
    }

    /// Bucket bounds tile the positive axis: consecutive finite buckets
    /// share an edge, so no value can fall between buckets.
    #[test]
    fn buckets_tile_without_gaps(i in (UNDERFLOW + 1)..(OVERFLOW - 1)) {
        let (_, hi) = bucket_bounds(i);
        let (next_lo, _) = bucket_bounds(i + 1);
        prop_assert_eq!(hi, next_lo);
    }

    /// The quantile estimate is within one bucket width of the true
    /// quantile of the recorded stream (values kept in the finite
    /// bucket range so width is well defined).
    #[test]
    fn quantile_within_one_bucket_width(
        values in proptest::collection::vec(0.01f64..1e6, 1..200),
        q in 0.0f64..=1.0,
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut values = values;
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((q * (values.len() - 1) as f64).floor() as usize).min(values.len() - 1);
        let truth = values[rank];
        let estimate = h.quantile(q).unwrap();
        let (lo, hi) = bucket_bounds(bucket_index(truth));
        let width = hi - lo;
        prop_assert!(
            (estimate - truth).abs() <= width,
            "estimate {estimate} vs true {truth}, bucket width {width}"
        );
    }

    /// Merging two histograms equals one histogram fed the concatenated
    /// stream — same buckets, count, sum, and quantiles.
    #[test]
    fn merge_equals_concatenated_stream(
        xs in proptest::collection::vec(0.001f64..1e9, 0..100),
        ys in proptest::collection::vec(0.001f64..1e9, 0..100),
    ) {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for &v in &xs {
            a.record(v);
            all.record(v);
        }
        for &v in &ys {
            b.record(v);
            all.record(v);
        }
        a.merge_from(&b);
        prop_assert_eq!(a.snapshot(), all.snapshot());
    }
}
