//! Sim-time span tracing.
//!
//! Spans are scoped timers keyed on the *virtual* clock — callers pass
//! the simulation's current millisecond timestamp in, and the tracer
//! never consults the wall clock, so traces are fully deterministic per
//! seed. Ending a span records its duration into a per-span-name
//! histogram in the shared [`Registry`] (`span.<name>.ms`) and, when a
//! sink is attached, appends one structured JSONL line. With the sink
//! disabled (the default) recording is atomics only — no allocation per
//! event.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::histogram::HistogramHandle;
use crate::registry::Registry;

/// Where finished-span events go.
#[derive(Debug, Clone, Default)]
pub enum EventSink {
    /// Drop events; only the duration histograms are fed. The default:
    /// zero allocation per span.
    #[default]
    Disabled,
    /// Buffer JSONL lines in memory; drain with
    /// [`SpanTracer::drain_events`].
    Buffer(Arc<Mutex<Vec<String>>>),
}

impl EventSink {
    /// An in-memory buffering sink.
    pub fn buffer() -> Self {
        EventSink::Buffer(Arc::new(Mutex::new(Vec::new())))
    }
}

/// An open span: a named interval of virtual time. Obtained from
/// [`SpanTracer::start`] and closed with [`SpanTracer::end`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// The span's static name (also names its duration histogram).
    pub name: &'static str,
    /// Unique id within the tracer (assigned in start order, so
    /// deterministic for a deterministic simulation).
    pub id: u64,
    /// Virtual start time in milliseconds.
    pub start_ms: u64,
}

#[derive(Debug, Default)]
struct TracerInner {
    next_id: AtomicU64,
    /// Cached duration-histogram handles, one per span name; the
    /// registry mutex is only touched on first use of a name.
    histograms: Mutex<BTreeMap<&'static str, HistogramHandle>>,
}

/// The span tracer. Clones are handles onto the same state.
#[derive(Debug, Clone)]
pub struct SpanTracer {
    registry: Registry,
    sink: EventSink,
    inner: Arc<TracerInner>,
}

impl SpanTracer {
    /// A tracer recording durations into `registry`, events disabled.
    pub fn new(registry: Registry) -> Self {
        SpanTracer {
            registry,
            sink: EventSink::Disabled,
            inner: Arc::new(TracerInner::default()),
        }
    }

    /// Replaces the event sink (e.g. with [`EventSink::buffer`]).
    pub fn with_sink(mut self, sink: EventSink) -> Self {
        self.sink = sink;
        self
    }

    /// Opens a span named `name` at virtual time `now_ms`.
    pub fn start(&self, name: &'static str, now_ms: u64) -> Span {
        Span {
            name,
            id: self.inner.next_id.fetch_add(1, Ordering::Relaxed),
            start_ms: now_ms,
        }
    }

    /// Closes `span` at virtual time `now_ms`, recording its duration
    /// into the `span.<name>.ms` histogram and emitting a JSONL event
    /// when the sink is enabled. Returns the duration in milliseconds.
    pub fn end(&self, span: Span, now_ms: u64) -> u64 {
        let duration = now_ms.saturating_sub(span.start_ms);
        self.duration_histogram(span.name).record(duration as f64);
        if let EventSink::Buffer(buf) = &self.sink {
            buf.lock().push(format!(
                "{{\"span\":\"{}\",\"id\":{},\"start_ms\":{},\"end_ms\":{},\"duration_ms\":{}}}",
                span.name, span.id, span.start_ms, now_ms, duration
            ));
        }
        duration
    }

    /// Drains buffered JSONL event lines (empty when the sink is
    /// disabled).
    pub fn drain_events(&self) -> Vec<String> {
        match &self.sink {
            EventSink::Disabled => Vec::new(),
            EventSink::Buffer(buf) => std::mem::take(&mut *buf.lock()),
        }
    }

    fn duration_histogram(&self, name: &'static str) -> HistogramHandle {
        let mut cache = self.inner.histograms.lock();
        if let Some(h) = cache.get(name) {
            return h.clone();
        }
        let h = self.registry.histogram(&format!("span.{name}.ms"));
        cache.insert(name, h.clone());
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_feed_duration_histograms() {
        let registry = Registry::new();
        let tracer = SpanTracer::new(registry.clone());
        let s = tracer.start("call", 100);
        assert_eq!(tracer.end(s, 350), 250);
        let snap = registry.snapshot();
        assert_eq!(snap.histograms["span.call.ms"].count, 1);
    }

    #[test]
    fn ids_are_sequential() {
        let tracer = SpanTracer::new(Registry::new());
        assert_eq!(tracer.start("a", 0).id, 0);
        assert_eq!(tracer.start("b", 0).id, 1);
        assert_eq!(tracer.start("a", 0).id, 2);
    }

    #[test]
    fn buffer_sink_emits_jsonl() {
        let tracer = SpanTracer::new(Registry::new()).with_sink(EventSink::buffer());
        let s = tracer.start("partition", 10);
        tracer.end(s, 60);
        let lines = tracer.drain_events();
        assert_eq!(lines.len(), 1);
        assert_eq!(
            lines[0],
            "{\"span\":\"partition\",\"id\":0,\"start_ms\":10,\"end_ms\":60,\"duration_ms\":50}"
        );
        assert!(tracer.drain_events().is_empty());
    }

    #[test]
    fn disabled_sink_buffers_nothing() {
        let tracer = SpanTracer::new(Registry::new());
        let s = tracer.start("x", 0);
        tracer.end(s, 5);
        assert!(tracer.drain_events().is_empty());
    }
}
