//! Deterministic telemetry for the ASAP reproduction.
//!
//! Three pieces, combined behind the [`Telemetry`] facade:
//!
//! * a metrics [`Registry`] of atomic [`Counter`]s, [`Gauge`]s, and
//!   fixed-bucket log-scale [`Histogram`]s with quantile estimation;
//! * a [`SpanTracer`] for sim-time spans — scoped timers keyed on the
//!   virtual clock, never the wall clock, with an optional JSONL
//!   [`EventSink`];
//! * a [`MessageLedger`] of typed control-plane [`MessageKind`]s with
//!   per-scope, per-cluster, and per-node attribution — the single
//!   source of truth for the paper's overhead figures (Fig. 18, §6.3).
//!
//! # Determinism contract
//!
//! Everything here snapshots byte-identically for a given simulation
//! seed: all accumulators are integers or fixed-point (no float
//! accumulation order dependence), all snapshot maps are `BTreeMap`s
//! (no registration-order dependence), and nothing reads the wall
//! clock. Recording on the hot path is atomic adds only; with the event
//! sink disabled (the default) no allocation happens per event.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod ledger;
pub mod registry;
pub mod spans;

pub use histogram::{
    bucket_bounds, bucket_index, Histogram, HistogramHandle, HistogramSnapshot, BUCKETS, OVERFLOW,
    UNDERFLOW,
};
pub use ledger::{LedgerScope, MessageKind, MessageLedger, ScopeSnapshot, MESSAGE_KINDS};
pub use registry::{Counter, Gauge, Registry, RegistrySnapshot};
pub use spans::{EventSink, Span, SpanTracer};

use std::collections::BTreeMap;

use serde::{Serialize, Value};

/// The combined telemetry context handed through a simulation: one
/// registry, one ledger, one span tracer. Clones are handles onto the
/// same state, so every subsystem records into the same snapshot.
#[derive(Debug, Clone)]
pub struct Telemetry {
    registry: Registry,
    ledger: MessageLedger,
    spans: SpanTracer,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// A fresh telemetry context with the event sink disabled.
    pub fn new() -> Self {
        let registry = Registry::new();
        Telemetry {
            spans: SpanTracer::new(registry.clone()),
            ledger: MessageLedger::new(),
            registry,
        }
    }

    /// A fresh context whose span tracer buffers JSONL events.
    pub fn with_event_buffer() -> Self {
        let registry = Registry::new();
        Telemetry {
            spans: SpanTracer::new(registry.clone()).with_sink(EventSink::buffer()),
            ledger: MessageLedger::new(),
            registry,
        }
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The message-overhead ledger.
    pub fn ledger(&self) -> &MessageLedger {
        &self.ledger
    }

    /// The span tracer.
    pub fn spans(&self) -> &SpanTracer {
        &self.spans
    }

    /// Folds another telemetry context into this one: counters and
    /// ledger counts add, gauges take the maximum (all gauges are
    /// high-water marks), histograms merge bucket-wise. The combine is
    /// associative and commutative, which is what lets the parallel
    /// session engine give each shard a private context and fold them
    /// back in shard order with a seed-stable result. Span event
    /// buffers are not merged — shards run with the sink disabled.
    pub fn merge_from(&self, other: &Telemetry) {
        self.registry.merge_from(&other.registry);
        self.ledger.merge_from(&other.ledger);
    }

    /// A deterministic snapshot of every metric and ledger scope.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            metrics: self.registry.snapshot(),
            messages: self.ledger.snapshot(),
        }
    }

    /// The snapshot as JSON — byte-identical across runs with the same
    /// seed.
    pub fn snapshot_json(&self) -> String {
        serde_json::to_string(&self.snapshot()).expect("telemetry snapshot serializes")
    }
}

/// A full telemetry snapshot: registry metrics plus the per-scope
/// message ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// Counters, gauges, and histograms by name.
    pub metrics: RegistrySnapshot,
    /// Message-ledger scopes by name.
    pub messages: BTreeMap<String, ScopeSnapshot>,
}

impl Serialize for TelemetrySnapshot {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("metrics".to_owned(), self.metrics.to_value()),
            (
                "messages".to_owned(),
                Value::Object(
                    self.messages
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_value()))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_shares_state_across_clones() {
        let t = Telemetry::new();
        let t2 = t.clone();
        t.registry().counter("calls").inc();
        t2.ledger().scope("ASAP").record(MessageKind::Heartbeat, 3);
        let snap = t.snapshot();
        assert_eq!(snap.metrics.counters["calls"], 1);
        assert_eq!(snap.messages["ASAP"].kinds["heartbeat"], 3);
    }

    #[test]
    fn merge_combines_counters_gauges_histograms_and_ledger() {
        let a = Telemetry::new();
        let b = Telemetry::new();
        a.registry().counter("calls").add(3);
        b.registry().counter("calls").add(4);
        b.registry().counter("only_b").inc();
        a.registry().gauge("depth").set(7);
        b.registry().gauge("depth").set(5);
        a.registry().histogram("rtt").record(10.0);
        b.registry().histogram("rtt").record(20.0);
        a.ledger().scope("ASAP").record(MessageKind::Heartbeat, 2);
        b.ledger()
            .scope("ASAP")
            .record_for_cluster(9, MessageKind::Heartbeat, 5);
        a.merge_from(&b);
        let snap = a.snapshot();
        assert_eq!(snap.metrics.counters["calls"], 7);
        assert_eq!(snap.metrics.counters["only_b"], 1);
        assert_eq!(snap.metrics.gauges["depth"], 7);
        assert_eq!(snap.metrics.histograms["rtt"].count, 2);
        assert_eq!(snap.messages["ASAP"].kinds["heartbeat"], 7);
        assert_eq!(snap.messages["ASAP"].clusters[&9]["heartbeat"], 5);
    }

    #[test]
    fn merge_into_self_is_a_no_op() {
        let t = Telemetry::new();
        t.registry().counter("c").add(5);
        t.ledger().scope("S").record(MessageKind::Publish, 3);
        let before = t.snapshot_json();
        let alias = t.clone();
        t.merge_from(&alias);
        assert_eq!(t.snapshot_json(), before);
    }

    #[test]
    fn snapshot_json_is_stable_across_equal_feeds() {
        let feed = |t: &Telemetry| {
            t.registry().histogram("rtt").record(42.0);
            t.registry().counter("b").inc();
            t.registry().counter("a").add(2);
            t.ledger().scope("X").record(MessageKind::ProbeRequest, 4);
            let s = t.spans().start("call", 100);
            t.spans().end(s, 180);
        };
        let t1 = Telemetry::new();
        let t2 = Telemetry::new();
        feed(&t1);
        feed(&t2);
        assert_eq!(t1.snapshot_json(), t2.snapshot_json());
    }
}
