//! The unified control-plane message ledger.
//!
//! The paper's evaluation is ultimately about protocol *cost*: Fig. 18
//! compares per-session selection overhead across methods, and the §6.3
//! load analysis breaks traffic down by type. Before this subsystem the
//! repro counted messages in three disconnected places (the baseline
//! selectors, `core::system`, and the event simulation); the ledger is
//! the single source of truth they all record into.
//!
//! A [`MessageLedger`] holds one [`LedgerScope`] per protocol or
//! subsystem (`"ASAP"`, `"DEDI"`, `"ASAP.construction"`, …). A scope
//! keeps one atomic counter per [`MessageKind`] — recording on the hot
//! path is a single atomic add — plus optional per-cluster and per-node
//! attribution maps for the load-sharing analyses.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Serialize, Value};

/// Typed control-plane message kinds, covering every message the
/// protocol machine and the baselines send.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum MessageKind {
    /// Join handshake request to a bootstrap node.
    JoinRequest,
    /// Join handshake reply.
    JoinReply,
    /// Close-cluster-set fetch request to a surrogate.
    CloseSetRequest,
    /// Close-cluster-set fetch reply.
    CloseSetReply,
    /// Periodic nodal-information publish to the cluster surrogate.
    Publish,
    /// RTT probe request (probing baselines, MIX-rung fallback, and
    /// close-set construction measurements).
    ProbeRequest,
    /// RTT probe reply.
    ProbeReply,
    /// Liveness heartbeat from a monitored replica member.
    Heartbeat,
    /// Warm-handoff quorum round and promotion notification.
    Handoff,
    /// Cold re-election notification (bootstrap + cluster members).
    Election,
    /// Call-setup pings (direct-route ping and failover re-pings).
    CallSetup,
    /// Hedged close-set fetch request to a standby replica (issued when
    /// the primary leg exceeds the hedge delay).
    HedgeRequest,
    /// Hedged close-set fetch reply from a standby replica.
    HedgeReply,
}

/// All kinds, in declaration order (the order scope snapshots use).
pub const MESSAGE_KINDS: [MessageKind; 13] = [
    MessageKind::JoinRequest,
    MessageKind::JoinReply,
    MessageKind::CloseSetRequest,
    MessageKind::CloseSetReply,
    MessageKind::Publish,
    MessageKind::ProbeRequest,
    MessageKind::ProbeReply,
    MessageKind::Heartbeat,
    MessageKind::Handoff,
    MessageKind::Election,
    MessageKind::CallSetup,
    MessageKind::HedgeRequest,
    MessageKind::HedgeReply,
];

impl MessageKind {
    /// Stable snake_case name used in snapshots.
    pub fn name(self) -> &'static str {
        match self {
            MessageKind::JoinRequest => "join_request",
            MessageKind::JoinReply => "join_reply",
            MessageKind::CloseSetRequest => "close_set_request",
            MessageKind::CloseSetReply => "close_set_reply",
            MessageKind::Publish => "publish",
            MessageKind::ProbeRequest => "probe_request",
            MessageKind::ProbeReply => "probe_reply",
            MessageKind::Heartbeat => "heartbeat",
            MessageKind::Handoff => "handoff",
            MessageKind::Election => "election",
            MessageKind::CallSetup => "call_setup",
            MessageKind::HedgeRequest => "hedge_request",
            MessageKind::HedgeReply => "hedge_reply",
        }
    }
}

const KINDS: usize = MESSAGE_KINDS.len();

#[derive(Debug)]
struct ScopeCells {
    counts: [AtomicU64; KINDS],
    /// cluster id → per-kind counts (attribution is colder than the
    /// per-kind totals, so a mutexed map is fine).
    clusters: Mutex<BTreeMap<u32, [u64; KINDS]>>,
    /// node id → per-kind counts.
    nodes: Mutex<BTreeMap<u32, [u64; KINDS]>>,
}

impl Default for ScopeCells {
    fn default() -> Self {
        ScopeCells {
            counts: [(); KINDS].map(|_| AtomicU64::new(0)),
            clusters: Mutex::new(BTreeMap::new()),
            nodes: Mutex::new(BTreeMap::new()),
        }
    }
}

/// A handle onto one scope's message counters (cheap to clone; all
/// clones record into the same cells).
#[derive(Debug, Clone, Default)]
pub struct LedgerScope(Arc<ScopeCells>);

impl LedgerScope {
    /// A scope detached from any ledger (selectors constructed without a
    /// shared ledger still meter themselves).
    pub fn detached() -> Self {
        Self::default()
    }

    /// Records `n` messages of `kind`. One atomic add.
    pub fn record(&self, kind: MessageKind, n: u64) {
        self.0.counts[kind as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` messages of `kind` attributed to `cluster` (also
    /// counted in the scope totals).
    pub fn record_for_cluster(&self, cluster: u32, kind: MessageKind, n: u64) {
        self.record(kind, n);
        self.0.clusters.lock().entry(cluster).or_insert([0; KINDS])[kind as usize] += n;
    }

    /// Records `n` messages of `kind` attributed to `node` (also counted
    /// in the scope totals).
    pub fn record_for_node(&self, node: u32, kind: MessageKind, n: u64) {
        self.record(kind, n);
        self.0.nodes.lock().entry(node).or_insert([0; KINDS])[kind as usize] += n;
    }

    /// Messages of one kind recorded so far.
    pub fn count(&self, kind: MessageKind) -> u64 {
        self.0.counts[kind as usize].load(Ordering::Relaxed)
    }

    /// Total messages across all kinds.
    pub fn total(&self) -> u64 {
        self.0
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Folds another scope's counts into this one: per-kind totals and
    /// per-cluster / per-node attributions all add. Addition is
    /// associative and commutative, so shard scopes merged in any
    /// grouping produce the same snapshot. Merging a scope into itself
    /// is a no-op.
    pub fn merge_from(&self, other: &LedgerScope) {
        if Arc::ptr_eq(&self.0, &other.0) {
            return;
        }
        for &kind in &MESSAGE_KINDS {
            let n = other.0.counts[kind as usize].load(Ordering::Relaxed);
            if n > 0 {
                self.0.counts[kind as usize].fetch_add(n, Ordering::Relaxed);
            }
        }
        let mut clusters = self.0.clusters.lock();
        for (&id, cells) in other.0.clusters.lock().iter() {
            let mine = clusters.entry(id).or_insert([0; KINDS]);
            for (slot, &n) in mine.iter_mut().zip(cells.iter()) {
                *slot += n;
            }
        }
        drop(clusters);
        let mut nodes = self.0.nodes.lock();
        for (&id, cells) in other.0.nodes.lock().iter() {
            let mine = nodes.entry(id).or_insert([0; KINDS]);
            for (slot, &n) in mine.iter_mut().zip(cells.iter()) {
                *slot += n;
            }
        }
    }

    /// A deterministic snapshot of this scope.
    pub fn snapshot(&self) -> ScopeSnapshot {
        let kinds: BTreeMap<&'static str, u64> = MESSAGE_KINDS
            .iter()
            .filter_map(|&k| {
                let c = self.count(k);
                (c > 0).then_some((k.name(), c))
            })
            .collect();
        let per_kind_map = |cells: &[u64; KINDS]| -> BTreeMap<&'static str, u64> {
            MESSAGE_KINDS
                .iter()
                .filter_map(|&k| {
                    let c = cells[k as usize];
                    (c > 0).then_some((k.name(), c))
                })
                .collect()
        };
        ScopeSnapshot {
            total: self.total(),
            kinds,
            clusters: self
                .0
                .clusters
                .lock()
                .iter()
                .map(|(&c, cells)| (c, per_kind_map(cells)))
                .collect(),
            nodes: self
                .0
                .nodes
                .lock()
                .iter()
                .map(|(&n, cells)| (n, per_kind_map(cells)))
                .collect(),
        }
    }
}

/// The ledger: named scopes over shared cells.
#[derive(Debug, Clone, Default)]
pub struct MessageLedger(Arc<Mutex<BTreeMap<String, LedgerScope>>>);

impl MessageLedger {
    /// A fresh, empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// The scope named `name`, created on first use. Keep the handle;
    /// recording through it never re-locks the ledger.
    pub fn scope(&self, name: &str) -> LedgerScope {
        let mut scopes = self.0.lock();
        if let Some(s) = scopes.get(name) {
            return s.clone();
        }
        let s = LedgerScope::default();
        scopes.insert(name.to_owned(), s.clone());
        s
    }

    /// Folds every scope of `other` into the same-named scope here
    /// (creating scopes as needed). Merging a ledger into itself is a
    /// no-op.
    pub fn merge_from(&self, other: &MessageLedger) {
        if Arc::ptr_eq(&self.0, &other.0) {
            return;
        }
        let theirs: Vec<(String, LedgerScope)> = other
            .0
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        for (name, scope) in theirs {
            self.scope(&name).merge_from(&scope);
        }
    }

    /// Total messages across every scope.
    pub fn total(&self) -> u64 {
        self.0.lock().values().map(|s| s.total()).sum()
    }

    /// A deterministic snapshot of every scope, ordered by name.
    pub fn snapshot(&self) -> BTreeMap<String, ScopeSnapshot> {
        self.0
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect()
    }
}

/// Point-in-time state of one ledger scope: the per-kind message-count
/// breakdown plus optional per-cluster / per-node attribution.
#[derive(Debug, Clone, PartialEq)]
pub struct ScopeSnapshot {
    /// Total messages across all kinds.
    pub total: u64,
    /// Non-zero per-kind counts, by stable kind name.
    pub kinds: BTreeMap<&'static str, u64>,
    /// Per-cluster attribution (cluster id → non-zero per-kind counts).
    pub clusters: BTreeMap<u32, BTreeMap<&'static str, u64>>,
    /// Per-node attribution (node id → non-zero per-kind counts).
    pub nodes: BTreeMap<u32, BTreeMap<&'static str, u64>>,
}

fn kinds_value(kinds: &BTreeMap<&'static str, u64>) -> Value {
    Value::Object(
        kinds
            .iter()
            .map(|(&k, &v)| (k.to_owned(), Value::U64(v)))
            .collect(),
    )
}

fn attribution_value(map: &BTreeMap<u32, BTreeMap<&'static str, u64>>) -> Value {
    Value::Object(
        map.iter()
            .map(|(id, kinds)| (id.to_string(), kinds_value(kinds)))
            .collect(),
    )
}

impl Serialize for ScopeSnapshot {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("total".to_owned(), Value::U64(self.total)),
            ("kinds".to_owned(), kinds_value(&self.kinds)),
            ("clusters".to_owned(), attribution_value(&self.clusters)),
            ("nodes".to_owned(), attribution_value(&self.nodes)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_share_cells_by_name() {
        let ledger = MessageLedger::new();
        let a = ledger.scope("ASAP");
        let b = ledger.scope("ASAP");
        a.record(MessageKind::CallSetup, 2);
        b.record(MessageKind::Heartbeat, 1);
        assert_eq!(ledger.scope("ASAP").total(), 3);
        assert_eq!(ledger.total(), 3);
    }

    #[test]
    fn attribution_feeds_both_levels() {
        let scope = LedgerScope::detached();
        scope.record_for_cluster(7, MessageKind::CloseSetRequest, 3);
        scope.record_for_node(42, MessageKind::Heartbeat, 2);
        assert_eq!(scope.count(MessageKind::CloseSetRequest), 3);
        assert_eq!(scope.total(), 5);
        let snap = scope.snapshot();
        assert_eq!(snap.clusters[&7]["close_set_request"], 3);
        assert_eq!(snap.nodes[&42]["heartbeat"], 2);
    }

    #[test]
    fn snapshot_elides_zero_kinds() {
        let scope = LedgerScope::detached();
        scope.record(MessageKind::ProbeRequest, 5);
        let snap = scope.snapshot();
        assert_eq!(snap.kinds.len(), 1);
        assert_eq!(snap.kinds["probe_request"], 5);
        assert_eq!(snap.total, 5);
    }
}
