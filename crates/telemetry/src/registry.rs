//! The metrics registry: named counters, gauges, and histograms.
//!
//! Handles are registered once (get-or-create by name) and then recorded
//! through plain atomics — the registration mutex is never touched on
//! the hot path. Snapshots iterate `BTreeMap`s, so two registries fed
//! the same values serialize byte-identically regardless of
//! registration order.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Serialize, Value};

use crate::histogram::{Histogram, HistogramHandle, HistogramSnapshot};

/// A monotonically increasing counter (atomic, cheap to clone).
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter detached from any registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1)
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can move both ways (atomic, cheap to
/// clone).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A gauge detached from any registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, HistogramHandle>>,
}

/// The shared registry. Clones are handles onto the same store.
#[derive(Debug, Clone, Default)]
pub struct Registry(Arc<RegistryInner>);

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use. Keep the handle;
    /// recording through it never re-locks the registry.
    pub fn counter(&self, name: &str) -> Counter {
        let mut counters = self.0.counters.lock();
        if let Some(c) = counters.get(name) {
            return c.clone();
        }
        let c = Counter::new();
        counters.insert(name.to_owned(), c.clone());
        c
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut gauges = self.0.gauges.lock();
        if let Some(g) = gauges.get(name) {
            return g.clone();
        }
        let g = Gauge::new();
        gauges.insert(name.to_owned(), g.clone());
        g
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        let mut histograms = self.0.histograms.lock();
        if let Some(h) = histograms.get(name) {
            return h.clone();
        }
        let h = HistogramHandle::new();
        histograms.insert(name.to_owned(), h.clone());
        h
    }

    /// Merges `other`'s histogram named `name` into this registry's
    /// histogram of the same name (creating it if needed).
    pub fn merge_histogram(&self, name: &str, other: &Histogram) {
        self.histogram(name).histogram().merge_from(other);
    }

    /// Folds another registry into this one: counters add, gauges take
    /// the maximum (every gauge in this workspace is a high-water mark —
    /// queue depths, hot-surrogate loads), histograms merge bucket-wise.
    /// The combine is associative and commutative, so shard registries
    /// merged in any grouping produce the same snapshot — the property
    /// the deterministic parallel runner relies on. Merging a registry
    /// into itself is a no-op.
    pub fn merge_from(&self, other: &Registry) {
        if Arc::ptr_eq(&self.0, &other.0) {
            return;
        }
        for (name, c) in other.0.counters.lock().iter() {
            self.counter(name).add(c.get());
        }
        for (name, g) in other.0.gauges.lock().iter() {
            let mine = self.gauge(name);
            mine.set(mine.get().max(g.get()));
        }
        for (name, h) in other.0.histograms.lock().iter() {
            self.histogram(name).histogram().merge_from(h.histogram());
        }
    }

    /// A deterministic snapshot of every registered metric. Zero-valued
    /// counters and empty histograms are kept: a metric that exists but
    /// never fired is itself a signal.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self
                .0
                .counters
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .0
                .gauges
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .0
                .histograms
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.histogram().snapshot()))
                .collect(),
        }
    }
}

/// Point-in-time state of a [`Registry`], ordered by metric name.
#[derive(Debug, Clone, PartialEq)]
pub struct RegistrySnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Serialize for RegistrySnapshot {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            (
                "counters".to_owned(),
                Value::Object(
                    self.counters
                        .iter()
                        .map(|(k, &v)| (k.clone(), Value::U64(v)))
                        .collect(),
                ),
            ),
            (
                "gauges".to_owned(),
                Value::Object(
                    self.gauges
                        .iter()
                        .map(|(k, &v)| (k.clone(), Value::I64(v)))
                        .collect(),
                ),
            ),
            (
                "histograms".to_owned(),
                Value::Object(
                    self.histograms
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_value()))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_shared_by_name() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(3);
        b.inc();
        assert_eq!(r.counter("x").get(), 4);
    }

    #[test]
    fn gauges_move_both_ways() {
        let r = Registry::new();
        let g = r.gauge("load");
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn snapshot_is_ordered_and_complete() {
        let r = Registry::new();
        r.counter("zeta").inc();
        r.counter("alpha").add(2);
        r.histogram("h").record(5.0);
        let s = r.snapshot();
        let names: Vec<&String> = s.counters.keys().collect();
        assert_eq!(names, ["alpha", "zeta"]);
        assert_eq!(s.histograms["h"].count, 1);
    }
}
