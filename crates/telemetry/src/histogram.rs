//! Fixed-bucket log-scale histograms with quantile estimation.
//!
//! Every histogram in the workspace shares one bucket scheme, so any two
//! histograms can be merged and any snapshot can be compared across
//! runs. The scheme covers `[2^-10, 2^30)` — a hair under a millisecond
//! up to ~12 days when recording virtual milliseconds — with four
//! sub-buckets per octave, plus an underflow and an overflow bucket.
//!
//! # Determinism contract
//!
//! Recording is a single atomic add per value: bucket totals are
//! order-independent, so a histogram filled from the same multiset of
//! values always snapshots identically, and integer bucket counts (plus
//! a fixed-point sum) keep the snapshot free of float-accumulation
//! noise. [`HistogramSnapshot`] serializes through ordered fields only —
//! byte-identical JSON for a given seed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde::{Serialize, Value};

/// log2 of the smallest finite bucket boundary.
const LOG2_MIN: i32 = -10;
/// log2 of the overflow boundary.
const LOG2_MAX: i32 = 30;
/// Sub-buckets per octave (power of two).
const SUB: i32 = 4;
/// Finite value buckets between the under- and overflow buckets.
const VALUE_BUCKETS: usize = ((LOG2_MAX - LOG2_MIN) * SUB) as usize;
/// Total bucket count: underflow + finite + overflow.
pub const BUCKETS: usize = VALUE_BUCKETS + 2;

/// Index of the underflow bucket (values ≤ 0 or below `2^-10`).
pub const UNDERFLOW: usize = 0;
/// Index of the overflow bucket (values ≥ `2^30`).
pub const OVERFLOW: usize = BUCKETS - 1;

/// The lower (inclusive) and upper (exclusive) bound of bucket `index`.
///
/// The underflow bucket reports `(f64::NEG_INFINITY, lower_min)` and the
/// overflow bucket `(upper_max, f64::INFINITY)`.
pub fn bucket_bounds(index: usize) -> (f64, f64) {
    assert!(index < BUCKETS, "bucket index out of range");
    let edge = |i: usize| 2f64.powf(LOG2_MIN as f64 + (i as f64) / SUB as f64);
    if index == UNDERFLOW {
        (f64::NEG_INFINITY, edge(0))
    } else if index == OVERFLOW {
        (edge(VALUE_BUCKETS), f64::INFINITY)
    } else {
        (edge(index - 1), edge(index))
    }
}

/// The bucket a value lands in. Total over all inputs: every finite
/// value gets exactly one bucket, and `bucket_bounds(bucket_index(v))`
/// always contains `v` (floating-point rounding at the edges is
/// corrected, so the two functions never disagree).
pub fn bucket_index(value: f64) -> usize {
    if !value.is_finite() || value <= 0.0 {
        return UNDERFLOW;
    }
    let raw = ((value.log2() - LOG2_MIN as f64) * SUB as f64).floor();
    let mut idx = if raw < 0.0 {
        UNDERFLOW
    } else {
        (raw as usize + 1).min(OVERFLOW)
    };
    // log2 rounding can misplace values sitting exactly on an edge by
    // one bucket in either direction; nudge until the bounds agree.
    while idx > 0 && value < bucket_bounds(idx).0 {
        idx -= 1;
    }
    while idx < OVERFLOW && value >= bucket_bounds(idx).1 {
        idx += 1;
    }
    idx
}

/// A lock-free fixed-bucket log-scale histogram.
///
/// Values are f64 (milliseconds, counts, ratios …); recording is one
/// atomic add on the owning bucket plus two for the count and the
/// fixed-point sum. Shareable: [`HistogramHandle`] clones are cheap.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    /// Sum of recorded values in thousandths (fixed point, so that
    /// concurrent adds stay associative and snapshots deterministic).
    sum_x1000: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [(); BUCKETS].map(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_x1000: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value.
    pub fn record(&self, value: f64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let fixed = if value.is_finite() && value > 0.0 {
            (value * 1000.0).round() as u64
        } else {
            0
        };
        self.sum_x1000.fetch_add(fixed, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values (reconstructed from the fixed-point
    /// accumulator; exact to a thousandth per sample).
    pub fn sum(&self) -> f64 {
        self.sum_x1000.load(Ordering::Relaxed) as f64 / 1000.0
    }

    /// The count in one bucket.
    pub fn bucket_count(&self, index: usize) -> u64 {
        self.buckets[index].load(Ordering::Relaxed)
    }

    /// Folds another histogram into this one, bucket by bucket. The
    /// result equals a histogram of the concatenated value streams.
    pub fn merge_from(&self, other: &Histogram) {
        for i in 0..BUCKETS {
            self.buckets[i].fetch_add(other.buckets[i].load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum_x1000
            .fetch_add(other.sum_x1000.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Estimates the `q`-quantile (0 ≤ q ≤ 1): the midpoint of the
    /// bucket holding the rank-`⌊q·(n-1)⌋` value, which is within one
    /// bucket width of the true quantile of the recorded stream. Returns
    /// `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * (n - 1) as f64).floor() as u64).min(n - 1);
        let mut seen = 0u64;
        for i in 0..BUCKETS {
            seen += self.bucket_count(i);
            if seen > rank {
                let (lo, hi) = bucket_bounds(i);
                return Some(if i == UNDERFLOW {
                    0.0
                } else if i == OVERFLOW {
                    lo
                } else {
                    (lo + hi) / 2.0
                });
            }
        }
        None
    }

    /// A serializable, deterministic snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<(u16, u64)> = (0..BUCKETS)
            .filter_map(|i| {
                let c = self.bucket_count(i);
                (c > 0).then_some((i as u16, c))
            })
            .collect();
        HistogramSnapshot {
            count: self.count(),
            sum_x1000: self.sum_x1000.load(Ordering::Relaxed),
            p50: self.quantile(0.5),
            p90: self.quantile(0.9),
            p99: self.quantile(0.99),
            buckets,
        }
    }
}

/// A cheaply clonable handle onto a shared [`Histogram`].
#[derive(Debug, Clone, Default)]
pub struct HistogramHandle(pub(crate) Arc<Histogram>);

impl HistogramHandle {
    /// A handle onto a fresh histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value.
    pub fn record(&self, value: f64) {
        self.0.record(value)
    }

    /// The underlying histogram.
    pub fn histogram(&self) -> &Histogram {
        &self.0
    }
}

/// Point-in-time state of one histogram, with sparse non-zero buckets
/// (`(index, count)` pairs in index order) and derived quantiles.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Fixed-point (thousandths) sum of recorded values.
    pub sum_x1000: u64,
    /// Estimated median (None when empty).
    pub p50: Option<f64>,
    /// Estimated 90th percentile.
    pub p90: Option<f64>,
    /// Estimated 99th percentile.
    pub p99: Option<f64>,
    /// Non-empty buckets as `(index, count)`, ascending by index.
    pub buckets: Vec<(u16, u64)>,
}

impl Serialize for HistogramSnapshot {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("count".to_owned(), Value::U64(self.count)),
            ("sum_x1000".to_owned(), Value::U64(self.sum_x1000)),
            ("p50".to_owned(), self.p50.to_value()),
            ("p90".to_owned(), self.p90.to_value()),
            ("p99".to_owned(), self.p99.to_value()),
            (
                "buckets".to_owned(),
                Value::Array(
                    self.buckets
                        .iter()
                        .map(|&(i, c)| Value::Array(vec![Value::U64(i as u64), Value::U64(c)]))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_contain_their_values() {
        for v in [0.002, 0.5, 1.0, 2.0, 3.7, 150.0, 1024.0, 1e9] {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v < hi, "{v} not in [{lo}, {hi}) (bucket {i})");
        }
    }

    #[test]
    fn underflow_and_overflow() {
        assert_eq!(bucket_index(0.0), UNDERFLOW);
        assert_eq!(bucket_index(-5.0), UNDERFLOW);
        assert_eq!(bucket_index(f64::NAN), UNDERFLOW);
        assert_eq!(bucket_index(1e300), OVERFLOW);
    }

    #[test]
    fn quantiles_track_the_stream() {
        let h = Histogram::new();
        for v in 1..=1000 {
            h.record(v as f64);
        }
        let p50 = h.quantile(0.5).unwrap();
        let (lo, hi) = bucket_bounds(bucket_index(500.0));
        assert!(p50 >= lo && p50 <= hi, "p50 {p50} outside [{lo}, {hi}]");
        assert_eq!(h.count(), 1000);
        assert!((h.sum() - 500_500.0).abs() < 0.5);
    }

    #[test]
    fn merge_equals_concatenation() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in [1.0, 5.0, 9.0] {
            a.record(v);
            all.record(v);
        }
        for v in [2.0, 400.0] {
            b.record(v);
            all.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a.snapshot(), all.snapshot());
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert!(s.buckets.is_empty());
    }
}
