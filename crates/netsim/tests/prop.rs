//! Property-based tests for the latency/loss model and the event queue.

use std::sync::{Arc, OnceLock};

use asap_netsim::events::{EventQueue, SimTime};
use asap_netsim::{NetConfig, NetModel, SuspicionConfig, SuspicionDetector, Verdict};
use asap_topology::{InternetConfig, InternetGenerator, SyntheticInternet};
use proptest::prelude::*;

fn shared() -> &'static (Arc<SyntheticInternet>, NetModel) {
    static SHARED: OnceLock<(Arc<SyntheticInternet>, NetModel)> = OnceLock::new();
    SHARED.get_or_init(|| {
        let net = Arc::new(InternetGenerator::new(InternetConfig::tiny(), 77).generate());
        let model = NetModel::new(net.clone(), NetConfig::default(), 78);
        (net, model)
    })
}

proptest! {
    #[test]
    fn rtt_is_pure_and_positive(i in 0usize..120, j in 0usize..120) {
        let (net, model) = shared();
        let stubs = net.stub_asns();
        let (a, b) = (stubs[i % stubs.len()], stubs[j % stubs.len()]);
        let r1 = model.as_rtt_ms(a, b);
        let r2 = model.as_rtt_ms(a, b);
        prop_assert_eq!(r1, r2);
        if let Some(r) = r1 {
            prop_assert!(r > 0.0);
            prop_assert!(r.is_finite());
        }
    }

    #[test]
    fn rtt_is_symmetric_when_routes_are(i in 0usize..120, j in 0usize..120) {
        // BGP routes need not be symmetric, but when the policy paths are
        // reverses of each other the modeled RTT must agree (same links,
        // same conditions, same pair jitter).
        let (net, model) = shared();
        let stubs = net.stub_asns();
        let (a, b) = (stubs[i % stubs.len()], stubs[j % stubs.len()]);
        let (Some(p_ab), Some(p_ba)) = (model.as_path(a, b), model.as_path(b, a)) else {
            return Ok(());
        };
        let mut rev = p_ba.clone();
        rev.reverse();
        if rev == p_ab {
            let (r_ab, r_ba) = (model.as_rtt_ms(a, b).unwrap(), model.as_rtt_ms(b, a).unwrap());
            prop_assert!((r_ab - r_ba).abs() < 1e-9, "asymmetric RTT on symmetric route");
        }
    }

    #[test]
    fn loss_is_a_probability(i in 0usize..120, j in 0usize..120) {
        let (net, model) = shared();
        let stubs = net.stub_asns();
        let (a, b) = (stubs[i % stubs.len()], stubs[j % stubs.len()]);
        if let Some(l) = model.as_loss(a, b) {
            prop_assert!((0.0..=1.0).contains(&l));
        }
    }

    #[test]
    fn link_condition_is_deterministic_and_bounded(i in 0usize..60, j in 0usize..60) {
        let (net, model) = shared();
        let asns = net.graph.asns();
        let (a, b) = (asns[i % asns.len()], asns[j % asns.len()]);
        let c1 = model.link_condition(a, b);
        let c2 = model.link_condition(a, b);
        prop_assert_eq!(c1, c2);
        // Symmetric in argument order.
        prop_assert_eq!(c1, model.link_condition(b, a));
        let (lo, hi) = model.config().congestion_added_rtt_ms;
        prop_assert!(c1.0 == 0.0 || (lo..=hi).contains(&c1.0));
    }

    #[test]
    fn host_rtt_decomposes(i in 0usize..80, j in 0usize..80, acc_a in 0.0f64..40.0, acc_b in 0.0f64..40.0) {
        let (net, model) = shared();
        let stubs = net.stub_asns();
        let (a, b) = (stubs[i % stubs.len()], stubs[j % stubs.len()]);
        if let (Some(core), Some(host)) = (
            model.as_rtt_ms(a, b),
            model.host_rtt_ms((a, acc_a), (b, acc_b)),
        ) {
            prop_assert!((host - core - 2.0 * acc_a - 2.0 * acc_b).abs() < 1e-9);
        }
    }

    #[test]
    fn event_queue_pops_in_nondecreasing_time_order(times in proptest::collection::vec(0u64..10_000, 1..64)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((at, _)) = q.pop() {
            prop_assert!(at >= last);
            last = at;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    #[test]
    fn event_queue_is_fifo_within_a_tick(n in 1usize..32) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(SimTime(42), i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }
}

proptest! {
    /// Phi never decreases while a node stays silent: suspicion of a
    /// quiet node only deepens as virtual time passes.
    #[test]
    fn phi_is_monotone_in_silence(
        beats in 2u64..40,
        jitter in 0u64..400,
        probes in proptest::collection::vec(1u64..600_000, 1..24),
    ) {
        let config = SuspicionConfig::default();
        let mut d = SuspicionDetector::new(config);
        let interval = config.heartbeat_interval_ms;
        let mut now = 0;
        for k in 0..beats {
            now = k * interval + (jitter * k) % 200;
            d.heartbeat(now);
        }
        let mut offsets = probes;
        offsets.sort_unstable();
        let mut last_phi = 0.0f64;
        for off in offsets {
            let phi = d.phi(now + off);
            prop_assert!(phi >= last_phi, "phi fell from {last_phi} to {phi} at +{off}ms");
            prop_assert!(phi.is_finite() && phi >= 0.0);
            last_phi = phi;
        }
    }

    /// A heartbeat resets suspicion: right after hearing from a node,
    /// phi is back near zero and the verdict is Alive, no matter how
    /// dead the node looked a moment before.
    #[test]
    fn heartbeat_resets_suspicion(
        beats in 2u64..20,
        silence in 1u64..10_000_000,
    ) {
        let config = SuspicionConfig::default();
        let mut d = SuspicionDetector::new(config);
        let interval = config.heartbeat_interval_ms;
        for k in 0..beats {
            d.heartbeat(k * interval);
        }
        let quiet = (beats - 1) * interval + silence;
        let before = d.phi(quiet);
        d.heartbeat(quiet);
        let after = d.phi(quiet);
        prop_assert!(after <= before);
        prop_assert!(after < config.phi_suspect);
        prop_assert_eq!(d.verdict(quiet), Verdict::Alive);
    }

    /// A node that heartbeats every interval, even with bounded delivery
    /// jitter, is never suspected — the detector's false-positive guard.
    #[test]
    fn regular_heartbeater_is_never_suspected(
        beats in 3u64..80,
        jitters in proptest::collection::vec(0u64..150, 3..80),
    ) {
        let config = SuspicionConfig::default();
        let mut d = SuspicionDetector::new(config);
        let interval = config.heartbeat_interval_ms;
        let mut now = 0;
        for k in 0..beats {
            now = k * interval + jitters[k as usize % jitters.len()];
            d.heartbeat(now);
            prop_assert_eq!(d.verdict(now), Verdict::Alive, "suspected at beat {}", k);
        }
        // Between beats the verdict stays Alive too: probe just before
        // the next scheduled heartbeat would land.
        prop_assert_eq!(d.verdict(now + interval), Verdict::Alive);
    }
}
