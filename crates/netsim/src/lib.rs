//! Network simulation substrate for the ASAP VoIP peer-relay system.
//!
//! The paper's evaluation is *trace-driven*: it replays King-measured RTTs
//! between Gnutella cluster delegates over the inferred AS graph. Those
//! 2005 traces are not available, so this crate provides the synthetic
//! equivalent — a latency and loss model over the synthetic Internet from
//! [`asap_topology`] that preserves the properties the paper's analysis
//! rests on:
//!
//! * **RTT correlates with AS hops** (paper property 3): path latency is
//!   the sum of per-AS-link propagation (distance-based) plus per-AS
//!   transit processing.
//! * **A small tail of very slow direct paths** (Fig. 2(a)): congestion
//!   and failure episodes inflate every route crossing an afflicted AS —
//!   the Fig. 4 scenario that relays in *other* ASes can bypass.
//! * **Relays add a fixed forwarding delay**: 20 ms one-way, 40 ms per
//!   round trip through a relay, the paper's own conservative constant
//!   ([`RELAY_DELAY_RTT_MS`]).
//! * **Measurements are noisy and lossy**: the [`king`] front-end answers
//!   only ~70% of queries (the paper got 1,498,749 responses from
//!   2,130,140 delegate pairs) with multiplicative noise.
//!
//! The model is deterministic: every quantity is derived from the
//! generator seed via per-entity hashing, so repeated queries (and
//! repeated runs) agree.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capacity;
pub mod events;
pub mod faults;
pub mod king;
pub mod membership;
mod model;

pub use capacity::{Admission, AdmissionQueue, CapacityConfig, RelaySlots, ShedCause, SlotVerdict};
pub use faults::{FaultEvent, FaultKind, FaultPlan, FaultPlanConfig, MessageDrops, RetryPolicy};
pub use membership::{MembershipView, SuspicionConfig, SuspicionDetector, Verdict};
pub use model::{AsCondition, NetConfig, NetModel};

/// One-way packet forwarding delay added by an application-layer relay
/// node, in milliseconds. Measured at ~12 ms in the paper's 100 Mbps
/// testbed; the paper conservatively uses 20 ms.
pub const RELAY_DELAY_ONE_WAY_MS: f64 = 20.0;

/// Round-trip delay added by one relay node: twice the one-way forwarding
/// delay (paper §3.2).
pub const RELAY_DELAY_RTT_MS: f64 = 2.0 * RELAY_DELAY_ONE_WAY_MS;
