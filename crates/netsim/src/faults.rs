//! Deterministic fault injection for protocol robustness experiments.
//!
//! The paper's evaluation assumes a cooperative world: surrogates stay
//! up, close-set requests are answered, and AS conditions only change
//! through the latency model's own episodes. Real peer-relay deployments
//! see all of those assumptions break, so this module provides the
//! machinery to break them *on purpose and reproducibly*:
//!
//! * [`FaultPlan`] — a seed-reproducible schedule of surrogate crashes,
//!   relay host departures, transient AS congestion bursts, message-drop
//!   windows, and stale close-cluster-set epochs, generated per simulated
//!   tick from a ChaCha stream (same seed ⇒ byte-identical plan).
//! * [`MessageDrops`] — a stateless per-message drop decider (hash-based,
//!   so concurrent queries and replays agree).
//! * [`RetryPolicy`] — per-request timeout with bounded exponential
//!   backoff and deterministic jitter, the recovery side of the contract.
//!
//! Everything here is pure data and hashing — the *interpretation* of a
//! fault (who re-elects, which call fails over) belongs to the protocol
//! layer consuming the plan.

use asap_telemetry::{Counter, Registry};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The primary surrogate of this cluster crashes (goes offline).
    SurrogateCrash {
        /// Cluster whose primary surrogate dies (`ClusterId.0`).
        cluster: u32,
    },
    /// An arbitrary host departs ungracefully — if it is mid-call as a
    /// relay, the call must fail over.
    HostCrash {
        /// The departing host (`HostId.0`).
        host: u32,
    },
    /// A transient congestion burst inside one AS: every path crossing it
    /// suffers the added RTT and loss until the burst clears.
    AsCongestion {
        /// The congested AS number.
        asn: u32,
        /// Added round-trip time while the burst lasts, ms.
        added_rtt_ms: f64,
        /// Added loss probability while the burst lasts.
        added_loss: f64,
        /// Burst duration, ms.
        duration_ms: u64,
    },
    /// A window during which control messages are dropped with the given
    /// probability (requests time out and must be retried).
    MessageDropWindow {
        /// Per-message drop probability in [0, 1).
        drop_prob: f64,
        /// Window duration, ms.
        duration_ms: u64,
    },
    /// The cluster's close-cluster-set epoch is forced stale (as if its
    /// surrogate set rotated): cached sets referencing it must rebuild.
    StaleCloseSet {
        /// Cluster whose epoch is bumped (`ClusterId.0`).
        cluster: u32,
    },
    /// One AS is partitioned from the rest of the network: hosts inside
    /// it stop heartbeating and answering control requests until the
    /// partition heals. Unlike a crash, the hosts come back intact.
    AsPartition {
        /// The partitioned AS number.
        asn: u32,
        /// Partition duration, ms.
        duration_ms: u64,
    },
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the fault fires, in simulated milliseconds.
    pub at_ms: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// Per-tick fault probabilities and shapes for [`FaultPlan::generate`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlanConfig {
    /// Seed of the ChaCha stream driving the schedule.
    pub seed: u64,
    /// First tick at which faults may fire, ms (lets the join window
    /// settle first).
    pub start_ms: u64,
    /// End of the fault window, ms (exclusive).
    pub duration_ms: u64,
    /// Scheduling granularity, ms (one Bernoulli draw per category per
    /// tick).
    pub tick_ms: u64,
    /// Per-tick probability of a surrogate crash (uniform random
    /// cluster).
    pub surrogate_crash_per_tick: f64,
    /// Per-tick probability of an arbitrary host departure.
    pub host_crash_per_tick: f64,
    /// Per-tick probability of an AS congestion burst starting.
    pub congestion_per_tick: f64,
    /// Added RTT range of a congestion burst, ms.
    pub congestion_rtt_ms: (f64, f64),
    /// Added loss range of a congestion burst.
    pub congestion_loss: (f64, f64),
    /// Duration range of a congestion burst, ms.
    pub congestion_duration_ms: (u64, u64),
    /// Per-tick probability of a message-drop window starting.
    pub drop_window_per_tick: f64,
    /// Drop-probability range of a message-drop window.
    pub drop_prob: (f64, f64),
    /// Duration range of a message-drop window, ms.
    pub drop_window_ms: (u64, u64),
    /// Per-tick probability of a forced-stale close-set epoch.
    pub stale_close_set_per_tick: f64,
    /// Per-tick probability of an AS partition starting.
    pub partition_per_tick: f64,
    /// Duration range of an AS partition, ms.
    pub partition_ms: (u64, u64),
}

impl Default for FaultPlanConfig {
    fn default() -> Self {
        FaultPlanConfig {
            seed: 0,
            start_ms: 60_000,
            duration_ms: 600_000,
            tick_ms: 1_000,
            surrogate_crash_per_tick: 0.0,
            host_crash_per_tick: 0.0,
            congestion_per_tick: 0.0,
            congestion_rtt_ms: (80.0, 400.0),
            congestion_loss: (0.05, 0.30),
            congestion_duration_ms: (10_000, 60_000),
            drop_window_per_tick: 0.0,
            drop_prob: (0.2, 0.8),
            drop_window_ms: (5_000, 20_000),
            stale_close_set_per_tick: 0.0,
            partition_per_tick: 0.0,
            partition_ms: (20_000, 90_000),
        }
    }
}

/// A deterministic, time-sorted schedule of fault events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Generates the schedule for a world of `clusters` clusters,
    /// `hosts` hosts, and the given AS number pool. Same config and
    /// world ⇒ identical plan, on every run and platform.
    ///
    /// # Panics
    ///
    /// Panics if `tick_ms` is zero or any probability is outside [0, 1).
    pub fn generate(
        config: &FaultPlanConfig,
        clusters: u32,
        hosts: u32,
        asns: &[u32],
    ) -> FaultPlan {
        assert!(config.tick_ms > 0, "fault tick must be positive");
        for p in [
            config.surrogate_crash_per_tick,
            config.host_crash_per_tick,
            config.congestion_per_tick,
            config.drop_window_per_tick,
            config.stale_close_set_per_tick,
            config.partition_per_tick,
        ] {
            assert!(
                (0.0..1.0).contains(&p),
                "fault probability {p} not in [0, 1)"
            );
        }
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0xFA01_7135);
        let mut events = Vec::new();
        let mut at = config.start_ms;
        while at < config.duration_ms {
            if clusters > 0 && rng.gen_bool(config.surrogate_crash_per_tick) {
                events.push(FaultEvent {
                    at_ms: at,
                    kind: FaultKind::SurrogateCrash {
                        cluster: rng.gen_range(0..clusters),
                    },
                });
            }
            if hosts > 0 && rng.gen_bool(config.host_crash_per_tick) {
                events.push(FaultEvent {
                    at_ms: at,
                    kind: FaultKind::HostCrash {
                        host: rng.gen_range(0..hosts),
                    },
                });
            }
            if !asns.is_empty() && rng.gen_bool(config.congestion_per_tick) {
                events.push(FaultEvent {
                    at_ms: at,
                    kind: FaultKind::AsCongestion {
                        asn: asns[rng.gen_range(0..asns.len())],
                        added_rtt_ms: rng
                            .gen_range(config.congestion_rtt_ms.0..=config.congestion_rtt_ms.1),
                        added_loss: rng
                            .gen_range(config.congestion_loss.0..=config.congestion_loss.1),
                        duration_ms: rng.gen_range(
                            config.congestion_duration_ms.0..=config.congestion_duration_ms.1,
                        ),
                    },
                });
            }
            if rng.gen_bool(config.drop_window_per_tick) {
                events.push(FaultEvent {
                    at_ms: at,
                    kind: FaultKind::MessageDropWindow {
                        drop_prob: rng.gen_range(config.drop_prob.0..=config.drop_prob.1),
                        duration_ms: rng
                            .gen_range(config.drop_window_ms.0..=config.drop_window_ms.1),
                    },
                });
            }
            if clusters > 0 && rng.gen_bool(config.stale_close_set_per_tick) {
                events.push(FaultEvent {
                    at_ms: at,
                    kind: FaultKind::StaleCloseSet {
                        cluster: rng.gen_range(0..clusters),
                    },
                });
            }
            if !asns.is_empty() && rng.gen_bool(config.partition_per_tick) {
                events.push(FaultEvent {
                    at_ms: at,
                    kind: FaultKind::AsPartition {
                        asn: asns[rng.gen_range(0..asns.len())],
                        duration_ms: rng.gen_range(config.partition_ms.0..=config.partition_ms.1),
                    },
                });
            }
            at += config.tick_ms;
        }
        FaultPlan { events }
    }

    /// The scheduled events, sorted by firing time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Records the plan's per-kind injection counts into `registry` as
    /// `faults.injected.<kind>` counters, so metrics snapshots carry the
    /// fault load a run was subjected to.
    pub fn record_to(&self, registry: &Registry) {
        let name_of = |kind: &FaultKind| match kind {
            FaultKind::SurrogateCrash { .. } => "faults.injected.surrogate_crash",
            FaultKind::HostCrash { .. } => "faults.injected.host_crash",
            FaultKind::AsCongestion { .. } => "faults.injected.as_congestion",
            FaultKind::MessageDropWindow { .. } => "faults.injected.message_drop_window",
            FaultKind::StaleCloseSet { .. } => "faults.injected.stale_close_set",
            FaultKind::AsPartition { .. } => "faults.injected.as_partition",
        };
        for e in &self.events {
            registry.counter(name_of(&e.kind)).inc();
        }
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Stateless deterministic message-drop decider: whether a message drops
/// depends only on (seed, message key), never on query order, so
/// replays and concurrent queries agree. Optionally feeds a telemetry
/// counter every time a drop decision lands (still order-independent —
/// the count is the number of queries that dropped, and a deterministic
/// caller makes the same queries every run).
#[derive(Debug, Clone)]
pub struct MessageDrops {
    /// Per-message drop probability in [0, 1).
    pub drop_prob: f64,
    seed: u64,
    dropped: Option<Counter>,
}

/// Equality is decision equality: two deciders with the same probability
/// and seed drop the same messages, whatever counter they feed.
impl PartialEq for MessageDrops {
    fn eq(&self, other: &Self) -> bool {
        self.drop_prob == other.drop_prob && self.seed == other.seed
    }
}

impl MessageDrops {
    /// A decider dropping each message with probability `drop_prob`.
    ///
    /// # Panics
    ///
    /// Panics if `drop_prob` is outside [0, 1).
    pub fn new(drop_prob: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&drop_prob),
            "drop probability {drop_prob} not in [0, 1)"
        );
        MessageDrops {
            drop_prob,
            seed,
            dropped: None,
        }
    }

    /// Counts every dropped decision on `counter` (e.g. a registry's
    /// `faults.messages_dropped`).
    pub fn with_counter(mut self, counter: Counter) -> Self {
        self.dropped = Some(counter);
        self
    }

    /// Whether the message identified by `key` is dropped.
    pub fn drops(&self, key: u64) -> bool {
        let dropped = unit(mix(self.seed, key)) < self.drop_prob;
        if dropped {
            if let Some(c) = &self.dropped {
                c.inc();
            }
        }
        dropped
    }
}

/// Per-request timeout with bounded exponential backoff and
/// deterministic jitter.
///
/// Attempt `n` (0-based) waits `timeout_ms * backoff^n`, capped at
/// `max_backoff_ms`, then ±`jitter` of itself — the jitter drawn by
/// hashing `(salt, n)`, so the same request retries on the same schedule
/// in every replay while distinct requests still decorrelate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Base request timeout, ms.
    pub timeout_ms: u64,
    /// Retries after the first attempt (total attempts = `max_retries +
    /// 1`).
    pub max_retries: u32,
    /// Backoff multiplier per retry (≥ 1).
    pub backoff: f64,
    /// Upper bound on any single backoff wait, ms.
    pub max_backoff_ms: u64,
    /// Jitter fraction in [0, 1): each wait is scaled by a factor in
    /// `[1 - jitter, 1 + jitter)`.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            timeout_ms: 400,
            max_retries: 4,
            backoff: 2.0,
            max_backoff_ms: 5_000,
            jitter: 0.1,
        }
    }
}

impl RetryPolicy {
    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.timeout_ms == 0 {
            return Err("retry timeout must be positive".into());
        }
        if self.backoff < 1.0 {
            return Err("backoff multiplier must be at least 1".into());
        }
        if !(0.0..1.0).contains(&self.jitter) {
            return Err("jitter fraction must be in [0, 1)".into());
        }
        if self.max_backoff_ms < self.timeout_ms {
            return Err("max backoff must be at least the base timeout".into());
        }
        Ok(())
    }

    /// The wait before retrying after failed attempt `attempt`
    /// (0-based), with deterministic jitter keyed by `salt`.
    pub fn backoff_ms(&self, attempt: u32, salt: u64) -> u64 {
        let base = (self.timeout_ms as f64) * self.backoff.powi(attempt.min(30) as i32);
        let capped = base.min(self.max_backoff_ms as f64);
        let sway = 2.0 * unit(mix(salt, 0x6A77 ^ u64::from(attempt))) - 1.0;
        let jittered = capped * (1.0 + self.jitter * sway);
        jittered.max(1.0) as u64
    }

    /// Worst-case total wait across every attempt, ms — an upper bound
    /// on the stabilization time one request can contribute.
    pub fn total_budget_ms(&self) -> u64 {
        let mut total = 0.0;
        for attempt in 0..=self.max_retries {
            let base = (self.timeout_ms as f64) * self.backoff.powi(attempt.min(30) as i32);
            total += base.min(self.max_backoff_ms as f64) * (1.0 + self.jitter);
        }
        total.ceil() as u64
    }
}

/// SplitMix64-style avalanche of two words (same family as the latency
/// model's hashing, kept local so fault decisions never perturb it).
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b)
        .wrapping_add(0x632B_E593_02D8_B849);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a hash to [0, 1).
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crashy() -> FaultPlanConfig {
        FaultPlanConfig {
            seed: 7,
            start_ms: 0,
            duration_ms: 120_000,
            surrogate_crash_per_tick: 0.05,
            host_crash_per_tick: 0.05,
            congestion_per_tick: 0.02,
            drop_window_per_tick: 0.02,
            stale_close_set_per_tick: 0.02,
            partition_per_tick: 0.02,
            ..Default::default()
        }
    }

    #[test]
    fn plan_is_seed_reproducible() {
        let config = crashy();
        let a = FaultPlan::generate(&config, 40, 1_000, &[1, 2, 3]);
        let b = FaultPlan::generate(&config, 40, 1_000, &[1, 2, 3]);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "a crashy config must schedule something");
        let other = FaultPlan::generate(
            &FaultPlanConfig { seed: 8, ..config },
            40,
            1_000,
            &[1, 2, 3],
        );
        assert_ne!(a, other, "different seeds must give different plans");
    }

    #[test]
    fn plan_is_sorted_and_in_window() {
        let plan = FaultPlan::generate(&crashy(), 40, 1_000, &[1, 2, 3]);
        let mut last = 0;
        for e in plan.events() {
            assert!(e.at_ms >= last, "events out of order");
            assert!(e.at_ms < 120_000);
            last = e.at_ms;
        }
    }

    #[test]
    fn zero_rates_schedule_nothing() {
        let plan = FaultPlan::generate(&FaultPlanConfig::default(), 40, 1_000, &[1]);
        assert!(plan.is_empty());
    }

    #[test]
    fn plan_targets_stay_in_range() {
        let plan = FaultPlan::generate(&crashy(), 5, 30, &[42, 43]);
        for e in plan.events() {
            match e.kind {
                FaultKind::SurrogateCrash { cluster } | FaultKind::StaleCloseSet { cluster } => {
                    assert!(cluster < 5);
                }
                FaultKind::HostCrash { host } => assert!(host < 30),
                FaultKind::AsCongestion { asn, .. } | FaultKind::AsPartition { asn, .. } => {
                    assert!([42, 43].contains(&asn));
                }
                FaultKind::MessageDropWindow { drop_prob, .. } => {
                    assert!((0.0..1.0).contains(&drop_prob));
                }
            }
        }
    }

    #[test]
    fn message_drops_are_order_independent() {
        let drops = MessageDrops::new(0.5, 99);
        let forward: Vec<bool> = (0..1_000).map(|k| drops.drops(k)).collect();
        let backward: Vec<bool> = (0..1_000).rev().map(|k| drops.drops(k)).collect();
        let backward_reversed: Vec<bool> = backward.into_iter().rev().collect();
        assert_eq!(forward, backward_reversed);
        let dropped = forward.iter().filter(|&&d| d).count();
        assert!(
            (300..700).contains(&dropped),
            "drop rate wildly off: {dropped}/1000"
        );
    }

    #[test]
    fn backoff_grows_and_stays_bounded() {
        let policy = RetryPolicy::default();
        policy.validate().expect("default policy is valid");
        let mut last = 0;
        for attempt in 0..10 {
            let wait = policy.backoff_ms(attempt, 5);
            assert!(
                wait <= policy.max_backoff_ms + policy.max_backoff_ms / 10 + 1,
                "attempt {attempt} waited {wait} ms"
            );
            if attempt < 3 {
                assert!(wait >= last, "backoff shrank before the cap");
            }
            last = wait;
        }
        // Deterministic: the same (attempt, salt) always waits the same.
        assert_eq!(policy.backoff_ms(2, 77), policy.backoff_ms(2, 77));
        // Jitter decorrelates distinct requests.
        assert_ne!(policy.backoff_ms(2, 77), policy.backoff_ms(2, 78));
    }

    #[test]
    fn total_budget_bounds_every_schedule() {
        let policy = RetryPolicy::default();
        for salt in 0..50u64 {
            let total: u64 = (0..=policy.max_retries)
                .map(|a| policy.backoff_ms(a, salt))
                .sum();
            assert!(total <= policy.total_budget_ms());
        }
    }

    #[test]
    fn retry_validation_rejects_nonsense() {
        assert!(RetryPolicy {
            timeout_ms: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(RetryPolicy {
            backoff: 0.5,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(RetryPolicy {
            jitter: 1.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(RetryPolicy {
            max_backoff_ms: 10,
            ..Default::default()
        }
        .validate()
        .is_err());
    }
}
