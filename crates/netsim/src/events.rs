//! A minimal deterministic discrete-event core.
//!
//! The ASAP runtime (`asap-core`) and the Skype-like prober
//! (`asap-baselines`) both simulate protocol message exchanges over time:
//! joins, probes, nodal-info publishes, relay switches. This module
//! provides the shared event queue: virtual milliseconds, stable FIFO
//! ordering among simultaneous events, and no wall-clock dependence.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Virtual simulation time in milliseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// This time plus `ms` milliseconds.
    pub fn after_ms(self, ms: u64) -> SimTime {
        SimTime(self.0 + ms)
    }

    /// Milliseconds since simulation start.
    pub fn as_ms(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t+{}ms", self.0)
    }
}

/// A deterministic time-ordered event queue.
///
/// Events scheduled for the same instant are delivered in scheduling
/// order (stable FIFO), which keeps multi-agent protocol simulations
/// reproducible.
///
/// ```
/// use asap_netsim::events::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime(10), "b");
/// q.schedule(SimTime(5), "a");
/// q.schedule(SimTime(10), "c");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, vec!["a", "b", "c"]);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(SimTime, u64, usize)>>,
    events: Vec<Option<E>>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            events: Vec::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The time of the most recently popped event (zero initially).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time (events cannot be
    /// scheduled in the past).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule at {at} before current time {}",
            self.now
        );
        let slot = self.events.len();
        self.events.push(Some(event));
        self.heap.push(Reverse((at, self.seq, slot)));
        self.seq += 1;
    }

    /// Schedules `event` `delay_ms` after the current time.
    pub fn schedule_in(&mut self, delay_ms: u64, event: E) {
        self.schedule(self.now.after_ms(delay_ms), event);
    }

    /// Pops the next event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse((at, _, slot)) = self.heap.pop()?;
        self.now = at;
        let event = self.events[slot].take().expect("event already taken");
        Some((at, event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_fifo() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), 3);
        q.schedule(SimTime(10), 1);
        q.schedule(SimTime(10), 2);
        assert_eq!(q.pop(), Some((SimTime(10), 1)));
        assert_eq!(q.pop(), Some((SimTime(10), 2)));
        assert_eq!(q.pop(), Some((SimTime(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(100), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime(100));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(50), "first");
        q.pop();
        q.schedule_in(25, "second");
        assert_eq!(q.pop(), Some((SimTime(75), "second")));
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), ());
        q.pop();
        q.schedule(SimTime(5), ());
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime(1), 0);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
