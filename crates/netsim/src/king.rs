//! A King-style latency measurement front-end.
//!
//! The paper estimates inter-host latency with King (Gummadi et al.,
//! IMW'02), which triangulates through the hosts' DNS servers. King is
//! imperfect: in the paper's campaign only 1,498,749 of 2,130,140 delegate
//! pairs responded (~70%), and individual estimates carry noise. The ASAP
//! protocol must work from such *measurements*, not ground truth, so this
//! module wraps a [`NetModel`] with deterministic non-response and
//! multiplicative noise, and counts the probes issued (measurement probes
//! are part of the overhead story in Fig. 18).

use std::sync::atomic::{AtomicU64, Ordering};

use asap_cluster::Asn;

use crate::model::NetModel;

/// Configuration of the measurement front-end.
#[derive(Debug, Clone)]
pub struct KingConfig {
    /// Probability that a measurement gets no response (the paper saw
    /// ~30% of recursive DNS queries unanswered).
    pub non_response: f64,
    /// Multiplicative noise half-width: a measurement is the true RTT
    /// scaled by a factor uniform in `[1 − noise, 1 + noise]`.
    pub noise: f64,
}

impl Default for KingConfig {
    fn default() -> Self {
        KingConfig {
            non_response: 0.30,
            noise: 0.10,
        }
    }
}

/// A measuring wrapper over [`NetModel`].
///
/// Non-response and noise are deterministic per AS pair (a pair that does
/// not answer never answers during the period, like a DNS server that
/// rejects recursive queries), so retrying does not launder failures —
/// matching the paper's methodology of dropping unresponsive pairs.
#[derive(Debug)]
pub struct KingEstimator<'a> {
    model: &'a NetModel,
    config: KingConfig,
    seed: u64,
    probes: AtomicU64,
}

impl<'a> KingEstimator<'a> {
    /// Wraps `model` with measurement imperfections derived from `seed`.
    pub fn new(model: &'a NetModel, config: KingConfig, seed: u64) -> Self {
        KingEstimator {
            model,
            config,
            seed,
            probes: AtomicU64::new(0),
        }
    }

    /// The underlying ground-truth model.
    pub fn model(&self) -> &NetModel {
        self.model
    }

    /// Number of measurement probes issued so far.
    pub fn probes_issued(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    /// Measures the AS-level RTT between `a` and `b`. Returns `None` when
    /// the pair is unroutable or does not respond to King probing.
    pub fn measure_rtt_ms(&self, a: Asn, b: Asn) -> Option<f64> {
        self.probes.fetch_add(1, Ordering::Relaxed);
        if self.pair_unit(a, b, 0x0DE5) < self.config.non_response {
            return None;
        }
        let true_rtt = self.model.as_rtt_ms(a, b)?;
        let u = self.pair_unit(a, b, 0x2013);
        Some(true_rtt * (1.0 + self.config.noise * (2.0 * u - 1.0)))
    }

    /// Measures the loss rate between `a` and `b` (same response behavior
    /// as [`measure_rtt_ms`](Self::measure_rtt_ms)).
    pub fn measure_loss(&self, a: Asn, b: Asn) -> Option<f64> {
        self.probes.fetch_add(1, Ordering::Relaxed);
        if self.pair_unit(a, b, 0x0DE5) < self.config.non_response {
            return None;
        }
        self.model.as_loss(a, b)
    }

    fn pair_unit(&self, a: Asn, b: Asn, salt: u64) -> f64 {
        let (x, y) = (a.0.min(b.0) as u64, a.0.max(b.0) as u64);
        let mut z =
            self.seed ^ salt ^ x.rotate_left(17) ^ y.rotate_left(39) ^ 0x9E37_79B9_7F4A_7C15;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{NetConfig, NetModel};
    use asap_topology::{InternetConfig, InternetGenerator};
    use std::sync::Arc;

    fn setup() -> NetModel {
        let net = Arc::new(InternetGenerator::new(InternetConfig::tiny(), 5).generate());
        NetModel::new(net, NetConfig::default(), 6)
    }

    #[test]
    fn measurement_is_deterministic() {
        let model = setup();
        let king = KingEstimator::new(&model, KingConfig::default(), 1);
        let stubs = model.internet().stub_asns();
        assert_eq!(
            king.measure_rtt_ms(stubs[0], stubs[9]),
            king.measure_rtt_ms(stubs[0], stubs[9])
        );
    }

    #[test]
    fn noise_stays_within_bounds() {
        let model = setup();
        let king = KingEstimator::new(
            &model,
            KingConfig {
                non_response: 0.0,
                noise: 0.1,
            },
            2,
        );
        let stubs = model.internet().stub_asns();
        for i in 1..40 {
            let (a, b) = (stubs[0], stubs[i]);
            let measured = king.measure_rtt_ms(a, b).unwrap();
            let truth = model.as_rtt_ms(a, b).unwrap();
            assert!((measured / truth - 1.0).abs() <= 0.1 + 1e-12);
        }
    }

    #[test]
    fn non_response_rate_is_respected() {
        let model = setup();
        let king = KingEstimator::new(
            &model,
            KingConfig {
                non_response: 0.3,
                noise: 0.0,
            },
            3,
        );
        let stubs = model.internet().stub_asns();
        let mut missing = 0;
        let mut total = 0;
        for i in 0..stubs.len() {
            for j in (i + 1)..stubs.len().min(i + 10) {
                total += 1;
                if king.measure_rtt_ms(stubs[i], stubs[j]).is_none() {
                    missing += 1;
                }
            }
        }
        let frac = missing as f64 / total as f64;
        assert!((0.2..0.4).contains(&frac), "non-response fraction {frac}");
        assert_eq!(king.probes_issued(), total as u64);
    }

    #[test]
    fn unresponsive_pair_stays_unresponsive() {
        let model = setup();
        let king = KingEstimator::new(
            &model,
            KingConfig {
                non_response: 0.5,
                noise: 0.0,
            },
            4,
        );
        let stubs = model.internet().stub_asns();
        let silent: Vec<(Asn, Asn)> = (1..30)
            .map(|i| (stubs[0], stubs[i]))
            .filter(|&(a, b)| king.measure_rtt_ms(a, b).is_none())
            .collect();
        for (a, b) in silent {
            assert!(
                king.measure_rtt_ms(a, b).is_none(),
                "{a}-{b} answered on retry"
            );
        }
    }

    #[test]
    fn loss_measurement_uses_same_response_gate() {
        let model = setup();
        let king = KingEstimator::new(
            &model,
            KingConfig {
                non_response: 0.5,
                noise: 0.0,
            },
            5,
        );
        let stubs = model.internet().stub_asns();
        for i in 1..30 {
            let (a, b) = (stubs[0], stubs[i]);
            assert_eq!(
                king.measure_rtt_ms(a, b).is_some(),
                king.measure_loss(a, b).is_some()
            );
        }
    }
}
