//! Phi-accrual failure detection over virtual time.
//!
//! The ASAP control plane leans on per-cluster surrogates staying
//! reachable, and the paper's own Skype study (limit L3, Figs. 6–7)
//! shows what happens when supernode-like coordinators churn: long
//! stabilization and relay bounce. A fixed timeout is the wrong tool —
//! crash vs. merely-slow is a *graded* question — so this module
//! implements a phi-accrual suspicion detector in the style of
//! Hayashibara et al. (the detector behind Cassandra and Akka cluster
//! membership), with two deliberate differences:
//!
//! * **Virtual time only.** Every timestamp is a simulated millisecond
//!   fed by the caller; there is no wall clock anywhere, so the same
//!   heartbeat trace always yields the same suspicion levels, on every
//!   run and platform.
//! * **Graded verdicts.** Instead of a boolean "failed", [`phi`]
//!   (`-log10` of the probability that a silence this long is benign)
//!   is thresholded twice: [`Verdict::Suspect`] (stop *preferring* the
//!   node) below [`Verdict::Dead`] (stop *using* it and hand its role
//!   off).
//!
//! [`phi`]: SuspicionDetector::phi

use std::collections::BTreeMap;

use asap_telemetry::Counter;

/// Tunables of the suspicion detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuspicionConfig {
    /// Expected heartbeat interval, virtual ms. Seeds the inter-arrival
    /// estimate before any heartbeat pair has been observed.
    pub heartbeat_interval_ms: u64,
    /// Sliding window of inter-arrival samples the mean/deviation are
    /// estimated over.
    pub window: usize,
    /// Floor on the inter-arrival standard deviation, ms. Perfectly
    /// regular simulated heartbeats would otherwise make the detector
    /// infinitely confident and declare death one tick after a miss.
    pub min_std_ms: f64,
    /// Phi at which a node becomes [`Verdict::Suspect`].
    pub phi_suspect: f64,
    /// Phi at which a node becomes [`Verdict::Dead`].
    pub phi_dead: f64,
}

impl Default for SuspicionConfig {
    fn default() -> Self {
        SuspicionConfig {
            heartbeat_interval_ms: 1_000,
            window: 64,
            min_std_ms: 200.0,
            phi_suspect: 2.0,
            phi_dead: 8.0,
        }
    }
}

impl SuspicionConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.heartbeat_interval_ms == 0 {
            return Err("heartbeat interval must be positive".into());
        }
        if self.window == 0 {
            return Err("suspicion window must hold at least one sample".into());
        }
        if !(self.min_std_ms > 0.0 && self.min_std_ms.is_finite()) {
            return Err("minimum deviation must be positive and finite".into());
        }
        if !(self.phi_suspect > 0.0 && self.phi_suspect.is_finite()) {
            return Err("suspect threshold must be positive and finite".into());
        }
        if self.phi_dead <= self.phi_suspect {
            return Err("dead threshold must exceed the suspect threshold".into());
        }
        Ok(())
    }
}

/// The graded liveness verdict on a monitored node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verdict {
    /// Heartbeating normally (or still within its post-registration
    /// grace window).
    Alive,
    /// Silent long enough to stop preferring it, not long enough to
    /// declare it gone.
    Suspect,
    /// Silent so long that benign slowness is implausible: hand its
    /// role off.
    Dead,
}

/// Phi-accrual suspicion state for one monitored node.
#[derive(Debug, Clone)]
pub struct SuspicionDetector {
    config: SuspicionConfig,
    /// Last heartbeat arrival, virtual ms (None until the first).
    last_ms: Option<u64>,
    /// Sliding window of observed inter-arrival gaps, ms.
    gaps: Vec<f64>,
    /// Next slot of `gaps` to overwrite once the window is full.
    cursor: usize,
}

impl SuspicionDetector {
    /// A detector that has seen no heartbeat yet. Until the first
    /// heartbeat arrives the verdict is [`Verdict::Alive`] (registration
    /// grace), because there is no arrival history to accrue suspicion
    /// against.
    pub fn new(config: SuspicionConfig) -> Self {
        SuspicionDetector {
            config,
            last_ms: None,
            gaps: Vec::new(),
            cursor: 0,
        }
    }

    /// Records a heartbeat arrival at `now_ms`, resetting suspicion.
    /// Out-of-order arrivals (before the last recorded one) are ignored.
    pub fn heartbeat(&mut self, now_ms: u64) {
        if let Some(last) = self.last_ms {
            if now_ms < last {
                return;
            }
            let gap = (now_ms - last) as f64;
            if self.gaps.len() < self.config.window {
                self.gaps.push(gap);
            } else {
                self.gaps[self.cursor] = gap;
            }
            self.cursor = (self.cursor + 1) % self.config.window;
        }
        self.last_ms = Some(now_ms);
    }

    /// The last recorded heartbeat, if any.
    pub fn last_heartbeat_ms(&self) -> Option<u64> {
        self.last_ms
    }

    /// Mean and standard deviation of the inter-arrival estimate. Before
    /// any gap has been observed, the configured interval seeds the mean.
    fn arrival_estimate(&self) -> (f64, f64) {
        if self.gaps.is_empty() {
            return (
                self.config.heartbeat_interval_ms as f64,
                self.config.min_std_ms,
            );
        }
        let n = self.gaps.len() as f64;
        let mean = self.gaps.iter().sum::<f64>() / n;
        let var = self
            .gaps
            .iter()
            .map(|g| (g - mean) * (g - mean))
            .sum::<f64>()
            / n;
        // The configured interval also floors the mean: a burst of rapid
        // heartbeats must not make the detector hair-triggered.
        let mean = mean.max(self.config.heartbeat_interval_ms as f64);
        (mean, var.sqrt().max(self.config.min_std_ms))
    }

    /// The suspicion level at `now_ms`: `-log10` of the probability that
    /// a silence this long is benign, under a normal model of heartbeat
    /// inter-arrival times. 0 while silence is shorter than the expected
    /// interval, and strictly increasing in silence beyond it.
    pub fn phi(&self, now_ms: u64) -> f64 {
        let Some(last) = self.last_ms else {
            return 0.0; // registration grace: no history to accrue against
        };
        let silence = now_ms.saturating_sub(last) as f64;
        let (mean, std) = self.arrival_estimate();
        if silence <= mean {
            return 0.0;
        }
        // P(gap > silence) for gap ~ Normal(mean, std), via the
        // Abramowitz–Stegun complementary-error approximation. Monotone
        // decreasing in `silence`, so phi is monotone increasing.
        let z = (silence - mean) / (std * std::f64::consts::SQRT_2);
        let tail = 0.5 * erfc(z);
        -tail.max(f64::MIN_POSITIVE).log10()
    }

    /// The graded verdict at `now_ms`.
    pub fn verdict(&self, now_ms: u64) -> Verdict {
        let phi = self.phi(now_ms);
        if phi >= self.config.phi_dead {
            Verdict::Dead
        } else if phi >= self.config.phi_suspect {
            Verdict::Suspect
        } else {
            Verdict::Alive
        }
    }
}

/// Complementary error function, Abramowitz–Stegun 7.1.26 (|error| ≤
/// 1.5e-7 — far below what the phi thresholds resolve). Deterministic
/// pure float math, identical on every platform honoring IEEE 754.
fn erfc(x: f64) -> f64 {
    let t = 1.0 / (1.0 + 0.3275911 * x.abs());
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let e = poly * (-x * x).exp();
    if x >= 0.0 {
        e
    } else {
        2.0 - e
    }
}

/// Membership view over a set of monitored nodes (surrogates and
/// bootstrap replicas), keyed by node id. Iteration order is the node-id
/// order (`BTreeMap`), so sweeps are deterministic.
#[derive(Debug, Clone, Default)]
pub struct MembershipView {
    config: SuspicionConfig,
    detectors: BTreeMap<u32, SuspicionDetector>,
    heartbeats: Option<Counter>,
}

impl MembershipView {
    /// An empty view with the given detector configuration.
    pub fn new(config: SuspicionConfig) -> Self {
        MembershipView {
            config,
            detectors: BTreeMap::new(),
            heartbeats: None,
        }
    }

    /// Counts every recorded heartbeat on `counter` (e.g. a registry's
    /// `membership.heartbeats`).
    pub fn with_counter(mut self, counter: Counter) -> Self {
        self.heartbeats = Some(counter);
        self
    }

    /// Starts (or keeps) monitoring `node` and records a heartbeat at
    /// `now_ms`.
    pub fn heartbeat(&mut self, node: u32, now_ms: u64) {
        if let Some(c) = &self.heartbeats {
            c.inc();
        }
        self.detectors
            .entry(node)
            .or_insert_with(|| SuspicionDetector::new(self.config))
            .heartbeat(now_ms);
    }

    /// Registers `node` for monitoring without a heartbeat (it enters in
    /// registration grace). No-op if already monitored.
    pub fn watch(&mut self, node: u32) {
        self.detectors
            .entry(node)
            .or_insert_with(|| SuspicionDetector::new(self.config));
    }

    /// Stops monitoring `node` (e.g. it was demoted from every replica
    /// role).
    pub fn forget(&mut self, node: u32) {
        self.detectors.remove(&node);
    }

    /// Whether `node` is currently monitored.
    pub fn is_watched(&self, node: u32) -> bool {
        self.detectors.contains_key(&node)
    }

    /// The suspicion level of `node` at `now_ms`; 0 for unmonitored
    /// nodes.
    pub fn phi(&self, node: u32, now_ms: u64) -> f64 {
        self.detectors.get(&node).map_or(0.0, |d| d.phi(now_ms))
    }

    /// The graded verdict on `node` at `now_ms`; unmonitored nodes are
    /// [`Verdict::Alive`] (nothing is known against them).
    pub fn verdict(&self, node: u32, now_ms: u64) -> Verdict {
        self.detectors
            .get(&node)
            .map_or(Verdict::Alive, |d| d.verdict(now_ms))
    }

    /// Every monitored node whose verdict at `now_ms` is at least
    /// `threshold`, in node-id order.
    pub fn at_least(&self, threshold: Verdict, now_ms: u64) -> Vec<u32> {
        self.detectors
            .iter()
            .filter(|(_, d)| d.verdict(now_ms) >= threshold)
            .map(|(&n, _)| n)
            .collect()
    }

    /// Every monitored node id, in node-id order.
    pub fn watched(&self) -> Vec<u32> {
        self.detectors.keys().copied().collect()
    }

    /// Number of monitored nodes.
    pub fn len(&self) -> usize {
        self.detectors.len()
    }

    /// Whether no node is monitored.
    pub fn is_empty(&self) -> bool {
        self.detectors.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_heartbeats_stay_alive() {
        let config = SuspicionConfig::default();
        let mut d = SuspicionDetector::new(config);
        for t in (0..60_000).step_by(1_000) {
            d.heartbeat(t);
            assert_eq!(d.verdict(t), Verdict::Alive);
            // Even probed right before the next beat.
            assert_eq!(d.verdict(t + 999), Verdict::Alive);
        }
    }

    #[test]
    fn silence_escalates_alive_suspect_dead() {
        let config = SuspicionConfig::default();
        let mut d = SuspicionDetector::new(config);
        for t in (0..10_000).step_by(1_000) {
            d.heartbeat(t);
        }
        let last = 9_000;
        assert_eq!(d.verdict(last + 1_000), Verdict::Alive);
        // Walk forward until each threshold is crossed; both must be.
        let mut suspect_at = None;
        let mut dead_at = None;
        for t in (last..last + 120_000).step_by(100) {
            match d.verdict(t) {
                Verdict::Suspect if suspect_at.is_none() => suspect_at = Some(t),
                Verdict::Dead if dead_at.is_none() => dead_at = Some(t),
                _ => {}
            }
        }
        let (s, dd) = (
            suspect_at.expect("suspected"),
            dead_at.expect("declared dead"),
        );
        assert!(s < dd, "suspect must precede dead: {s} vs {dd}");
    }

    #[test]
    fn heartbeat_resets_suspicion() {
        let mut d = SuspicionDetector::new(SuspicionConfig::default());
        d.heartbeat(0);
        d.heartbeat(1_000);
        assert!(d.phi(30_000) > 0.0);
        d.heartbeat(30_000);
        assert_eq!(d.phi(30_000), 0.0);
        assert_eq!(d.verdict(30_500), Verdict::Alive);
    }

    #[test]
    fn phi_is_monotone_in_silence() {
        let mut d = SuspicionDetector::new(SuspicionConfig::default());
        for t in (0..5_000).step_by(1_000) {
            d.heartbeat(t);
        }
        let mut last_phi = -1.0;
        for t in (4_000..60_000).step_by(250) {
            let phi = d.phi(t);
            assert!(phi >= last_phi, "phi decreased at t={t}");
            last_phi = phi;
        }
    }

    #[test]
    fn registration_grace_before_first_heartbeat() {
        let d = SuspicionDetector::new(SuspicionConfig::default());
        assert_eq!(d.phi(1_000_000), 0.0);
        assert_eq!(d.verdict(1_000_000), Verdict::Alive);
        assert_eq!(d.last_heartbeat_ms(), None);
    }

    #[test]
    fn out_of_order_heartbeats_are_ignored() {
        let mut d = SuspicionDetector::new(SuspicionConfig::default());
        d.heartbeat(5_000);
        d.heartbeat(1_000); // stale packet
        assert_eq!(d.last_heartbeat_ms(), Some(5_000));
    }

    #[test]
    fn view_sweeps_in_node_order() {
        let mut view = MembershipView::new(SuspicionConfig::default());
        for node in [7u32, 3, 11] {
            for t in (0..5_000).step_by(1_000) {
                view.heartbeat(node, t);
            }
        }
        // Node 3 keeps beating; 7 and 11 go silent.
        for t in (5_000..120_000).step_by(1_000) {
            view.heartbeat(3, t);
        }
        assert_eq!(view.verdict(3, 120_000), Verdict::Alive);
        assert_eq!(view.at_least(Verdict::Dead, 120_000), vec![7, 11]);
        view.forget(7);
        assert!(!view.is_watched(7));
        assert_eq!(view.verdict(7, 120_000), Verdict::Alive);
        assert_eq!(view.len(), 2);
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        assert!(SuspicionConfig::default().validate().is_ok());
        assert!(SuspicionConfig {
            heartbeat_interval_ms: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(SuspicionConfig {
            window: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(SuspicionConfig {
            min_std_ms: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(SuspicionConfig {
            phi_suspect: 5.0,
            phi_dead: 4.0,
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn erfc_anchor_points() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!(erfc(3.0) < 3e-5);
        assert!((erfc(-3.0) - 2.0).abs() < 3e-5);
    }
}
