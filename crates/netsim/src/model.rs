//! The AS-level latency and loss model.

use std::sync::Arc;

use asap_cluster::Asn;
use asap_topology::routing::BgpRouter;
use asap_topology::SyntheticInternet;
use parking_lot::Mutex;

/// Health of an AS during the simulated period.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AsCondition {
    /// Operating normally.
    Healthy,
    /// Congested: every path crossing this AS pays `added_rtt_ms` extra
    /// round-trip latency and `added_loss` extra loss probability.
    Congested {
        /// Extra RTT in milliseconds per traversal.
        added_rtt_ms: f64,
        /// Extra loss probability per traversal.
        added_loss: f64,
    },
    /// Failed: paths crossing this AS effectively time out.
    Failed,
}

/// Tunables of the latency/loss model.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// One-way milliseconds of propagation per unit of coordinate distance.
    pub ms_per_distance: f64,
    /// One-way per-AS-link router/serialization delay in milliseconds.
    pub per_hop_ms: f64,
    /// Range of per-host access-link one-way delays in milliseconds; drawn
    /// heavy-tailed (most hosts near the low end, a few modem-like hosts
    /// near the high end).
    pub access_ms: (f64, f64),
    /// Probability that a *core link* (both endpoints tier-1/transit) is
    /// congested. Link-level core congestion is the paper's Fig. 4
    /// scenario: it afflicts every direct route crossing that peering or
    /// transit link, yet relays whose legs meet elsewhere bypass it.
    pub congestion_prob_core_link: f64,
    /// Probability that a transit AS is congested as a whole (regional
    /// provider trouble; bypassable only by endpoints with another
    /// upstream).
    pub congestion_prob_transit: f64,
    /// Probability that a stub AS is congested (endpoint-adjacent
    /// congestion, which no relay can bypass).
    pub congestion_prob_stub: f64,
    /// Extra RTT range (ms) a congested AS adds per traversal.
    pub congestion_added_rtt_ms: (f64, f64),
    /// Extra loss range a congested AS adds per traversal.
    pub congestion_added_loss: (f64, f64),
    /// Fraction of stub ASes failed during the simulated period (core
    /// ASes do not fail wholesale; per the paper's Fig. 2(a) only ~10 of
    /// 10^5 sessions sit on the retransmission plateau).
    pub failed_fraction: f64,
    /// RTT assigned to paths crossing a failed AS (a retransmission
    /// timeout plateau; Fig. 2(a) shows ~10 sessions above 5 s).
    pub failure_rtt_ms: f64,
    /// Baseline end-to-end loss probability range per path.
    pub base_loss: (f64, f64),
    /// Multiplicative latency jitter per AS pair (±fraction).
    pub pair_jitter: f64,
    /// Probability that an AS pair suffers a circuitous route (a triangle
    /// inequality violation): its latency is multiplied by a factor drawn
    /// from `tiv_range`. These pairs are exactly the ones one-hop relays
    /// rescue geometrically (paper Fig. 2(b): 60% of sessions have an
    /// optimal one-hop path faster than the direct route).
    pub tiv_prob: f64,
    /// Multiplier range for circuitous pairs.
    pub tiv_range: (f64, f64),
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            ms_per_distance: 0.40,
            per_hop_ms: 0.8,
            access_ms: (0.5, 15.0),
            congestion_prob_core_link: 0.008,
            congestion_prob_transit: 0.008,
            congestion_prob_stub: 0.001,
            congestion_added_rtt_ms: (50.0, 600.0),
            congestion_added_loss: (0.01, 0.08),
            failed_fraction: 0.0002,
            failure_rtt_ms: 5_500.0,
            base_loss: (0.001, 0.01),
            pair_jitter: 0.30,
            tiv_prob: 0.18,
            tiv_range: (1.4, 2.2),
        }
    }
}

/// Deterministic AS-level latency/loss oracle over a synthetic Internet.
///
/// All randomness is derived by hashing the configured seed with the
/// entities involved, so the model is a pure function: the same query
/// always returns the same answer, queries never interfere, and the whole
/// model is `Send + Sync` (the internal BGP route cache is mutex-guarded).
///
/// ```
/// use asap_netsim::{NetConfig, NetModel};
/// use asap_topology::{InternetConfig, InternetGenerator};
/// use std::sync::Arc;
///
/// let net = Arc::new(InternetGenerator::new(InternetConfig::tiny(), 1).generate());
/// let model = NetModel::new(net.clone(), NetConfig::default(), 7);
/// let stubs = net.stub_asns();
/// let rtt = model.as_rtt_ms(stubs[0], stubs[1]).expect("routable");
/// assert_eq!(model.as_rtt_ms(stubs[0], stubs[1]), Some(rtt)); // deterministic
/// ```
#[derive(Debug)]
pub struct NetModel {
    internet: Arc<SyntheticInternet>,
    config: NetConfig,
    seed: u64,
    conditions: Vec<AsCondition>,
    router: Mutex<BgpRouter>,
}

impl NetModel {
    /// Builds the model, sampling congestion/failure episodes from `seed`.
    pub fn new(internet: Arc<SyntheticInternet>, config: NetConfig, seed: u64) -> Self {
        let n = internet.graph.node_count();
        let mut conditions = vec![AsCondition::Healthy; n];
        for (idx, cond) in conditions.iter_mut().enumerate() {
            let h = mix(seed, 0xC0F_FEE, idx as u64);
            let u = unit(h);
            let congestion_prob = match internet.tiers[idx] {
                asap_topology::AsTier::Tier1 => 0.0,
                asap_topology::AsTier::Transit => config.congestion_prob_transit,
                asap_topology::AsTier::Stub => config.congestion_prob_stub,
            };
            let can_fail = internet.tiers[idx] == asap_topology::AsTier::Stub;
            if can_fail && u < config.failed_fraction {
                *cond = AsCondition::Failed;
            } else if u < config.failed_fraction + congestion_prob {
                let (lo, hi) = config.congestion_added_rtt_ms;
                let (llo, lhi) = config.congestion_added_loss;
                // Uniform severity: congestion episodes range from mild
                // to severe (the paper's problem sessions sit 50-400 ms
                // above their clean RTT).
                let sev = unit(mix(seed, 0xBAD, idx as u64));
                *cond = AsCondition::Congested {
                    added_rtt_ms: lo + sev * (hi - lo),
                    added_loss: llo + sev * (lhi - llo),
                };
            }
        }
        NetModel {
            internet,
            config,
            seed,
            conditions,
            router: Mutex::new(BgpRouter::new()),
        }
    }

    /// The synthetic Internet this model runs over.
    pub fn internet(&self) -> &Arc<SyntheticInternet> {
        &self.internet
    }

    /// The model configuration.
    pub fn config(&self) -> &NetConfig {
        &self.config
    }

    /// The health of `asn` during the simulated period.
    pub fn condition(&self, asn: Asn) -> AsCondition {
        match self.internet.graph.index_of(asn) {
            Some(i) => self.conditions[i as usize],
            None => AsCondition::Healthy,
        }
    }

    /// Overrides the health of `asn` (failure injection in tests).
    ///
    /// # Panics
    ///
    /// Panics if `asn` is not in the graph.
    pub fn set_condition(&mut self, asn: Asn, condition: AsCondition) {
        let i = self.internet.graph.index_of(asn).expect("AS not in graph") as usize;
        self.conditions[i] = condition;
    }

    /// The BGP policy AS path from `a` to `b`, if routable.
    pub fn as_path(&self, a: Asn, b: Asn) -> Option<Vec<Asn>> {
        if !self.internet.graph.contains(a) || !self.internet.graph.contains(b) {
            return None;
        }
        self.router.lock().path(&self.internet.graph, a, b)
    }

    /// AS-hop count of the direct policy route.
    pub fn as_hops(&self, a: Asn, b: Asn) -> Option<usize> {
        if !self.internet.graph.contains(a) || !self.internet.graph.contains(b) {
            return None;
        }
        self.router.lock().as_hops(&self.internet.graph, a, b)
    }

    /// `(hits, misses)` of the underlying routing-tree cache: a miss
    /// computes a full per-destination BGP tree, a hit reuses it. Lets
    /// benchmarks confirm repeated `as_path`/`as_hops` queries are O(1).
    pub fn route_cache_stats(&self) -> (u64, u64) {
        self.router.lock().cache_stats()
    }

    /// Round-trip time in milliseconds between (the delegate routers of)
    /// two ASes along the direct BGP route, or `None` if no policy route
    /// exists. Includes congestion/failure inflation; excludes end-host
    /// access delays (see [`NetModel::host_rtt_ms`]).
    pub fn as_rtt_ms(&self, a: Asn, b: Asn) -> Option<f64> {
        if a == b {
            return Some(self.intra_as_rtt_ms(a));
        }
        let path = self.as_path(a, b)?;
        Some(self.path_rtt_ms(&path))
    }

    /// The congestion state of the AS-AS link between `a` and `b`:
    /// extra RTT (ms) and extra loss per traversal. Zero for healthy
    /// links. Only core links (both endpoints tier-1/transit) are subject
    /// to link congestion; deterministic per (seed, link).
    pub fn link_condition(&self, a: Asn, b: Asn) -> (f64, f64) {
        let is_core = |asn: Asn| {
            matches!(
                self.internet.tier(asn),
                Some(asap_topology::AsTier::Tier1) | Some(asap_topology::AsTier::Transit)
            )
        };
        if !is_core(a) || !is_core(b) {
            return (0.0, 0.0);
        }
        let (x, y) = (a.0.min(b.0) as u64, a.0.max(b.0) as u64);
        if unit(mix(self.seed ^ 0x11_4C, x, y)) >= self.config.congestion_prob_core_link {
            return (0.0, 0.0);
        }
        let sev = unit(mix(self.seed ^ 0x5EF, x, y));
        let (lo, hi) = self.config.congestion_added_rtt_ms;
        let (llo, lhi) = self.config.congestion_added_loss;
        (lo + sev * (hi - lo), llo + sev * (lhi - llo))
    }

    /// RTT along an explicit AS path (used for relay legs and what-if
    /// questions). The path need not be the policy route.
    pub fn path_rtt_ms(&self, path: &[Asn]) -> f64 {
        let mut one_way = 0.0;
        let mut extra_rtt = 0.0;
        for w in path.windows(2) {
            let d = self.internet.distance(w[0], w[1]);
            one_way += d * self.config.ms_per_distance + self.config.per_hop_ms;
            extra_rtt += self.link_condition(w[0], w[1]).0;
        }
        for &asn in path {
            match self.condition(asn) {
                AsCondition::Healthy => {}
                AsCondition::Congested { added_rtt_ms, .. } => extra_rtt += added_rtt_ms,
                AsCondition::Failed => return self.config.failure_rtt_ms,
            }
        }
        // Deterministic per-pair jitter (same for both directions).
        let (first, last) = (path.first(), path.last());
        let jitter = match (first, last) {
            (Some(&f), Some(&l)) => self.pair_jitter_factor(f, l),
            _ => 1.0,
        };
        (2.0 * one_way + extra_rtt) * jitter
    }

    /// End-to-end loss probability between two ASes along the direct
    /// route, or `None` if unroutable.
    pub fn as_loss(&self, a: Asn, b: Asn) -> Option<f64> {
        if a == b {
            return Some(self.base_pair_loss(a, b));
        }
        let path = self.as_path(a, b)?;
        Some(self.path_loss(&path))
    }

    /// Loss probability along an explicit AS path.
    pub fn path_loss(&self, path: &[Asn]) -> f64 {
        let mut loss = match (path.first(), path.last()) {
            (Some(&f), Some(&l)) => self.base_pair_loss(f, l),
            _ => 0.0,
        };
        for w in path.windows(2) {
            loss += self.link_condition(w[0], w[1]).1;
        }
        for &asn in path {
            match self.condition(asn) {
                AsCondition::Healthy => {}
                AsCondition::Congested { added_loss, .. } => loss += added_loss,
                AsCondition::Failed => return 1.0,
            }
        }
        loss.min(1.0)
    }

    /// Round-trip time between two end hosts, given each host's AS and
    /// access-link delay: the AS-level RTT plus both hosts' access RTTs.
    pub fn host_rtt_ms(
        &self,
        (asn_a, access_a_ms): (Asn, f64),
        (asn_b, access_b_ms): (Asn, f64),
    ) -> Option<f64> {
        let core = self.as_rtt_ms(asn_a, asn_b)?;
        Some(core + 2.0 * access_a_ms + 2.0 * access_b_ms)
    }

    /// Samples a deterministic heavy-tailed access-link one-way delay for
    /// host number `host_id` (most hosts near the low end of
    /// [`NetConfig::access_ms`], a few near the high end).
    pub fn sample_access_ms(&self, host_id: u64) -> f64 {
        let (lo, hi) = self.config.access_ms;
        let u = unit(mix(self.seed, 0xACCE55, host_id));
        lo + u.powi(4) * (hi - lo)
    }

    /// Intra-AS RTT between two hosts of the same AS (small, distance
    /// independent, deterministic per AS).
    fn intra_as_rtt_ms(&self, asn: Asn) -> f64 {
        2.0 + 6.0 * unit(mix(self.seed, 0x1A7, asn.0 as u64))
    }

    fn pair_jitter_factor(&self, a: Asn, b: Asn) -> f64 {
        let (lo, hi) = (a.0.min(b.0) as u64, a.0.max(b.0) as u64);
        let u = unit(mix(self.seed, lo, hi));
        let mut factor = 1.0 + self.config.pair_jitter * (2.0 * u - 1.0);
        if unit(mix(self.seed ^ 0x717, lo, hi)) < self.config.tiv_prob {
            let (tlo, thi) = self.config.tiv_range;
            factor *= tlo + (thi - tlo) * unit(mix(self.seed ^ 0x7117, lo, hi));
        }
        factor
    }

    fn base_pair_loss(&self, a: Asn, b: Asn) -> f64 {
        let (lo, hi) = self.config.base_loss;
        let (x, y) = (a.0.min(b.0) as u64, a.0.max(b.0) as u64);
        let u = unit(mix(self.seed, x ^ 0x1055, y));
        lo + u * u * (hi - lo)
    }
}

/// SplitMix64-style deterministic hash of three words.
fn mix(a: u64, b: u64, c: u64) -> u64 {
    let mut z = a ^ b.rotate_left(21) ^ c.rotate_left(42) ^ 0x9E37_79B9_7F4A_7C15;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a hash to a uniform float in [0, 1).
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_topology::{InternetConfig, InternetGenerator};

    fn model(seed: u64) -> NetModel {
        let net = Arc::new(InternetGenerator::new(InternetConfig::tiny(), 3).generate());
        NetModel::new(net, NetConfig::default(), seed)
    }

    #[test]
    fn rtt_is_deterministic_and_symmetric_in_jitter() {
        let m = model(1);
        let stubs = m.internet().stub_asns();
        let (a, b) = (stubs[0], stubs[7]);
        let r1 = m.as_rtt_ms(a, b);
        let r2 = m.as_rtt_ms(a, b);
        assert_eq!(r1, r2);
        assert!(r1.unwrap() > 0.0);
    }

    #[test]
    fn same_as_rtt_is_small() {
        let m = model(2);
        let a = m.internet().stub_asns()[0];
        let rtt = m.as_rtt_ms(a, a).unwrap();
        assert!((2.0..10.0).contains(&rtt), "intra-AS RTT {rtt}");
    }

    #[test]
    fn longer_paths_cost_more_on_average() {
        // RTT/AS-hop correlation (paper property 3): average RTT of 1-hop
        // pairs below average RTT of 4-hop pairs.
        let m = model(3);
        let stubs = m.internet().stub_asns();
        let mut by_hops: std::collections::HashMap<usize, (f64, usize)> = Default::default();
        for i in 0..stubs.len() {
            for j in (i + 1)..stubs.len().min(i + 30) {
                if let (Some(h), Some(r)) = (
                    m.as_hops(stubs[i], stubs[j]),
                    m.as_rtt_ms(stubs[i], stubs[j]),
                ) {
                    if r < m.config().failure_rtt_ms {
                        let e = by_hops.entry(h).or_insert((0.0, 0));
                        e.0 += r;
                        e.1 += 1;
                    }
                }
            }
        }
        let avg = |h: usize| by_hops.get(&h).map(|(s, c)| s / *c as f64);
        if let (Some(short), Some(long)) = (avg(2), avg(5)) {
            assert!(short < long, "2-hop avg {short} vs 5-hop avg {long}");
        }
    }

    #[test]
    fn failed_as_forces_timeout_rtt() {
        let mut m = model(4);
        let stubs = m.internet().stub_asns();
        let (a, b) = (stubs[1], stubs[11]);
        let path = m.as_path(a, b).unwrap();
        let middle = path[path.len() / 2];
        m.set_condition(middle, AsCondition::Failed);
        assert_eq!(m.as_rtt_ms(a, b), Some(m.config().failure_rtt_ms));
        assert_eq!(m.as_loss(a, b), Some(1.0));
    }

    #[test]
    fn congested_as_inflates_rtt_and_loss() {
        let mut m = model(5);
        let stubs = m.internet().stub_asns();
        let (a, b) = (stubs[2], stubs[13]);
        let path = m.as_path(a, b).unwrap();
        for &asn in &path {
            m.set_condition(asn, AsCondition::Healthy);
        }
        let clean_rtt = m.as_rtt_ms(a, b).unwrap();
        let clean_loss = m.as_loss(a, b).unwrap();
        let middle = path[path.len() / 2];
        m.set_condition(
            middle,
            AsCondition::Congested {
                added_rtt_ms: 200.0,
                added_loss: 0.05,
            },
        );
        assert!(
            (m.as_rtt_ms(a, b).unwrap() - (clean_rtt + 200.0 * m_jitter(&m, a, b))).abs() < 1e-6
                || m.as_rtt_ms(a, b).unwrap() > clean_rtt + 100.0
        );
        assert!((m.as_loss(a, b).unwrap() - (clean_loss + 0.05)).abs() < 1e-9);
    }

    // Congestion is added before jitter multiplies; recover the factor.
    fn m_jitter(m: &NetModel, a: Asn, b: Asn) -> f64 {
        m.pair_jitter_factor(a, b)
    }

    #[test]
    fn relay_leg_sums_exceed_either_leg() {
        let m = model(6);
        let stubs = m.internet().stub_asns();
        let (a, r, b) = (stubs[0], stubs[5], stubs[10]);
        let leg1 = m.as_rtt_ms(a, r).unwrap();
        let leg2 = m.as_rtt_ms(r, b).unwrap();
        let relay = leg1 + leg2 + crate::RELAY_DELAY_RTT_MS;
        assert!(relay > leg1 && relay > leg2);
        assert!(relay >= crate::RELAY_DELAY_RTT_MS);
    }

    #[test]
    fn access_delays_are_heavy_tailed() {
        let m = model(7);
        let samples: Vec<f64> = (0..2000).map(|i| m.sample_access_ms(i)).collect();
        let (lo, hi) = m.config().access_ms;
        assert!(samples.iter().all(|&s| s >= lo && s <= hi));
        let median = {
            let mut s = samples.clone();
            s.sort_by(f64::total_cmp);
            s[s.len() / 2]
        };
        let max = samples.iter().copied().fold(f64::MIN, f64::max);
        assert!(
            median < (lo + hi) / 4.0,
            "median {median} should hug the low end"
        );
        assert!(max > hi * 0.7, "tail should reach near {hi}, got {max}");
    }

    #[test]
    fn host_rtt_adds_access_delays() {
        let m = model(8);
        let stubs = m.internet().stub_asns();
        let core = m.as_rtt_ms(stubs[0], stubs[1]).unwrap();
        let host = m.host_rtt_ms((stubs[0], 10.0), (stubs[1], 5.0)).unwrap();
        assert!((host - (core + 30.0)).abs() < 1e-9);
    }

    #[test]
    fn unknown_as_is_unroutable() {
        let m = model(9);
        assert_eq!(m.as_rtt_ms(Asn(999_999), m.internet().stub_asns()[0]), None);
    }

    #[test]
    fn episode_sampling_respects_fractions() {
        let net = Arc::new(InternetGenerator::new(InternetConfig::default(), 10).generate());
        let m = NetModel::new(net.clone(), NetConfig::default(), 11);
        let n = net.graph.node_count() as f64;
        let congested = net
            .graph
            .asns()
            .iter()
            .filter(|&&a| matches!(m.condition(a), AsCondition::Congested { .. }))
            .count() as f64;
        let frac = congested / n;
        // Defaults: 12% of tier-1s, 1.2% of transits, 0.1% of stubs.
        assert!((0.0005..0.02).contains(&frac), "congested fraction {frac}");
    }
}
