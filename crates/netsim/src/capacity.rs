//! Per-host capacity modeling: relay-call slots and surrogate admission.
//!
//! The paper sizes clusters so "~1,000-host clusters share their request
//! load" (§6.3) and leans on ASAP's low probing overhead for
//! scalability, but nothing in the protocol *bounds* the work a single
//! host absorbs: a popular relay or a hot surrogate in a skewed caller
//! population saturates silently (the RON and SOSR experience). This
//! module provides the two bounded resources the protocol layer consults:
//!
//! * [`RelaySlots`] — concurrent relay-call slots per host, derived from
//!   nodal capability. Selection asks [`RelaySlots::try_acquire`] and a
//!   busy relay answers with a typed [`SlotVerdict::Busy`] so the caller
//!   spills over to the next candidate; degraded paths that cannot spill
//!   use [`RelaySlots::force_acquire`] and the overshoot is reported so
//!   the runtime can treat the saturated relay like a crashed one.
//! * [`AdmissionQueue`] — a surrogate's bounded, deadline-aware request
//!   queue over a fixed request-rate budget. Offers are admitted
//!   immediately, queued behind a deterministic virtual service clock, or
//!   shed with a typed [`ShedCause`].
//!
//! Everything is plain arithmetic over the caller-supplied virtual
//! clock: same offer sequence ⇒ same verdict sequence, on every run.

/// Capacity/admission tunables, embedded in the protocol configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityConfig {
    /// Master switch: when `false` nothing is bounded (the pre-capacity
    /// behavior, kept for the regression guard in `overload_soak`).
    pub enabled: bool,
    /// Relay-call slots every host gets regardless of capability.
    pub relay_slots_base: u32,
    /// Extra relay-call slots per unit of nodal capability (capability
    /// is in [0, 1], so a host gets `base + floor(cap * this)` slots).
    pub relay_slots_per_capability: f64,
    /// Close-set requests a surrogate serves per budget window.
    pub surrogate_budget: u32,
    /// Length of the surrogate request-rate budget window, ms.
    pub budget_window_ms: u64,
    /// Maximum requests waiting in a surrogate's admission queue; an
    /// offer that would queue deeper is shed with
    /// [`ShedCause::QueueFull`].
    pub queue_limit: u32,
    /// Maximum time an admitted request may wait in the queue, ms; an
    /// offer that would wait longer is shed with
    /// [`ShedCause::DeadlineExceeded`].
    pub queue_deadline_ms: u64,
    /// Queue wait after which the requester hedges the fetch to a
    /// standby replica and takes the first answer, ms.
    pub hedge_delay_ms: u64,
}

impl Default for CapacityConfig {
    fn default() -> Self {
        CapacityConfig {
            enabled: true,
            relay_slots_base: 2,
            relay_slots_per_capability: 6.0,
            surrogate_budget: 64,
            budget_window_ms: 1_000,
            queue_limit: 32,
            queue_deadline_ms: 2_000,
            hedge_delay_ms: 300,
        }
    }
}

impl CapacityConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field. A disabled
    /// config is still validated: a nonsense value is a bug whether or
    /// not the switch is on.
    pub fn validate(&self) -> Result<(), String> {
        if self.relay_slots_base == 0 {
            return Err("relay slot base must be at least 1".into());
        }
        if !(self.relay_slots_per_capability >= 0.0 && self.relay_slots_per_capability.is_finite())
        {
            return Err("relay slots per capability must be finite and non-negative".into());
        }
        if self.surrogate_budget == 0 {
            return Err("surrogate request budget must be positive".into());
        }
        if self.budget_window_ms == 0 {
            return Err("budget window must be positive".into());
        }
        if self.queue_limit == 0 {
            return Err("admission queue limit must be positive".into());
        }
        if self.queue_deadline_ms == 0 {
            return Err("admission queue deadline must be positive".into());
        }
        if self.hedge_delay_ms == 0 {
            return Err("hedge delay must be positive".into());
        }
        Ok(())
    }

    /// Relay-call slots a host of the given nodal capability provides.
    pub fn relay_slots_for(&self, capability: f64) -> u32 {
        let extra = (capability.clamp(0.0, 1.0) * self.relay_slots_per_capability) as u32;
        self.relay_slots_base + extra
    }

    /// Virtual service time of one admitted request, ms (the budget
    /// spread evenly over its window, never zero).
    pub fn slot_interval_ms(&self) -> u64 {
        (self.budget_window_ms / u64::from(self.surrogate_budget)).max(1)
    }
}

/// Why an offered request was shed instead of served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedCause {
    /// The bounded queue already held `queue_limit` waiting requests.
    QueueFull,
    /// Serving the request would start after its queue deadline.
    DeadlineExceeded,
}

/// The verdict of one [`AdmissionQueue::offer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Served within the budget: `waited_ms` is the queue delay (0 =
    /// immediate), `depth` how many requests were already waiting.
    Admit {
        /// Virtual ms the request waits before being served.
        waited_ms: u64,
        /// Requests queued ahead of this one at offer time.
        depth: u32,
    },
    /// Shed: the caller must fall through its degradation ladder.
    Shed(ShedCause),
}

/// A surrogate's bounded, deadline-aware admission queue.
///
/// Modeled as a deterministic virtual service clock: each admitted
/// request occupies one service slot of
/// [`CapacityConfig::slot_interval_ms`]; the next free slot time is the
/// queue state. Depth, wait, and shed verdicts all derive from it, so
/// equal offer sequences produce equal verdicts — no wall clock, no
/// randomness.
#[derive(Debug, Clone)]
pub struct AdmissionQueue {
    slot_interval_ms: u64,
    queue_limit: u32,
    deadline_ms: u64,
    /// Virtual time the next admitted request would start service.
    next_free_ms: u64,
    /// High-water mark of observed queue depth.
    max_depth: u32,
}

impl AdmissionQueue {
    /// A fresh queue under `config`'s budget, limit, and deadline.
    pub fn new(config: &CapacityConfig) -> Self {
        AdmissionQueue {
            slot_interval_ms: config.slot_interval_ms(),
            queue_limit: config.queue_limit,
            deadline_ms: config.queue_deadline_ms,
            next_free_ms: 0,
            max_depth: 0,
        }
    }

    /// Offers one request at virtual time `now_ms` and returns the
    /// verdict. Admitted requests consume one service slot; shed
    /// requests consume nothing.
    pub fn offer(&mut self, now_ms: u64) -> Admission {
        let start = self.next_free_ms.max(now_ms);
        let waited_ms = start - now_ms;
        let depth = (waited_ms / self.slot_interval_ms) as u32;
        // A request that would miss its deadline is useless whether or
        // not the queue has room, so the deadline is diagnosed first;
        // the depth bound is the backstop for loose deadlines.
        if waited_ms > self.deadline_ms {
            return Admission::Shed(ShedCause::DeadlineExceeded);
        }
        if depth >= self.queue_limit {
            return Admission::Shed(ShedCause::QueueFull);
        }
        self.next_free_ms = start + self.slot_interval_ms;
        self.max_depth = self.max_depth.max(depth);
        Admission::Admit { waited_ms, depth }
    }

    /// Requests currently waiting at `now_ms` (served ones age out).
    pub fn depth_at(&self, now_ms: u64) -> u32 {
        (self.next_free_ms.saturating_sub(now_ms) / self.slot_interval_ms) as u32
    }

    /// Deepest queue ever observed by an admitted offer.
    pub fn max_depth(&self) -> u32 {
        self.max_depth
    }
}

/// Typed answer of a relay asked to carry one more call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotVerdict {
    /// The relay has a free slot; the call may use it.
    Granted,
    /// Every slot is occupied; the caller should spill over to the next
    /// close-relay candidate.
    Busy,
}

/// Concurrent relay-call slots for a whole host population.
///
/// Slot limits derive from nodal capability via
/// [`CapacityConfig::relay_slots_for`]; occupancy is plain counters the
/// protocol layer acquires at call setup and releases at teardown or
/// failover.
#[derive(Debug, Clone)]
pub struct RelaySlots {
    limits: Vec<u32>,
    in_use: Vec<u32>,
    /// Per-host high-water occupancy (diagnoses force-acquire overshoot).
    max_in_use: Vec<u32>,
}

impl RelaySlots {
    /// Builds the slot table from per-host capability scores.
    pub fn new(config: &CapacityConfig, capabilities: impl IntoIterator<Item = f64>) -> Self {
        let limits: Vec<u32> = capabilities
            .into_iter()
            .map(|c| config.relay_slots_for(c))
            .collect();
        let n = limits.len();
        RelaySlots {
            limits,
            in_use: vec![0; n],
            max_in_use: vec![0; n],
        }
    }

    /// Whether `host` has no free slot left.
    pub fn busy(&self, host: usize) -> bool {
        self.in_use[host] >= self.limits[host]
    }

    /// Asks `host` for a slot: [`SlotVerdict::Busy`] leaves occupancy
    /// untouched so the caller can spill over.
    pub fn try_acquire(&mut self, host: usize) -> SlotVerdict {
        if self.busy(host) {
            return SlotVerdict::Busy;
        }
        self.in_use[host] += 1;
        self.max_in_use[host] = self.max_in_use[host].max(self.in_use[host]);
        SlotVerdict::Granted
    }

    /// Takes a slot unconditionally (degraded paths that could not spill
    /// over). Returns `true` when the host is now *over* its limit — the
    /// saturation signal the runtime treats like a crash.
    pub fn force_acquire(&mut self, host: usize) -> bool {
        self.in_use[host] += 1;
        self.max_in_use[host] = self.max_in_use[host].max(self.in_use[host]);
        self.in_use[host] > self.limits[host]
    }

    /// Returns `host`'s slot (saturating; releasing an idle host is a
    /// no-op so teardown paths need not track acquisition precisely).
    pub fn release(&mut self, host: usize) {
        self.in_use[host] = self.in_use[host].saturating_sub(1);
    }

    /// Slots currently occupied on `host`.
    pub fn in_use(&self, host: usize) -> u32 {
        self.in_use[host]
    }

    /// `host`'s slot limit.
    pub fn limit(&self, host: usize) -> u32 {
        self.limits[host]
    }

    /// Highest concurrent occupancy any host ever reached.
    pub fn max_in_use(&self) -> u32 {
        self.max_in_use.iter().copied().max().unwrap_or(0)
    }

    /// Number of hosts whose high-water occupancy exceeded their limit
    /// (every one of them was force-acquired past saturation at least
    /// once).
    pub fn saturated_hosts(&self) -> usize {
        self.max_in_use
            .iter()
            .zip(&self.limits)
            .filter(|&(&m, &l)| m > l)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tight() -> CapacityConfig {
        CapacityConfig {
            surrogate_budget: 4,
            budget_window_ms: 1_000, // 250 ms per request
            queue_limit: 3,
            queue_deadline_ms: 600,
            ..Default::default()
        }
    }

    #[test]
    fn validation_rejects_nonsense() {
        assert!(CapacityConfig::default().validate().is_ok());
        for bad in [
            CapacityConfig {
                relay_slots_base: 0,
                ..Default::default()
            },
            CapacityConfig {
                surrogate_budget: 0,
                ..Default::default()
            },
            CapacityConfig {
                budget_window_ms: 0,
                ..Default::default()
            },
            CapacityConfig {
                queue_limit: 0,
                ..Default::default()
            },
            CapacityConfig {
                queue_deadline_ms: 0,
                ..Default::default()
            },
            CapacityConfig {
                hedge_delay_ms: 0,
                ..Default::default()
            },
            CapacityConfig {
                relay_slots_per_capability: f64::NAN,
                ..Default::default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} should not validate");
        }
    }

    #[test]
    fn idle_queue_admits_immediately() {
        let mut q = AdmissionQueue::new(&tight());
        assert_eq!(
            q.offer(1_000),
            Admission::Admit {
                waited_ms: 0,
                depth: 0
            }
        );
        assert_eq!(q.depth_at(1_000), 1);
        assert_eq!(q.depth_at(1_250), 0);
    }

    #[test]
    fn burst_queues_then_sheds_on_deadline() {
        let mut q = AdmissionQueue::new(&tight());
        // 250 ms service time, 600 ms deadline: offers 0..=2 fit (waits
        // 0/250/500), offer 3 would wait 750 > 600.
        for i in 0..3 {
            match q.offer(0) {
                Admission::Admit { waited_ms, depth } => {
                    assert_eq!(waited_ms, 250 * i);
                    assert_eq!(depth, i as u32);
                }
                shed => panic!("offer {i} unexpectedly shed: {shed:?}"),
            }
        }
        assert_eq!(q.offer(0), Admission::Shed(ShedCause::DeadlineExceeded));
        // Shed offers consume nothing: after the backlog drains the queue
        // admits again.
        assert_eq!(
            q.offer(10_000),
            Admission::Admit {
                waited_ms: 0,
                depth: 0
            }
        );
    }

    #[test]
    fn queue_limit_binds_before_a_loose_deadline() {
        let config = CapacityConfig {
            queue_deadline_ms: 1_000_000,
            ..tight()
        };
        let mut q = AdmissionQueue::new(&config);
        let mut admitted = 0;
        let mut shed = 0;
        for _ in 0..20 {
            match q.offer(0) {
                Admission::Admit { depth, .. } => {
                    assert!(depth < config.queue_limit);
                    admitted += 1;
                }
                Admission::Shed(cause) => {
                    assert_eq!(cause, ShedCause::QueueFull);
                    shed += 1;
                }
            }
        }
        assert_eq!(admitted, config.queue_limit);
        assert_eq!(shed, 20 - admitted);
        assert!(q.max_depth() < config.queue_limit);
    }

    #[test]
    fn slots_grant_until_the_limit_then_spill() {
        let config = CapacityConfig {
            relay_slots_base: 1,
            relay_slots_per_capability: 2.0,
            ..Default::default()
        };
        // capability 1.0 → 3 slots, capability 0.0 → 1 slot.
        let mut slots = RelaySlots::new(&config, [1.0, 0.0]);
        assert_eq!(slots.limit(0), 3);
        assert_eq!(slots.limit(1), 1);
        for _ in 0..3 {
            assert_eq!(slots.try_acquire(0), SlotVerdict::Granted);
        }
        assert_eq!(slots.try_acquire(0), SlotVerdict::Busy);
        assert_eq!(slots.in_use(0), 3);
        slots.release(0);
        assert_eq!(slots.try_acquire(0), SlotVerdict::Granted);
    }

    #[test]
    fn force_acquire_reports_saturation() {
        let config = CapacityConfig {
            relay_slots_base: 1,
            relay_slots_per_capability: 0.0,
            ..Default::default()
        };
        let mut slots = RelaySlots::new(&config, [0.5]);
        assert!(!slots.force_acquire(0), "within the limit");
        assert!(slots.force_acquire(0), "now over the limit");
        assert_eq!(slots.max_in_use(), 2);
        assert_eq!(slots.saturated_hosts(), 1);
        slots.release(0);
        slots.release(0);
        slots.release(0); // over-release is a no-op
        assert_eq!(slots.in_use(0), 0);
        assert_eq!(slots.max_in_use(), 2, "high-water marks persist");
    }

    proptest! {
        /// Conservation: every offer is admitted (immediately or queued)
        /// or shed — and admitted waits respect both bounds.
        #[test]
        fn admission_conserves_offers(
            budget in 1u32..32,
            window in 1u64..5_000,
            limit in 1u32..16,
            deadline in 1u64..10_000,
            gaps in proptest::collection::vec(0u64..700, 1..200),
        ) {
            let config = CapacityConfig {
                surrogate_budget: budget,
                budget_window_ms: window,
                queue_limit: limit,
                queue_deadline_ms: deadline,
                ..Default::default()
            };
            let mut q = AdmissionQueue::new(&config);
            let (mut now, mut admitted, mut queued, mut shed) = (0u64, 0u64, 0u64, 0u64);
            for gap in &gaps {
                now += gap;
                match q.offer(now) {
                    Admission::Admit { waited_ms: 0, .. } => admitted += 1,
                    Admission::Admit { waited_ms, depth } => {
                        prop_assert!(waited_ms <= deadline);
                        prop_assert!(depth < limit);
                        queued += 1;
                    }
                    Admission::Shed(_) => shed += 1,
                }
            }
            prop_assert_eq!(admitted + queued + shed, gaps.len() as u64);
            prop_assert!(q.max_depth() < limit);
        }

        /// Determinism: the same offer sequence yields the same verdicts.
        #[test]
        fn admission_is_deterministic(
            gaps in proptest::collection::vec(0u64..500, 1..100),
        ) {
            let config = tight();
            let run = || {
                let mut q = AdmissionQueue::new(&config);
                let mut now = 0u64;
                gaps.iter().map(|g| { now += g; q.offer(now) }).collect::<Vec<_>>()
            };
            prop_assert_eq!(run(), run());
        }
    }
}
